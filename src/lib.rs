//! # shrink — preventing conflicts in transactional memories
//!
//! Umbrella crate for the reproduction of *"Preventing versus Curing:
//! Avoiding Conflicts in Transactional Memories"* (PODC 2009). Re-exports
//! the four member crates:
//!
//! * [`stm`] — the STM runtime with visible writes and pluggable schedulers;
//! * [`sched`] — the Shrink scheduler and its baselines (ATS, Pool,
//!   Serializer);
//! * [`theory`] — the Section-2 scheduling theory simulator;
//! * [`workloads`] — STMBench7, STAMP and red-black-tree benchmark ports.
//!
//! ```
//! use shrink::prelude::*;
//! use std::sync::Arc;
//!
//! let scheduler = Arc::new(Shrink::new(ShrinkConfig::default()));
//! let rt = TmRuntime::builder().scheduler_arc(scheduler.clone()).build();
//! let v = TVar::new(0u64);
//! rt.run(|tx| tx.modify(&v, |x| x + 1));
//! assert_eq!(v.snapshot(), 1);
//! ```

pub use shrink_core as sched;
pub use shrink_stm as stm;
pub use shrink_theory as theory;
pub use shrink_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use shrink_core::{Ats, AtsConfig, Pool, SchedulerKind, Serializer, Shrink, ShrinkConfig};
    pub use shrink_stm::{
        atomically, atomically_async, Abort, AbortReason, BackendKind, RetryStats, TArray, TVar,
        TmRuntime, TmStats, Tx, TxFuture, TxRead, TxResult, TxScheduler, TxnKind, WaitPolicy,
    };
    pub use shrink_workloads::{
        QueueMode, QueueWorkload, RbTreeWorkload, TxQueue, TxRbTree, TxWorkload,
    };
}
