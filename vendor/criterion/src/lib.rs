//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this vendor
//! crate provides the `criterion` API subset the workspace's benches use:
//! [`Criterion::benchmark_group`], `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery it runs a short warm-up,
//! then times a fixed wall-clock window and reports mean ns/iteration on
//! stdout — enough to compare the workspace's constant factors run-to-run.
//! Honours `--bench` and `--test` CLI flags (ignored and quick-exit
//! respectively) so `cargo bench`/`cargo test` harness plumbing works.
//! Swap this directory for the real crate once the registry is reachable;
//! call sites need no changes.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    /// Quick-exit mode: run each benchmark body once, without timing
    /// (used when the bench binary is invoked by `cargo test`).
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Registers and runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.test_mode, &id.into(), f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's timing window is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Registers and runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(self.criterion.test_mode, &full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(test_mode: bool, name: &str, mut f: F) {
    let mut b = Bencher {
        test_mode,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if test_mode {
        println!("{name}: ok (test mode)");
    } else if b.iters > 0 {
        let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("{name:<40} {ns:>12.1} ns/iter ({} iters)", b.iters);
    }
}

/// Timing driver handed to each benchmark body.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`: warm-up, then as many iterations as fit in a short
    /// fixed window (~200 ms). In test mode runs the routine exactly once.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.iters = 0;
            return;
        }
        // Warm-up: ~20 ms or 1000 iterations, whichever comes first.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(20) && warm_iters < 1000 {
            black_box(routine());
            warm_iters += 1;
        }
        // Measurement window.
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < Duration::from_millis(200) {
            for _ in 0..16 {
                black_box(routine());
            }
            iters += 16;
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
