//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this vendor
//! crate provides the `criterion` API subset the workspace's benches use:
//! [`Criterion::benchmark_group`], `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's full statistical machinery it runs a short
//! warm-up, then times the routine over **several independent measurement
//! windows** and reports the min/median/max ns/iteration across windows —
//! enough to attach run-to-run variance to the workspace's constant-factor
//! comparisons (an old-vs-new claim should be judged on whether the
//! *ranges* overlap, not on two single numbers). Honours `--bench` and
//! `--test` CLI flags (ignored and quick-exit respectively) so
//! `cargo bench`/`cargo test` harness plumbing works. Swap this directory
//! for the real crate once the registry is reachable; call sites need no
//! changes.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of independent measurement windows per benchmark.
const SAMPLE_WINDOWS: usize = 5;
/// Length of each measurement window.
const WINDOW: Duration = Duration::from_millis(60);

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    /// Quick-exit mode: run each benchmark body once, without timing
    /// (used when the bench binary is invoked by `cargo test`).
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Registers and runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.test_mode, &id.into(), f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's window count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Registers and runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(self.criterion.test_mode, &full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(test_mode: bool, name: &str, mut f: F) {
    let mut b = Bencher {
        test_mode,
        samples: Vec::new(),
    };
    f(&mut b);
    if test_mode {
        println!("{name}: ok (test mode)");
        return;
    }
    let mut per_window: Vec<f64> = b
        .samples
        .iter()
        .filter(|(iters, _)| *iters > 0)
        .map(|(iters, elapsed)| elapsed.as_nanos() as f64 / *iters as f64)
        .collect();
    if per_window.is_empty() {
        return;
    }
    per_window.sort_by(|a, c| a.total_cmp(c));
    let min = per_window[0];
    let max = per_window[per_window.len() - 1];
    let median = median_of_sorted(&per_window);
    let total_iters: u64 = b.samples.iter().map(|(i, _)| i).sum();
    println!(
        "{name:<40} {median:>10.1} ns/iter (min {min:.1} / max {max:.1}, \
         {} windows, {total_iters} iters)",
        per_window.len()
    );
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Timing driver handed to each benchmark body.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    /// One `(iterations, elapsed)` pair per measurement window.
    samples: Vec<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine`: a short warm-up, then [`SAMPLE_WINDOWS`] independent
    /// windows of ~[`WINDOW`] each, so the report can carry min/median/max.
    /// In test mode runs the routine exactly once.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up: ~20 ms or 1000 iterations, whichever comes first.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(20) && warm_iters < 1000 {
            black_box(routine());
            warm_iters += 1;
        }
        // Independent measurement windows.
        for _ in 0..SAMPLE_WINDOWS {
            let mut iters = 0u64;
            let start = Instant::now();
            while start.elapsed() < WINDOW {
                for _ in 0..16 {
                    black_box(routine());
                }
                iters += 16;
            }
            self.samples.push((iters, start.elapsed()));
        }
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_sorted_handles_odd_and_even() {
        assert_eq!(median_of_sorted(&[1.0, 2.0, 9.0]), 2.0);
        assert_eq!(median_of_sorted(&[1.0, 2.0, 3.0, 9.0]), 2.5);
        assert_eq!(median_of_sorted(&[4.0]), 4.0);
    }

    #[test]
    fn bencher_collects_one_sample_per_window() {
        let mut b = Bencher {
            test_mode: false,
            samples: Vec::new(),
        };
        b.iter(|| std::hint::black_box(1 + 1));
        assert_eq!(b.samples.len(), SAMPLE_WINDOWS);
        assert!(b.samples.iter().all(|(iters, _)| *iters > 0));
    }

    #[test]
    fn test_mode_runs_exactly_once() {
        let mut b = Bencher {
            test_mode: true,
            samples: Vec::new(),
        };
        let mut runs = 0;
        b.iter(|| runs += 1);
        assert_eq!(runs, 1);
        assert!(b.samples.is_empty());
    }
}
