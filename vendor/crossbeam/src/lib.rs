//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access to crates.io, so this vendor
//! crate provides the `crossbeam::epoch` API subset the workspace uses
//! ([`epoch::pin`], [`epoch::Atomic`], [`epoch::Owned`], [`epoch::Shared`],
//! `Guard::defer_destroy`), implemented with **reference counting** instead
//! of epoch-based garbage collection: an [`epoch::Atomic`] holds an
//! `Arc<T>` behind a readers-writer lock, a [`epoch::Shared`] owns a clone
//! of that `Arc`, and "deferred destruction" is simply the drop of the last
//! clone. That preserves the exact safety contract the call sites rely on —
//! a value loaded under a pinned guard stays alive until the guard-scoped
//! `Shared` goes away — at the cost of a lock/refcount per access rather
//! than crossbeam's wait-free reads. Swap this directory for the real crate
//! once the registry is reachable; call sites need no changes.

#![warn(missing_docs)]

/// Epoch-style memory reclamation, emulated with reference counting.
pub mod epoch {
    use std::fmt;
    use std::marker::PhantomData;
    use std::sync::atomic::Ordering;
    use std::sync::{Arc, PoisonError, RwLock};

    /// A pinned-participant token.
    ///
    /// In real crossbeam, pinning delays reclamation; here lifetimes tied to
    /// the guard keep `Arc` clones alive, so the guard itself carries no
    /// state.
    #[derive(Debug)]
    pub struct Guard {
        _private: (),
    }

    /// Pins the current thread, returning a guard that scopes [`Shared`]
    /// pointers.
    pub fn pin() -> Guard {
        Guard { _private: () }
    }

    impl Guard {
        /// Schedules the pointee for destruction once unreachable.
        ///
        /// With the refcount emulation this just drops `shared`'s `Arc`
        /// clone; the pointee dies when the last concurrent reader drops
        /// its own clone.
        ///
        /// # Safety
        ///
        /// As in crossbeam: the caller must guarantee `shared` is no longer
        /// reachable through any `Atomic` (e.g. it was just swapped out).
        pub unsafe fn defer_destroy<T>(&self, shared: Shared<'_, T>) {
            drop(shared);
        }
    }

    /// An owned heap value about to be published into an [`Atomic`].
    pub struct Owned<T> {
        value: Arc<T>,
    }

    impl<T> Owned<T> {
        /// Allocates `value`.
        pub fn new(value: T) -> Self {
            Owned {
                value: Arc::new(value),
            }
        }
    }

    impl<T: fmt::Debug> fmt::Debug for Owned<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("Owned").field(&self.value).finish()
        }
    }

    /// A pointer loaded from an [`Atomic`], valid for the guard's lifetime.
    ///
    /// Owns an `Arc` clone, so the pointee cannot be freed while this value
    /// lives — the refcount analogue of "pinned epoch".
    pub struct Shared<'g, T> {
        value: Option<Arc<T>>,
        _guard: PhantomData<&'g Guard>,
    }

    impl<T> Shared<'_, T> {
        /// The null pointer.
        pub fn null() -> Self {
            Shared {
                value: None,
                _guard: PhantomData,
            }
        }

        /// Whether this is the null pointer.
        pub fn is_null(&self) -> bool {
            self.value.is_none()
        }

        /// Dereferences the pointer.
        ///
        /// # Safety
        ///
        /// As in crossbeam: the pointer must be non-null (here: non-null is
        /// also checked, so misuse panics rather than exhibiting UB).
        pub unsafe fn deref(&self) -> &T {
            self.value.as_ref().expect("deref of null Shared")
        }

        /// Converts into an [`Owned`], taking over the allocation.
        ///
        /// # Safety
        ///
        /// As in crossbeam: the caller must be the sole owner; must be
        /// non-null.
        pub unsafe fn into_owned(self) -> Owned<T> {
            Owned {
                value: self.value.expect("into_owned of null Shared"),
            }
        }
    }

    impl<T: fmt::Debug> fmt::Debug for Shared<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("Shared").field(&self.value).finish()
        }
    }

    /// Pointer-like values that can be stored into an [`Atomic`].
    pub trait Pointer<T> {
        /// Consumes `self`, yielding the backing allocation (if non-null).
        fn into_arc(self) -> Option<Arc<T>>;
    }

    impl<T> Pointer<T> for Owned<T> {
        fn into_arc(self) -> Option<Arc<T>> {
            Some(self.value)
        }
    }

    impl<T> Pointer<T> for Shared<'_, T> {
        fn into_arc(self) -> Option<Arc<T>> {
            self.value
        }
    }

    /// An atomic, possibly-null pointer to a heap value.
    pub struct Atomic<T> {
        slot: RwLock<Option<Arc<T>>>,
    }

    impl<T> Atomic<T> {
        /// Allocates `value` and creates an atomic pointing at it.
        pub fn new(value: T) -> Self {
            Atomic {
                slot: RwLock::new(Some(Arc::new(value))),
            }
        }

        /// Loads the current pointer under `_guard`.
        ///
        /// The `Ordering` is accepted for API compatibility; the lock
        /// provides (stronger) acquire/release semantics.
        pub fn load<'g>(&self, _ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
            let slot = self.slot.read().unwrap_or_else(PoisonError::into_inner);
            Shared {
                value: slot.clone(),
                _guard: PhantomData,
            }
        }

        /// Swaps in `new`, returning the previous pointer.
        pub fn swap<'g, P: Pointer<T>>(
            &self,
            new: P,
            _ord: Ordering,
            _guard: &'g Guard,
        ) -> Shared<'g, T> {
            let mut slot = self.slot.write().unwrap_or_else(PoisonError::into_inner);
            let old = std::mem::replace(&mut *slot, new.into_arc());
            Shared {
                value: old,
                _guard: PhantomData,
            }
        }
    }

    impl<T: fmt::Debug> fmt::Debug for Atomic<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Atomic { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn load_swap_round_trip() {
            let a = Atomic::new(1u32);
            let g = pin();
            assert_eq!(unsafe { *a.load(Ordering::Acquire, &g).deref() }, 1);
            let old = a.swap(Owned::new(2), Ordering::AcqRel, &g);
            assert_eq!(unsafe { *old.deref() }, 1);
            unsafe { g.defer_destroy(old) };
            assert_eq!(unsafe { *a.load(Ordering::Acquire, &g).deref() }, 2);
        }

        #[test]
        fn null_swap_empties_the_slot() {
            let a = Atomic::new(5u32);
            let g = pin();
            let old = a.swap(Shared::null(), Ordering::AcqRel, &g);
            assert!(!old.is_null());
            unsafe { drop(old.into_owned()) };
            assert!(a.load(Ordering::Acquire, &g).is_null());
        }

        #[test]
        fn loaded_value_survives_replacement() {
            let a = Atomic::new(String::from("alive"));
            let g = pin();
            let s = a.load(Ordering::Acquire, &g);
            let old = a.swap(Owned::new(String::from("new")), Ordering::AcqRel, &g);
            unsafe { g.defer_destroy(old) };
            // `s` still owns a refcount: reading through it is safe.
            assert_eq!(unsafe { s.deref() }, "alive");
        }
    }
}
