//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access to crates.io, so this vendor
//! crate provides the `crossbeam::epoch` API subset the workspace uses
//! ([`epoch::pin`], [`epoch::Atomic`], [`epoch::Owned`], [`epoch::Shared`],
//! `Guard::defer_destroy`), implemented as a **true epoch-based reclamation
//! scheme**: a global epoch counter, per-thread participant records with a
//! pinned-epoch word, and per-thread deferred-drop bags that are sealed with
//! an epoch tag and reclaimed once the global epoch has advanced two steps
//! past the tag. A snapshot read under a pinned guard is an atomic pointer
//! load — no mutex or rwlock is ever taken on the read path (the only locks
//! are on the cold registration/advance/collect paths).
//!
//! The algorithm is the classic two-epoch-grace EBR (Fraser; crossbeam):
//!
//! * **pin** publishes `(epoch << 1) | 1` into the participant's state word
//!   with sequentially consistent ordering and re-reads the global epoch
//!   until the published value is current, so a pinned participant is always
//!   registered at an epoch that was global *after* publication;
//! * **advance** moves the global epoch from `e` to `e + 1` only when every
//!   pinned participant is pinned at `e`, so a participant pinned at `e`
//!   holds the global epoch at or below `e + 1`;
//! * **retire** tags garbage with the global epoch at (or after) unlink
//!   time, and **collect** frees a sealed bag only once
//!   `global >= tag + 2` — by the advance rule no participant that could
//!   have loaded the unlinked pointer can still be pinned by then.
//!
//! Swap this directory for the real crate once the registry is reachable;
//! call sites need no changes.

#![warn(missing_docs)]

/// Epoch-based memory reclamation.
pub mod epoch {
    use std::cell::{Cell, RefCell};
    use std::collections::VecDeque;
    use std::fmt;
    use std::marker::PhantomData;
    use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock, PoisonError};

    /// A local bag seals (and a pin tick collects) once it holds this many
    /// retired items, bounding per-thread floating garbage.
    const BAG_SEAL_THRESHOLD: usize = 64;
    /// Every this-many pins, the pinning thread helps advance and collect.
    const PINS_BETWEEN_COLLECT: u32 = 64;

    // ---------------------------------------------------------------- garbage

    /// A type-erased retired heap allocation. Dropping it frees the pointee.
    struct Garbage {
        ptr: *mut u8,
        drop_fn: unsafe fn(*mut u8),
    }

    // SAFETY: the pointee is required to be `Send` by `defer_destroy`'s
    // bound, and the erased drop function only touches the pointee.
    unsafe impl Send for Garbage {}

    impl Garbage {
        fn of_box<T: Send + 'static>(ptr: *mut T) -> Self {
            unsafe fn drop_box<T>(p: *mut u8) {
                // SAFETY: `p` came from `Box::into_raw` of a `Box<T>` in
                // `of_box`, and ownership was transferred to this Garbage.
                drop(unsafe { Box::from_raw(p.cast::<T>()) });
            }
            Garbage {
                ptr: ptr.cast(),
                drop_fn: drop_box::<T>,
            }
        }
    }

    impl Drop for Garbage {
        fn drop(&mut self) {
            // SAFETY: constructed only by `of_box`; dropped exactly once.
            unsafe { (self.drop_fn)(self.ptr) }
        }
    }

    /// A thread-local bag sealed with the epoch current at seal time.
    struct SealedBag {
        epoch: u64,
        /// Never read — the items exist to be dropped (freed) when the
        /// bag's grace period elapses and the bag itself is dropped.
        #[allow(dead_code)]
        items: Vec<Garbage>,
    }

    // ----------------------------------------------------------- participants

    /// Per-thread record scanned by `try_advance`.
    ///
    /// `state` packs `(epoch << 1) | pinned`; when the pinned bit is clear
    /// the epoch half is meaningless.
    struct Participant {
        state: AtomicU64,
    }

    struct GlobalState {
        /// The global epoch. Monotonically increasing, never wraps in
        /// practice (u64 at nanosecond pin rates outlives the hardware).
        epoch: AtomicU64,
        /// All registered participants. Locked only on thread
        /// registration/exit and inside `try_advance` (cold paths).
        participants: Mutex<Vec<Arc<Participant>>>,
        /// Sealed bags awaiting their grace period.
        garbage: Mutex<VecDeque<SealedBag>>,
    }

    fn global() -> &'static GlobalState {
        static GLOBAL: OnceLock<GlobalState> = OnceLock::new();
        GLOBAL.get_or_init(|| GlobalState {
            epoch: AtomicU64::new(0),
            participants: Mutex::new(Vec::new()),
            garbage: Mutex::new(VecDeque::new()),
        })
    }

    /// Tries to move the global epoch forward by one. Fails (harmlessly)
    /// when any participant is pinned at an older epoch or the participant
    /// list is contended.
    fn try_advance() {
        let g = global();
        let e = g.epoch.load(Ordering::SeqCst);
        let Ok(parts) = g.participants.try_lock() else {
            return;
        };
        for p in parts.iter() {
            let s = p.state.load(Ordering::SeqCst);
            if s & 1 == 1 && (s >> 1) != e {
                // Pinned at an older epoch: its snapshot loads may still
                // reach values retired up to two epochs back.
                return;
            }
        }
        drop(parts);
        let _ = g
            .epoch
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::Relaxed);
    }

    /// Frees every sealed bag whose grace period (two epochs) has elapsed.
    fn collect() {
        let g = global();
        let e = g.epoch.load(Ordering::SeqCst);
        let mut ready: Vec<SealedBag> = Vec::new();
        if let Ok(mut queue) = g.garbage.try_lock() {
            let mut i = 0;
            while i < queue.len() {
                if queue[i].epoch + 2 <= e {
                    ready.extend(queue.remove(i));
                } else {
                    i += 1;
                }
            }
        }
        // Run destructors outside the queue lock: drop glue may itself pin
        // and retire (nested TVars), which must not deadlock.
        drop(ready);
    }

    // ------------------------------------------------------------ local state

    /// Thread-local participant handle; registers on first pin, deregisters
    /// (and donates its bag to the global queue) on thread exit.
    struct LocalHandle {
        participant: Arc<Participant>,
        pin_count: Cell<u64>,
        bag: RefCell<Vec<Garbage>>,
        pin_tick: Cell<u32>,
    }

    impl LocalHandle {
        fn register() -> Self {
            let participant = Arc::new(Participant {
                state: AtomicU64::new(0),
            });
            global()
                .participants
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(Arc::clone(&participant));
            LocalHandle {
                participant,
                pin_count: Cell::new(0),
                bag: RefCell::new(Vec::new()),
                pin_tick: Cell::new(0),
            }
        }

        /// Seals the local bag (if non-empty) into the global queue, tagged
        /// with the current epoch.
        fn seal(&self) {
            let items = self.bag.replace(Vec::new());
            if items.is_empty() {
                return;
            }
            let g = global();
            let epoch = g.epoch.load(Ordering::SeqCst);
            g.garbage
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(SealedBag { epoch, items });
        }
    }

    impl Drop for LocalHandle {
        fn drop(&mut self) {
            // Guards must not outlive this thread's LOCAL slot: a Guard
            // stashed in *another* thread-local whose destructor runs later
            // would lose its pin here and any pointer loaded under it could
            // be freed before that destructor runs. All supported usage is
            // stack-scoped guards (as in this workspace); catch violations
            // in debug builds rather than silently unpinning a live guard.
            debug_assert_eq!(
                self.pin_count.get(),
                0,
                "a Guard outlived its thread's epoch participant (guards must \
                 not be stored in other thread-locals)"
            );
            // Donate leftover garbage so another thread can reclaim it.
            self.seal();
            // Unpin so dead threads never hold the epoch back.
            self.participant.state.store(0, Ordering::SeqCst);
            let mut parts = global()
                .participants
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            parts.retain(|p| !Arc::ptr_eq(p, &self.participant));
        }
    }

    thread_local! {
        static LOCAL: LocalHandle = LocalHandle::register();
    }

    // ----------------------------------------------------------------- guard

    /// A pinned-participant token: while any guard is alive on a thread, the
    /// global epoch can advance at most once past the thread's pinned epoch,
    /// so pointers loaded under the guard stay allocated.
    pub struct Guard {
        /// Guards are `!Send`/`!Sync`: unpinning must happen on the pinning
        /// thread (the drop decrements that thread's pin count).
        _not_send: PhantomData<*mut ()>,
    }

    impl fmt::Debug for Guard {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Guard { .. }")
        }
    }

    /// Pins the current thread, returning a guard that scopes [`Shared`]
    /// pointers.
    pub fn pin() -> Guard {
        LOCAL.with(|local| {
            let count = local.pin_count.get();
            local.pin_count.set(count + 1);
            if count == 0 {
                let g = global();
                let mut e = g.epoch.load(Ordering::Relaxed);
                loop {
                    // Publish "pinned at e" before any subsequent pointer
                    // load. SeqCst store + SeqCst re-read pair with the
                    // SeqCst participant scan in `try_advance`.
                    local
                        .participant
                        .state
                        .store((e << 1) | 1, Ordering::SeqCst);
                    let now = g.epoch.load(Ordering::SeqCst);
                    if now == e {
                        break;
                    }
                    // The epoch moved while we were publishing; re-publish
                    // so the pinned epoch is one that was current *after*
                    // publication.
                    e = now;
                }
                let tick = local.pin_tick.get().wrapping_add(1);
                local.pin_tick.set(tick);
                if tick % PINS_BETWEEN_COLLECT == 0 {
                    try_advance();
                    collect();
                }
            }
        });
        Guard {
            _not_send: PhantomData,
        }
    }

    impl Guard {
        /// Schedules the pointee for destruction once every thread pinned at
        /// the current or previous epoch has unpinned.
        ///
        /// # Safety
        ///
        /// As in crossbeam: the caller must guarantee `shared` is no longer
        /// reachable through any [`Atomic`] (e.g. it was just swapped out)
        /// and that no other thread will `defer_destroy` or `into_owned` the
        /// same pointer.
        pub unsafe fn defer_destroy<T: Send + 'static>(&self, shared: Shared<'_, T>) {
            if shared.ptr.is_null() {
                return;
            }
            LOCAL.with(|local| {
                let full = {
                    let mut bag = local.bag.borrow_mut();
                    bag.push(Garbage::of_box(shared.ptr));
                    bag.len() >= BAG_SEAL_THRESHOLD
                };
                if full {
                    local.seal();
                    try_advance();
                    collect();
                }
            });
        }

        /// Seals this thread's garbage, tries to advance the epoch and runs
        /// any ready reclamation. See the free function [`flush`].
        pub fn flush(&self) {
            flush();
        }
    }

    impl Drop for Guard {
        fn drop(&mut self) {
            // `try_with`: a guard dropped during thread-local teardown finds
            // the handle already deregistered (which also unpinned it).
            let _ = LOCAL.try_with(|local| {
                let count = local.pin_count.get();
                local.pin_count.set(count - 1);
                if count == 1 {
                    local.participant.state.store(0, Ordering::SeqCst);
                }
            });
        }
    }

    /// Seals the calling thread's garbage bag, tries to advance the global
    /// epoch and reclaims everything whose grace period has elapsed.
    ///
    /// Useful at quiescent points (between benchmark phases, after joining
    /// worker threads, in tests asserting exact reclamation). Repeated calls
    /// from a fully unpinned process drain all deferred garbage within two
    /// epoch steps.
    pub fn flush() {
        let _ = LOCAL.try_with(|local| local.seal());
        try_advance();
        collect();
    }

    // --------------------------------------------------------------- pointers

    /// An owned heap value about to be published into an [`Atomic`].
    pub struct Owned<T> {
        boxed: Box<T>,
    }

    impl<T> Owned<T> {
        /// Allocates `value`.
        pub fn new(value: T) -> Self {
            Owned {
                boxed: Box::new(value),
            }
        }
    }

    impl<T: fmt::Debug> fmt::Debug for Owned<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("Owned").field(&self.boxed).finish()
        }
    }

    /// A pointer loaded from an [`Atomic`], valid for the guard's lifetime.
    ///
    /// The pointee cannot be freed while the guard that scoped this load is
    /// alive: reclamation waits two epochs, and the pinned epoch blocks the
    /// second advance.
    pub struct Shared<'g, T> {
        ptr: *mut T,
        _guard: PhantomData<(&'g Guard, *const T)>,
    }

    impl<T> Clone for Shared<'_, T> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<T> Copy for Shared<'_, T> {}

    impl<T> Shared<'_, T> {
        /// The null pointer.
        pub fn null() -> Self {
            Shared {
                ptr: std::ptr::null_mut(),
                _guard: PhantomData,
            }
        }

        /// Whether this is the null pointer.
        pub fn is_null(&self) -> bool {
            self.ptr.is_null()
        }

        /// Dereferences the pointer.
        ///
        /// # Safety
        ///
        /// As in crossbeam: the pointer must be non-null, and must have been
        /// loaded from an [`Atomic`] under the guard that scopes it.
        pub unsafe fn deref(&self) -> &T {
            debug_assert!(!self.ptr.is_null(), "deref of null Shared");
            // SAFETY: non-null per the contract; alive because the epoch
            // pinned by the scoping guard delays reclamation.
            unsafe { &*self.ptr }
        }

        /// Converts into an [`Owned`], taking over the allocation.
        ///
        /// # Safety
        ///
        /// As in crossbeam: the caller must be the sole owner (the pointer
        /// was swapped out and no concurrent reader can still reach it);
        /// must be non-null.
        pub unsafe fn into_owned(self) -> Owned<T> {
            debug_assert!(!self.ptr.is_null(), "into_owned of null Shared");
            Owned {
                // SAFETY: allocated via `Box` in `Owned::new`; sole
                // ownership per the contract.
                boxed: unsafe { Box::from_raw(self.ptr) },
            }
        }
    }

    impl<T> fmt::Debug for Shared<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("Shared").field(&self.ptr).finish()
        }
    }

    /// Pointer-like values that can be stored into an [`Atomic`].
    pub trait Pointer<T> {
        /// Consumes `self`, yielding the raw pointer (null for
        /// `Shared::null()`).
        fn into_ptr(self) -> *mut T;
    }

    impl<T> Pointer<T> for Owned<T> {
        fn into_ptr(self) -> *mut T {
            Box::into_raw(self.boxed)
        }
    }

    impl<T> Pointer<T> for Shared<'_, T> {
        fn into_ptr(self) -> *mut T {
            self.ptr
        }
    }

    /// An atomic, possibly-null pointer to a heap value.
    ///
    /// Loads are single atomic pointer loads; swaps are single atomic
    /// read-modify-writes. No lock is ever taken.
    pub struct Atomic<T> {
        ptr: AtomicPtr<T>,
        /// Owns the pointee (for auto-trait purposes).
        _marker: PhantomData<Box<T>>,
    }

    impl<T> Atomic<T> {
        /// Allocates `value` and creates an atomic pointing at it.
        pub fn new(value: T) -> Self {
            Atomic {
                ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
                _marker: PhantomData,
            }
        }

        /// Loads the current pointer under `_guard`: one atomic load.
        pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
            Shared {
                ptr: self.ptr.load(ord),
                _guard: PhantomData,
            }
        }

        /// Swaps in `new`, returning the previous pointer.
        pub fn swap<'g, P: Pointer<T>>(
            &self,
            new: P,
            ord: Ordering,
            _guard: &'g Guard,
        ) -> Shared<'g, T> {
            Shared {
                ptr: self.ptr.swap(new.into_ptr(), ord),
                _guard: PhantomData,
            }
        }
    }

    impl<T> Drop for Atomic<T> {
        fn drop(&mut self) {
            // `&mut self`: no concurrent access. Whatever is still installed
            // was never retired (retiring happens after swapping out), so
            // dropping it here is the unique free.
            let p = *self.ptr.get_mut();
            if !p.is_null() {
                // SAFETY: allocated via Box in `new`/`Owned::new`; unique
                // ownership per above.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }

    impl<T: fmt::Debug> fmt::Debug for Atomic<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Atomic { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::AtomicUsize;

        #[test]
        fn load_swap_round_trip() {
            let a = Atomic::new(1u32);
            let g = pin();
            assert_eq!(unsafe { *a.load(Ordering::Acquire, &g).deref() }, 1);
            let old = a.swap(Owned::new(2), Ordering::AcqRel, &g);
            assert_eq!(unsafe { *old.deref() }, 1);
            unsafe { g.defer_destroy(old) };
            assert_eq!(unsafe { *a.load(Ordering::Acquire, &g).deref() }, 2);
        }

        #[test]
        fn null_swap_empties_the_slot() {
            let a = Atomic::new(5u32);
            let g = pin();
            let old = a.swap(Shared::null(), Ordering::AcqRel, &g);
            assert!(!old.is_null());
            unsafe { drop(old.into_owned()) };
            assert!(a.load(Ordering::Acquire, &g).is_null());
        }

        #[test]
        fn loaded_value_survives_replacement() {
            let a = Atomic::new(String::from("alive"));
            let g = pin();
            let s = a.load(Ordering::Acquire, &g);
            let old = a.swap(Owned::new(String::from("new")), Ordering::AcqRel, &g);
            unsafe { g.defer_destroy(old) };
            // Reclamation cannot run while `g` pins this thread: reading
            // through `s` stays safe even though the pointee was retired.
            assert_eq!(unsafe { s.deref() }, "alive");
        }

        #[test]
        fn flush_reclaims_retired_values() {
            struct CountsDrops(&'static AtomicUsize);
            impl Drop for CountsDrops {
                fn drop(&mut self) {
                    self.0.fetch_add(1, Ordering::SeqCst);
                }
            }
            static DROPS: AtomicUsize = AtomicUsize::new(0);
            let before = DROPS.load(Ordering::SeqCst);
            let a = Atomic::new(CountsDrops(&DROPS));
            {
                let g = pin();
                let old = a.swap(Owned::new(CountsDrops(&DROPS)), Ordering::AcqRel, &g);
                unsafe { g.defer_destroy(old) };
            }
            // Unpinned: repeated flushes advance the epoch past the grace
            // period and run the deferred drop.
            for _ in 0..8 {
                flush();
                if DROPS.load(Ordering::SeqCst) > before {
                    break;
                }
            }
            assert_eq!(DROPS.load(Ordering::SeqCst), before + 1);
            drop(a);
            assert_eq!(DROPS.load(Ordering::SeqCst), before + 2);
        }

        #[test]
        fn nested_pins_share_one_epoch_slot() {
            let g1 = pin();
            let g2 = pin();
            drop(g1);
            // Still pinned through g2; a load stays valid.
            let a = Atomic::new(7u64);
            assert_eq!(unsafe { *a.load(Ordering::Acquire, &g2).deref() }, 7);
            drop(g2);
        }
    }
}
