//! Offline stand-in for the `futures` crate — executors only.
//!
//! The build environment has no network access to crates.io, so this
//! vendor crate provides the minimal executor subset the workspace uses to
//! drive [`shrink-stm`'s `TxFuture`](../shrink_stm/future/index.html):
//!
//! * [`executor::block_on`] — drive one future on the calling thread,
//!   sleeping on a [`parking_lot::EventCount`] between polls;
//! * [`executor::ThreadPool`] / [`executor::ThreadPoolBuilder`] — a
//!   fixed-size pool (no work stealing: one shared injector queue) with
//!   the same construction and `spawn_ok` surface as
//!   `futures::executor::ThreadPool`, so call sites survive a swap to the
//!   real crate unchanged.
//!
//! No combinators, no streams, no `async`-aware channels: transaction
//! bodies run synchronously inside `poll`, so the workspace never awaits
//! anything but top-level task completion.
//!
//! Swap this directory for the real crate once the registry is reachable;
//! call sites need no changes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod executor;
