//! Executors: [`block_on`] for one future on the calling thread, and a
//! fixed-size [`ThreadPool`] for many.
//!
//! # Task lifecycle (`ThreadPool`)
//!
//! Each spawned future lives in an `Arc<Task>` whose state word serializes
//! wakes against polls without locks:
//!
//! ```text
//!            wake: CAS ──────────────┐
//!            ▼                       │
//! IDLE ─► QUEUED ─► POLLING ─► IDLE  │        (Pending, no wake meanwhile)
//!                      │   └── DONE  │        (Ready)
//!                 wake │             │
//!                      ▼             │
//!                   REPOLL ─► QUEUED ┘        (woken mid-poll: re-enqueue)
//! ```
//!
//! A wake on an `IDLE` task enqueues it exactly once; a wake during
//! `POLLING` marks `REPOLL`, and the worker re-enqueues after the poll
//! returns — so a wake is never lost and a task is never in the queue
//! twice. On `Ready` the future is dropped immediately (state `DONE`),
//! breaking the `Task → future → Waker → Task` reference cycle.
//!
//! Workers sleep on one shared [`EventCount`] when the injector queue is
//! empty; every enqueue advances it. The wake-all is a thundering herd by
//! design — at ≤ 8 workers the lost-wakeup-proof simplicity wins over
//! per-worker parking.

use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::io;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::JoinHandle;

use parking_lot::EventCount;

/// Runs `future` to completion on the calling thread.
///
/// Between polls the thread sleeps on an [`EventCount`]; any `wake` of the
/// provided [`Waker`] — from any thread — advances it. The version is
/// sampled *before* each poll, so a wake delivered while the future is
/// being polled is never lost: the subsequent wait observes the advanced
/// version and re-polls immediately.
pub fn block_on<F: Future>(future: F) -> F::Output {
    struct ThreadNotify {
        ev: EventCount,
    }
    impl Wake for ThreadNotify {
        fn wake(self: Arc<Self>) {
            self.ev.advance();
        }
        fn wake_by_ref(self: &Arc<Self>) {
            self.ev.advance();
        }
    }

    let notify = Arc::new(ThreadNotify {
        ev: EventCount::new(),
    });
    let waker = Waker::from(Arc::clone(&notify));
    let mut cx = Context::from_waker(&waker);
    let mut future = std::pin::pin!(future);
    loop {
        let observed = notify.ev.version();
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(value) => return value,
            Poll::Pending => {
                notify.ev.wait_while_eq(observed, None);
            }
        }
    }
}

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// Task states; see the module docs for the transition diagram.
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const POLLING: u8 = 2;
const REPOLL: u8 = 3;
const DONE: u8 = 4;

struct Task {
    state: AtomicU8,
    /// The future, present until completion. Only the worker that moved
    /// the task to `POLLING` touches the slot, so the mutex is
    /// uncontended; it exists to make `Task: Sync` without `unsafe`.
    future: Mutex<Option<BoxFuture>>,
    shared: Arc<Shared>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        let mut state = self.state.load(Ordering::Acquire);
        loop {
            let target = match state {
                IDLE => QUEUED,
                POLLING => REPOLL,
                // Already queued, already marked for re-poll, or finished:
                // this wake is subsumed.
                _ => return,
            };
            match self.state.compare_exchange_weak(
                state,
                target,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    if target == QUEUED {
                        self.shared.enqueue(Arc::clone(self));
                    }
                    return;
                }
                Err(actual) => state = actual,
            }
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Task>>>,
    /// Workers sleep here when the queue is empty; enqueue advances it.
    work: EventCount,
    stop: AtomicBool,
}

impl Shared {
    fn enqueue(&self, task: Arc<Task>) {
        self.queue.lock().unwrap().push_back(task);
        self.work.advance();
    }

    fn run_worker(&self) {
        loop {
            // Version before the queue check: an enqueue that races the
            // empty pop advances past `observed` and the wait returns
            // immediately — the standard lost-wakeup ordering.
            let observed = self.work.version();
            let task = self.queue.lock().unwrap().pop_front();
            match task {
                Some(task) => run_task(task),
                None => {
                    if self.stop.load(Ordering::Acquire) {
                        return;
                    }
                    self.work.wait_while_eq(observed, None);
                }
            }
        }
    }
}

fn run_task(task: Arc<Task>) {
    // Only a dequeue transitions out of QUEUED, so this cannot fail.
    task.state
        .compare_exchange(QUEUED, POLLING, Ordering::AcqRel, Ordering::Acquire)
        .expect("dequeued task must be QUEUED");
    let waker = Waker::from(Arc::clone(&task));
    let mut cx = Context::from_waker(&waker);
    let mut slot = task.future.lock().unwrap();
    let Some(future) = slot.as_mut() else {
        // Completed on a previous poll; a stale queue entry is impossible
        // by the state machine, but be defensive rather than poll None.
        return;
    };
    match future.as_mut().poll(&mut cx) {
        Poll::Ready(()) => {
            // Drop the future now: it may hold wakers back to this task
            // (via suspended sub-state), and those hold the task alive.
            *slot = None;
            drop(slot);
            task.state.store(DONE, Ordering::Release);
        }
        Poll::Pending => {
            drop(slot);
            if task
                .state
                .compare_exchange(POLLING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                // A wake arrived mid-poll (state is REPOLL): the signal
                // may have been consumed by that very poll, but we cannot
                // distinguish — re-enqueue so it is never lost.
                task.state.store(QUEUED, Ordering::Release);
                task.shared.enqueue(task.clone());
            }
        }
    }
}

struct PoolInner {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.work.advance();
        for handle in self.workers.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
        // Tasks still queued are dropped with the queue; suspended tasks
        // woken after this point enqueue onto a pool nobody drains and are
        // freed when their last waker goes.
    }
}

/// A fixed-size thread-pool executor: the `futures::executor::ThreadPool`
/// construction and spawn surface over one shared injector queue (no work
/// stealing — fine for coarse tasks like transaction polls).
///
/// Cloning shares the pool. Dropping the last handle stops the workers:
/// already-running polls finish, queued and suspended tasks are dropped
/// (their `Drop` impls run, which is what cancels a suspended
/// transaction).
///
/// # Examples
///
/// ```no_run
/// let pool = futures::executor::ThreadPool::builder().pool_size(4).create().unwrap();
/// pool.spawn_ok(async { /* ... */ });
/// ```
#[derive(Clone)]
pub struct ThreadPool {
    inner: Arc<PoolInner>,
}

impl ThreadPool {
    /// Creates a pool with one worker per available CPU.
    pub fn new() -> io::Result<ThreadPool> {
        ThreadPoolBuilder::new().create()
    }

    /// Starts building a pool.
    pub fn builder() -> ThreadPoolBuilder {
        ThreadPoolBuilder::new()
    }

    /// Spawns a future onto the pool. It is polled until completion; this
    /// stub has no spawn-failure mode, matching `spawn_ok`'s infallible
    /// signature in the real crate.
    pub fn spawn_ok<F>(&self, future: F)
    where
        F: Future<Output = ()> + Send + 'static,
    {
        let shared = Arc::clone(&self.inner.shared);
        let task = Arc::new(Task {
            state: AtomicU8::new(QUEUED),
            future: Mutex::new(Some(Box::pin(future))),
            shared,
        });
        self.inner.shared.enqueue(task);
    }
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("queued", &self.inner.shared.queue.lock().unwrap().len())
            .finish_non_exhaustive()
    }
}

/// Builder for [`ThreadPool`] — `pool_size` and `name_prefix` only.
#[derive(Debug)]
pub struct ThreadPoolBuilder {
    pool_size: usize,
    name_prefix: String,
}

impl ThreadPoolBuilder {
    /// Creates a builder with one worker per available CPU.
    pub fn new() -> Self {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPoolBuilder {
            pool_size: cpus,
            name_prefix: "pool-".to_string(),
        }
    }

    /// Sets the number of worker threads.
    pub fn pool_size(&mut self, size: usize) -> &mut Self {
        assert!(size > 0, "pool size must be positive");
        self.pool_size = size;
        self
    }

    /// Sets the thread-name prefix (workers are named `<prefix><index>`).
    pub fn name_prefix(&mut self, prefix: &str) -> &mut Self {
        self.name_prefix = prefix.to_string();
        self
    }

    /// Creates the pool, spawning the worker threads.
    pub fn create(&mut self) -> io::Result<ThreadPool> {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work: EventCount::new(),
            stop: AtomicBool::new(false),
        });
        let mut workers = Vec::with_capacity(self.pool_size);
        for i in 0..self.pool_size {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("{}{}", self.name_prefix, i))
                .spawn(move || shared.run_worker())?;
            workers.push(handle);
        }
        Ok(ThreadPool {
            inner: Arc::new(PoolInner {
                shared,
                workers: Mutex::new(workers),
            }),
        })
    }
}

impl Default for ThreadPoolBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn block_on_ready() {
        assert_eq!(block_on(async { 7 }), 7);
    }

    #[test]
    fn block_on_crosses_a_thread_wake() {
        // A future that pends once and is woken from another thread.
        struct Gate {
            open: AtomicBool,
            polled: AtomicBool,
        }
        let gate = Arc::new(Gate {
            open: AtomicBool::new(false),
            polled: AtomicBool::new(false),
        });
        let waker_slot: Arc<Mutex<Option<Waker>>> = Arc::new(Mutex::new(None));

        struct Fut {
            gate: Arc<Gate>,
            slot: Arc<Mutex<Option<Waker>>>,
        }
        impl Future for Fut {
            type Output = u32;
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
                *self.slot.lock().unwrap() = Some(cx.waker().clone());
                self.gate.polled.store(true, Ordering::Release);
                if self.gate.open.load(Ordering::Acquire) {
                    Poll::Ready(9)
                } else {
                    Poll::Pending
                }
            }
        }

        let opener = {
            let gate = Arc::clone(&gate);
            let slot = Arc::clone(&waker_slot);
            std::thread::spawn(move || {
                while !gate.polled.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                gate.open.store(true, Ordering::Release);
                slot.lock().unwrap().take().unwrap().wake();
            })
        };
        let got = block_on(Fut {
            gate,
            slot: waker_slot,
        });
        opener.join().unwrap();
        assert_eq!(got, 9);
    }

    #[test]
    fn pool_runs_many_tasks() {
        let pool = ThreadPool::builder().pool_size(4).create().unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        const TASKS: usize = 1000;
        for _ in 0..TASKS {
            let counter = Arc::clone(&counter);
            pool.spawn_ok(async move {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        while counter.load(Ordering::Relaxed) < TASKS {
            std::thread::yield_now();
        }
    }

    #[test]
    fn wake_during_poll_is_not_lost() {
        // The future wakes itself *while being polled* and pends; the
        // REPOLL path must re-enqueue it for the completing poll.
        struct SelfWake {
            polls: Arc<AtomicUsize>,
        }
        impl Future for SelfWake {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.polls.fetch_add(1, Ordering::Relaxed) == 0 {
                    cx.waker().wake_by_ref();
                    Poll::Pending
                } else {
                    Poll::Ready(())
                }
            }
        }
        let pool = ThreadPool::builder().pool_size(1).create().unwrap();
        let polls = Arc::new(AtomicUsize::new(0));
        pool.spawn_ok(SelfWake {
            polls: Arc::clone(&polls),
        });
        while polls.load(Ordering::Relaxed) < 2 {
            std::thread::yield_now();
        }
    }

    #[test]
    fn dropping_the_pool_joins_workers_and_drops_queued_tasks() {
        struct NoticeDrop(Arc<AtomicBool>);
        impl Drop for NoticeDrop {
            fn drop(&mut self) {
                self.0.store(true, Ordering::Release);
            }
        }
        impl Future for NoticeDrop {
            type Output = ();
            fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
                Poll::Pending // suspends forever; only Drop ends it
            }
        }
        let dropped = Arc::new(AtomicBool::new(false));
        let pool = ThreadPool::builder().pool_size(1).create().unwrap();
        pool.spawn_ok(NoticeDrop(Arc::clone(&dropped)));
        // Give the worker a chance to poll it into IDLE (not required for
        // the assertion — queued-or-idle, both must drop with the pool).
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(pool);
        assert!(dropped.load(Ordering::Acquire), "pending task must drop");
    }
}
