//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this vendor
//! crate re-implements exactly the 0.9-style `rand` API subset the workspace
//! uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator;
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`].
//!
//! The generator is *not* cryptographically secure and the in-range sampling
//! uses plain modulo reduction (bias ≤ span/2⁶⁴, irrelevant for benchmarks
//! and property tests). Swap this directory for the real crate once the
//! registry is reachable; call sites need no changes.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    /// The standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// A generator seedable from a `u64` (SplitMix64 expansion, as real `rand`).
pub trait SeedableRng: Sized {
    /// Derives a full seed from `state` and constructs the generator.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 to fill the xoshiro state, as recommended by the
        // xoshiro authors and done by rand_core.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    #[inline]
    fn next_u64_impl(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types that can be sampled uniformly from the generator's full output
/// (the analogue of rand's `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample(rng: &mut StdRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample(rng: &mut StdRng) -> $t {
                rng.next_u64_impl() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64_impl() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> f64 {
        // 53 random bits in [0, 1).
        (rng.next_u64_impl() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample(rng: &mut StdRng) -> f32 {
        (rng.next_u64_impl() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform in-range sampler (the analogue of rand's
/// `SampleUniform`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws uniformly from `[low, high)`, or `[low, high]` if `inclusive`.
    fn sample_in(rng: &mut StdRng, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in(rng: &mut StdRng, low: $t, high: $t, inclusive: bool) -> $t {
                let span = (high as i128 - low as i128) as u128 + inclusive as u128;
                assert!(span > 0, "cannot sample empty range");
                let v = rng.next_u64_impl() as u128 % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in(rng: &mut StdRng, low: $t, high: $t, _inclusive: bool) -> $t {
                assert!(low < high, "cannot sample empty range");
                // `low + s*(high-low)` can round up to exactly `high` for s
                // near 1; resample to keep the half-open contract (as real
                // rand does). Terminates: s = 0 always yields `low < high`.
                loop {
                    let v = low + <$t as Standard>::sample(rng) * (high - low);
                    if v < high {
                        return v;
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges a value of type `T` can be drawn from.
///
/// Implemented generically over [`SampleUniform`] element types (as in real
/// `rand`), which is what lets integer-literal ranges like `0..100` infer
/// their type from the surrounding expression.
pub trait SampleRange<T> {
    /// Draws one value; panics on an empty range.
    fn sample_single(self, rng: &mut StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single(self, rng: &mut StdRng) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single(self, rng: &mut StdRng) -> T {
        assert!(self.start() <= self.end(), "cannot sample empty range");
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// The user-facing generator interface (rand 0.9 method names).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value of any [`Standard`]-samplable type.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized;

    /// A uniform value in `range`. Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized;

    /// `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized;
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }

    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

/// Non-uniform distributions (the `rand_distr` API subset the workspace
/// uses): Zipfian key popularity and exponential inter-arrival times, the
/// two shapes an open-loop traffic generator needs.
pub mod distr {
    use super::{Rng, StdRng};

    /// Types that can be sampled from a generator — the `rand_distr`
    /// `Distribution` trait, monomorphized to [`StdRng`].
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> T;
    }

    /// The Zipfian distribution over `{1, …, n}`: element `k` has
    /// probability proportional to `1 / k^s`. With `s ≈ 1` a handful of
    /// keys absorb most of the traffic — the standard model for skewed
    /// ("hot key") access popularity in KV workloads.
    ///
    /// Sampling inverts the exact cumulative distribution with a binary
    /// search over a precomputed table: `O(n)` memory once, `O(log n)` per
    /// draw, no rejection loop and no approximation.
    #[derive(Clone, Debug)]
    pub struct Zipf {
        cdf: Vec<f64>,
    }

    impl Zipf {
        /// A Zipfian over `{1, …, n}` with exponent `s`.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0` or `s` is negative or non-finite.
        pub fn new(n: usize, s: f64) -> Self {
            assert!(n > 0, "Zipf needs a non-empty support");
            assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be finite");
            let mut cdf = Vec::with_capacity(n);
            let mut total = 0.0f64;
            for k in 1..=n {
                total += (k as f64).powf(-s);
                cdf.push(total);
            }
            for c in &mut cdf {
                *c /= total;
            }
            Zipf { cdf }
        }

        /// Size of the support.
        pub fn n(&self) -> usize {
            self.cdf.len()
        }

        /// Probability of rank `k` (1-based).
        pub fn pmf(&self, k: usize) -> f64 {
            assert!((1..=self.cdf.len()).contains(&k), "rank out of support");
            if k == 1 {
                self.cdf[0]
            } else {
                self.cdf[k - 1] - self.cdf[k - 2]
            }
        }
    }

    impl Distribution<usize> for Zipf {
        /// Draws a 1-based rank in `{1, …, n}`.
        fn sample(&self, rng: &mut StdRng) -> usize {
            let u: f64 = rng.random();
            // First index whose cumulative mass covers u.
            self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1) + 1
        }
    }

    /// The exponential distribution with rate `lambda`: the inter-arrival
    /// time of a Poisson process offering `lambda` events per time unit —
    /// what an open-loop traffic generator draws between request arrivals.
    #[derive(Clone, Copy, Debug)]
    pub struct Exp {
        lambda: f64,
    }

    impl Exp {
        /// An exponential with rate `lambda` (mean `1 / lambda`).
        ///
        /// # Panics
        ///
        /// Panics unless `lambda` is positive and finite.
        pub fn new(lambda: f64) -> Self {
            assert!(
                lambda > 0.0 && lambda.is_finite(),
                "Exp rate must be positive and finite"
            );
            Exp { lambda }
        }

        /// The distribution mean, `1 / lambda`.
        pub fn mean(&self) -> f64 {
            1.0 / self.lambda
        }
    }

    impl Distribution<f64> for Exp {
        /// Draws an inter-arrival time by inverse transform:
        /// `-ln(1 - u) / lambda`.
        fn sample(&self, rng: &mut StdRng) -> f64 {
            let u: f64 = rng.random();
            // u ∈ [0, 1): 1 - u ∈ (0, 1], so ln is finite and the sample
            // non-negative.
            -(1.0 - u).ln() / self.lambda
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_constructions() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.random_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let s: i64 = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn float_range_excludes_upper_bound_even_when_tiny() {
        let mut rng = StdRng::seed_from_u64(9);
        let high = 1.0 + 2.0 * f64::EPSILON;
        for _ in 0..10_000 {
            let v: f64 = rng.random_range(1.0..high);
            assert!(v < high, "sampled the exclusive upper bound: {v}");
        }
    }

    #[test]
    fn random_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn full_width_values_vary() {
        let mut rng = StdRng::seed_from_u64(3);
        let a: u64 = rng.random();
        let b: u64 = rng.random();
        assert_ne!(a, b);
    }
}

#[cfg(test)]
mod distr_tests {
    use super::distr::{Distribution, Exp, Zipf};
    use super::{SeedableRng, StdRng};

    #[test]
    fn zipf_rank_ratio_matches_exponent() {
        // Under s = 1 the two hottest ranks should see hits in ratio ≈ 2.
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 4];
        const DRAWS: usize = 200_000;
        for _ in 0..DRAWS {
            let k = z.sample(&mut rng);
            assert!((1..=1000).contains(&k), "rank {k} out of support");
            if k <= 4 {
                counts[k - 1] += 1;
            }
        }
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((1.8..2.2).contains(&ratio), "p(1)/p(2) = {ratio}, want ≈ 2");
        // Hot head: with n=1000, s=1 the top-4 carry ~28% of the mass.
        let head = counts.iter().sum::<usize>() as f64 / DRAWS as f64;
        assert!(
            (0.24..0.33).contains(&head),
            "top-4 mass = {head}, want ≈ 0.28"
        );
    }

    #[test]
    fn zipf_s_zero_is_uniform() {
        let z = Zipf::new(8, 0.0);
        for k in 1..=8 {
            let p = z.pmf(k);
            assert!((p - 0.125).abs() < 1e-12, "pmf({k}) = {p}");
        }
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (9_000..11_000).contains(&c),
                "uniform rank {} got {c}/80000",
                i + 1
            );
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_is_decreasing() {
        let z = Zipf::new(100, 0.8);
        let mut total = 0.0;
        let mut prev = f64::INFINITY;
        for k in 1..=100 {
            let p = z.pmf(k);
            assert!(p > 0.0 && p <= prev, "pmf not decreasing at rank {k}");
            prev = p;
            total += p;
        }
        assert!((total - 1.0).abs() < 1e-9, "pmf total = {total}");
    }

    #[test]
    fn exp_mean_and_tail_shape() {
        let lambda = 4.0;
        let e = Exp::new(lambda);
        let mut rng = StdRng::seed_from_u64(20260808);
        const DRAWS: usize = 200_000;
        let mut sum = 0.0;
        let mut over_mean = 0usize;
        for _ in 0..DRAWS {
            let x = e.sample(&mut rng);
            assert!(x >= 0.0 && x.is_finite());
            sum += x;
            if x > e.mean() {
                over_mean += 1;
            }
        }
        let mean = sum / DRAWS as f64;
        assert!(
            (mean - e.mean()).abs() < 0.01 * e.mean(),
            "sample mean {mean}, want ≈ {}",
            e.mean()
        );
        // Memoryless tail: P[X > 1/λ] = e^-1 ≈ 0.368.
        let frac = over_mean as f64 / DRAWS as f64;
        assert!(
            (0.35..0.39).contains(&frac),
            "P[X > mean] = {frac}, want ≈ 0.368"
        );
    }

    #[test]
    fn samplers_are_deterministic_under_a_seed() {
        let z = Zipf::new(64, 1.2);
        let e = Exp::new(0.5);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let ks: Vec<usize> = (0..16).map(|_| z.sample(&mut rng)).collect();
            let xs: Vec<f64> = (0..16).map(|_| e.sample(&mut rng)).collect();
            (ks, xs)
        };
        assert_eq!(draw(11), draw(11));
        assert_ne!(draw(11).0, draw(12).0);
    }
}
