//! [`Mutex`]: the guard-returning mutex, built on the parked [`RawMutex`].

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};

use crate::lock_api::RawMutex as _;
use crate::raw::RawMutex;

/// A mutex whose `lock` returns the guard directly — no poisoning, and no
/// `std::sync` underneath: blocking goes through the crate's futex/parker.
pub struct Mutex<T: ?Sized> {
    raw: RawMutex,
    data: UnsafeCell<T>,
}

// SAFETY: a Mutex hands out &mut T across threads, so it is Send/Sync
// exactly when T is Send (same bounds as std::sync::Mutex).
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            raw: RawMutex::INIT,
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is acquired.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.raw.lock();
        MutexGuard {
            lock: self,
            _not_send: PhantomData,
        }
    }

    /// Attempts to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if self.raw.try_lock() {
            Some(MutexGuard {
                lock: self,
                _not_send: PhantomData,
            })
        } else {
            None
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        // SAFETY: &mut self guarantees no guards exist.
        unsafe { &mut *self.data.get() }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard for [`Mutex`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    /// Guards must unlock on the locking thread (`!Send`), matching both
    /// `parking_lot` and `std`.
    _not_send: PhantomData<*mut ()>,
}

// SAFETY: sharing a guard only shares &T.
unsafe impl<T: ?Sized + Sync> Sync for MutexGuard<'_, T> {}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard witnesses exclusive ownership of the raw lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above; &mut self prevents aliased derefs.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: this guard holds the lock by construction.
        unsafe { self.lock.raw.unlock() };
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn round_trip_and_try_lock() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let held = m.lock();
        assert!(m.try_lock().is_none(), "held ⇒ try_lock fails");
        drop(held);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn get_mut_and_default() {
        let mut m = Mutex::<Vec<u32>>::default();
        m.get_mut().push(3);
        assert_eq!(m.lock().len(), 1);
    }

    #[test]
    fn contended_increments_do_not_tear() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn debug_shows_value_or_locked() {
        let m = Mutex::new(5);
        assert!(format!("{m:?}").contains('5'));
        let _g = m.lock();
        assert!(format!("{m:?}").contains("locked"));
    }
}
