//! Futex-style wait/wake on an `AtomicU32`.
//!
//! On Linux x86_64/aarch64 these are real `futex(2)` syscalls issued via
//! inline assembly — the build is offline, so there is no `libc` crate to
//! lean on, and `std` does not expose its internal futex API. Everywhere
//! else they are backed by the portable parking lot in [`crate::parker`],
//! which provides the same no-lost-wakeup contract on `std::thread::park`.
//!
//! Contract (both backends):
//!
//! * [`wait`] blocks the calling thread **only if** `futex` still holds
//!   `expected` at the moment of the check, atomically with respect to
//!   wakers that change the word and then call [`wake_one`]/[`wake_all`].
//!   It may return spuriously; callers must re-check their predicate in a
//!   loop.
//! * [`wait_timeout`] is [`wait`] with a relative timeout (a `timespec`
//!   handed to `FUTEX_WAIT` on Linux, `thread::park_timeout` in the
//!   fallback). Like `wait` it may return early and spuriously; callers
//!   own the deadline arithmetic and must re-check both predicate and
//!   clock in a loop.
//! * [`wake_one`] wakes at most one waiter (the kernel and the fallback
//!   both drain roughly in arrival order), [`wake_all`] wakes every waiter.

use std::sync::atomic::AtomicU32;
use std::time::Duration;

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use super::*;

    const FUTEX_WAIT: usize = 0;
    const FUTEX_WAKE: usize = 1;
    /// Process-private futexes skip the cross-process hash, matching what
    /// `parking_lot`/`std` use for in-process locks.
    const FUTEX_PRIVATE_FLAG: usize = 128;

    #[cfg(target_arch = "x86_64")]
    const SYS_FUTEX: usize = 202;
    #[cfg(target_arch = "aarch64")]
    const SYS_FUTEX: usize = 98;

    /// The kernel's `struct timespec` on the 64-bit targets this module is
    /// compiled for (both fields are 64-bit there).
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    impl Timespec {
        fn from_duration(d: Duration) -> Self {
            // Saturate far beyond any deadline a caller passes; the kernel
            // rejects tv_sec < 0 with EINVAL, which a u64→i64 wrap could
            // produce.
            Timespec {
                tv_sec: d.as_secs().min(i64::MAX as u64) as i64,
                tv_nsec: d.subsec_nanos() as i64,
            }
        }
    }

    /// Raw `futex(2)`: `futex(uaddr, op, val, ts, NULL, 0)`.
    ///
    /// # Safety
    ///
    /// `uaddr` must point to a live, aligned `u32`; `ts` must be NULL or
    /// point to a live `Timespec` for the duration of the call.
    #[cfg(target_arch = "x86_64")]
    unsafe fn sys_futex(uaddr: *const u32, op: usize, val: u32, ts: *const Timespec) -> isize {
        let ret: isize;
        // SAFETY: caller guarantees `uaddr`/`ts` validity; the syscall
        // clobbers only rcx/r11/rflags, declared below.
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") SYS_FUTEX as isize => ret,
                in("rdi") uaddr,
                in("rsi") op,
                in("rdx") val as usize,
                in("r10") ts, // timeout: NULL → wait forever
                in("r8") 0usize,
                in("r9") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        ret
    }

    /// Raw `futex(2)`: `futex(uaddr, op, val, ts, NULL, 0)`.
    ///
    /// # Safety
    ///
    /// `uaddr` must point to a live, aligned `u32`; `ts` must be NULL or
    /// point to a live `Timespec` for the duration of the call.
    #[cfg(target_arch = "aarch64")]
    unsafe fn sys_futex(uaddr: *const u32, op: usize, val: u32, ts: *const Timespec) -> isize {
        let ret: isize;
        // SAFETY: caller guarantees `uaddr`/`ts` validity.
        unsafe {
            core::arch::asm!(
                "svc 0",
                inlateout("x0") uaddr as usize => ret,
                in("x1") op,
                in("x2") val as usize,
                in("x3") ts, // timeout: NULL → wait forever
                in("x4") 0usize,
                in("x5") 0usize,
                in("x8") SYS_FUTEX,
                options(nostack)
            );
        }
        ret
    }

    pub fn wait(futex: &AtomicU32, expected: u32) {
        // SAFETY: `futex` is a live aligned u32 for the duration of the call.
        // Returns 0 on wakeup, -EAGAIN if the value already changed,
        // -EINTR on signal — all of which mean "go re-check", which the
        // caller's loop does.
        unsafe {
            sys_futex(
                futex.as_ptr(),
                FUTEX_WAIT | FUTEX_PRIVATE_FLAG,
                expected,
                core::ptr::null(),
            );
        }
    }

    pub fn wait_timeout(futex: &AtomicU32, expected: u32, timeout: Duration) {
        let ts = Timespec::from_duration(timeout);
        // SAFETY: `futex` is a live aligned u32 and `ts` lives across the
        // call. Returns 0 on wakeup, -ETIMEDOUT when the relative timeout
        // elapses, -EAGAIN/-EINTR as for `wait` — in every case the caller
        // re-checks predicate and deadline.
        unsafe {
            sys_futex(
                futex.as_ptr(),
                FUTEX_WAIT | FUTEX_PRIVATE_FLAG,
                expected,
                &ts,
            );
        }
    }

    pub fn wake_one(futex: &AtomicU32) -> usize {
        // SAFETY: `futex` is a live aligned u32.
        let woken = unsafe {
            sys_futex(
                futex.as_ptr(),
                FUTEX_WAKE | FUTEX_PRIVATE_FLAG,
                1,
                core::ptr::null(),
            )
        };
        woken.max(0) as usize
    }

    pub fn wake_all(futex: &AtomicU32) -> usize {
        // SAFETY: `futex` is a live aligned u32.
        let woken = unsafe {
            sys_futex(
                futex.as_ptr(),
                FUTEX_WAKE | FUTEX_PRIVATE_FLAG,
                i32::MAX as u32,
                core::ptr::null(),
            )
        };
        woken.max(0) as usize
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    use super::*;
    use crate::parker;
    use std::sync::atomic::Ordering;

    pub fn wait(futex: &AtomicU32, expected: u32) {
        let addr = futex.as_ptr() as usize;
        // The validate closure runs under the parker's bucket lock, which
        // both this thread and every waker serialize through — that is the
        // atomic compare the kernel futex performs.
        parker::park(addr, || futex.load(Ordering::SeqCst) == expected);
    }

    pub fn wait_timeout(futex: &AtomicU32, expected: u32, timeout: Duration) {
        let addr = futex.as_ptr() as usize;
        let _ = parker::park_timeout(addr, || futex.load(Ordering::SeqCst) == expected, timeout);
    }

    pub fn wake_one(futex: &AtomicU32) -> usize {
        parker::unpark_one(futex.as_ptr() as usize)
    }

    pub fn wake_all(futex: &AtomicU32) -> usize {
        parker::unpark_all(futex.as_ptr() as usize)
    }
}

/// Blocks until woken, if `futex` still holds `expected`. May return
/// spuriously; call in a predicate loop.
#[inline]
pub fn wait(futex: &AtomicU32, expected: u32) {
    sys::wait(futex, expected);
}

/// Blocks until woken or `timeout` elapses, if `futex` still holds
/// `expected`. May return early and spuriously; callers re-check their
/// predicate *and* their deadline in a loop (this function deliberately
/// does not report which of wake/timeout happened — the word is the truth).
#[inline]
pub fn wait_timeout(futex: &AtomicU32, expected: u32, timeout: Duration) {
    sys::wait_timeout(futex, expected, timeout);
}

/// Wakes at most one thread blocked in [`wait`] on `futex`. Returns the
/// number of threads woken.
#[inline]
pub fn wake_one(futex: &AtomicU32) -> usize {
    sys::wake_one(futex)
}

/// Wakes every thread blocked in [`wait`] on `futex`. Returns the number of
/// threads woken.
#[inline]
pub fn wake_all(futex: &AtomicU32) -> usize {
    sys::wake_all(futex)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn wait_with_stale_expected_returns_immediately() {
        let word = AtomicU32::new(7);
        // Expected ≠ current: the futex compare fails, no sleep.
        wait(&word, 0);
    }

    #[test]
    fn wake_with_no_waiters_is_a_noop() {
        let word = AtomicU32::new(0);
        assert_eq!(wake_one(&word), 0);
        assert_eq!(wake_all(&word), 0);
    }

    #[test]
    fn wait_wake_round_trip() {
        let word = Arc::new(AtomicU32::new(0));
        let sleeper = {
            let word = Arc::clone(&word);
            thread::spawn(move || {
                while word.load(Ordering::SeqCst) == 0 {
                    wait(&word, 0);
                }
            })
        };
        // Let it reach the wait (or spin past it — both are fine).
        thread::sleep(Duration::from_millis(20));
        word.store(1, Ordering::SeqCst);
        wake_one(&word);
        sleeper.join().unwrap();
    }

    #[test]
    fn timed_wait_expires_without_a_waker() {
        let word = AtomicU32::new(0);
        let start = std::time::Instant::now();
        let deadline = start + Duration::from_millis(40);
        // Nobody will ever wake this word: only the clock can end the wait.
        // A single call may return early (EINTR, spurious wakeups are part
        // of the contract), so loop on the deadline exactly like production
        // callers do — the property under test is that the loop comes back
        // shortly after the deadline instead of sleeping forever.
        loop {
            let now = std::time::Instant::now();
            if now >= deadline {
                break;
            }
            wait_timeout(&word, 0, deadline - now);
        }
        assert!(
            start.elapsed() >= Duration::from_millis(40),
            "timed wait loop ended {:?} early",
            start.elapsed()
        );
    }

    #[test]
    fn timed_wait_with_stale_expected_returns_immediately() {
        let word = AtomicU32::new(7);
        let start = std::time::Instant::now();
        wait_timeout(&word, 0, Duration::from_secs(5));
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "stale compare must not consume the timeout"
        );
    }

    #[test]
    fn timed_wait_is_woken_before_expiry() {
        let word = Arc::new(AtomicU32::new(0));
        let sleeper = {
            let word = Arc::clone(&word);
            thread::spawn(move || {
                let start = std::time::Instant::now();
                while word.load(Ordering::SeqCst) == 0 {
                    wait_timeout(&word, 0, Duration::from_secs(10));
                }
                start.elapsed()
            })
        };
        thread::sleep(Duration::from_millis(20));
        word.store(1, Ordering::SeqCst);
        wake_one(&word);
        let waited = sleeper.join().unwrap();
        assert!(
            waited < Duration::from_secs(5),
            "waker must cut the timeout short, waited {waited:?}"
        );
    }

    #[test]
    fn wake_all_releases_a_crowd() {
        let word = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let word = Arc::clone(&word);
                thread::spawn(move || {
                    while word.load(Ordering::SeqCst) == 0 {
                        wait(&word, 0);
                    }
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(20));
        word.store(1, Ordering::SeqCst);
        wake_all(&word);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn wake_one_leaves_other_waiters_parked() {
        // Two sleepers gated on separate "go" words sharing one futex word:
        // after one wake_one, at most one may proceed. We can't assert
        // "exactly one woke" portably (spurious wakeups are allowed), but we
        // can assert the waking path works one-at-a-time by re-waking.
        let word = Arc::new(AtomicU32::new(0));
        let done = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let word = Arc::clone(&word);
                let done = Arc::clone(&done);
                thread::spawn(move || {
                    while word.load(Ordering::SeqCst) == 0 {
                        wait(&word, 0);
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(20));
        word.store(1, Ordering::SeqCst);
        // Wake until both have run; each wake_one frees at most one.
        let mut rounds = 0;
        while done.load(Ordering::SeqCst) < 2 && rounds < 1000 {
            wake_one(&word);
            thread::sleep(Duration::from_millis(1));
            rounds += 1;
        }
        assert_eq!(done.load(Ordering::SeqCst), 2);
        for h in handles {
            h.join().unwrap();
        }
    }
}
