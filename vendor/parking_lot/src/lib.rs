//! Offline stand-in for the `parking_lot` crate — now a real parking-based
//! locking subsystem, not a `std::sync` facade.
//!
//! The build environment has no network access to crates.io, so this vendor
//! crate provides the `parking_lot` API subset the workspace uses. Since
//! the futex rewrite it no longer wraps `std::sync` at all:
//!
//! * [`futex`] — `futex(2)` wait/wake on Linux x86_64/aarch64 (raw syscalls
//!   via inline asm; there is no `libc` offline), with a portable
//!   [`parker`]-based fallback elsewhere; timed waits take a `timespec` on
//!   the syscall path and `thread::park_timeout` on the fallback;
//! * [`parker`] — the namesake miniature parking lot: address-keyed FIFO
//!   wait queues over `std::thread::park`;
//! * [`EventCount`] — a versioned futex (version word + waiter bit):
//!   threads sleep until the version advances past an observed value, with
//!   deadline support and syscall-free advances when nobody waits. The STM
//!   schedulers use one per thread as the attempt epoch (DESIGN.md §8.5);
//! * [`RawMutex`] — word-sized three-state parked mutex (inline CAS fast
//!   path → bounded spin → futex wait; wake-one handoff, FIFO-ish). Its
//!   guardless `lock`/`unlock` pair can span scopes, which the STM
//!   serialization lock needs (release happens in scheduler hooks);
//! * [`Mutex`] / [`RwLock`] — guard-returning locks built on the same
//!   words: no poisoning, no `std::sync` bookkeeping, and waiters park
//!   instead of burning a core;
//! * [`SpinRawMutex`] — the previous spin-then-yield raw mutex, retained
//!   solely as the benchmark baseline (`bench_locks`, DESIGN.md §8);
//! * [`lock_api`] — the raw-mutex trait `parking_lot` re-exports.
//!
//! Swap this directory for the real crate once the registry is reachable;
//! call sites need no changes.

#![warn(missing_docs)]

pub mod futex;
pub mod parker;

mod eventcount;
mod mutex;
mod raw;
mod rwlock;

pub use eventcount::{Advance, EventCount, WaitOutcome};
pub use mutex::{Mutex, MutexGuard};
pub use raw::{RawMutex, SpinRawMutex};
pub use rwlock::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// The `lock_api` facade: the raw-mutex trait `parking_lot` re-exports.
pub mod lock_api {
    /// A raw (guardless) mutex.
    ///
    /// # Safety
    ///
    /// Implementations must provide mutual exclusion between `lock` and
    /// `unlock`, and `unlock` must only be called by the lock holder.
    pub unsafe trait RawMutex {
        /// An unlocked mutex, usable in constant contexts.
        const INIT: Self;

        /// Blocks until the lock is acquired.
        fn lock(&self);

        /// Attempts to acquire the lock without blocking.
        fn try_lock(&self) -> bool;

        /// Releases the lock.
        ///
        /// # Safety
        ///
        /// The calling thread must hold the lock.
        unsafe fn unlock(&self);
    }
}
