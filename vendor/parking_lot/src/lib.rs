//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this vendor
//! crate provides the `parking_lot` API subset the workspace uses, backed by
//! `std::sync` primitives:
//!
//! * [`Mutex`] / [`RwLock`] — guard-returning `lock()` / `read()` / `write()`
//!   without a `Result` (poisoning is swallowed, matching parking_lot's
//!   no-poisoning semantics);
//! * [`RawMutex`] and the [`lock_api::RawMutex`] trait — a spin-then-yield
//!   raw mutex whose guardless `lock`/`unlock` pair can span scopes (the
//!   serialization lock needs to be released from scheduler hooks).
//!
//! Fairness and parking-lot queueing are *not* reproduced; under heavy
//! contention the raw mutex degrades to yielding. Swap this directory for
//! the real crate once the registry is reachable; call sites need no
//! changes.

#![warn(missing_docs)]

use std::fmt;
use std::sync::PoisonError;

/// The `lock_api` facade: the raw-mutex trait `parking_lot` re-exports.
pub mod lock_api {
    /// A raw (guardless) mutex.
    ///
    /// # Safety
    ///
    /// Implementations must provide mutual exclusion between `lock` and
    /// `unlock`, and `unlock` must only be called by the lock holder.
    pub unsafe trait RawMutex {
        /// An unlocked mutex, usable in constant contexts.
        const INIT: Self;

        /// Blocks until the lock is acquired.
        fn lock(&self);

        /// Attempts to acquire the lock without blocking.
        fn try_lock(&self) -> bool;

        /// Releases the lock.
        ///
        /// # Safety
        ///
        /// The calling thread must hold the lock.
        unsafe fn unlock(&self);
    }
}

/// A raw guardless mutex: spin briefly, then yield to the OS scheduler.
pub struct RawMutex {
    locked: std::sync::atomic::AtomicBool,
}

unsafe impl lock_api::RawMutex for RawMutex {
    const INIT: RawMutex = RawMutex {
        locked: std::sync::atomic::AtomicBool::new(false),
    };

    fn lock(&self) {
        use std::sync::atomic::Ordering;
        let mut spins = 0u32;
        loop {
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
            // Spin a little for short critical sections, then yield so a
            // descheduled holder can make progress.
            while self.locked.load(Ordering::Relaxed) {
                if spins < 64 {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    fn try_lock(&self) -> bool {
        use std::sync::atomic::Ordering;
        self.locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    unsafe fn unlock(&self) {
        self.locked
            .store(false, std::sync::atomic::Ordering::Release);
    }
}

impl fmt::Debug for RawMutex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RawMutex { .. }")
    }
}

/// A mutex whose `lock` returns the guard directly (no poisoning).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A readers-writer lock whose `read`/`write` return guards directly.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared RAII guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive RAII guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Blocks until shared access is acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until exclusive access is acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::lock_api::RawMutex as _;
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_shared_then_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn raw_mutex_excludes() {
        let raw = Arc::new(RawMutex::INIT);
        let counter = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let raw = Arc::clone(&raw);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        raw.lock();
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        unsafe { raw.unlock() };
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }
}
