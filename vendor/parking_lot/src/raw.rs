//! Raw (guardless) mutexes: the parked [`RawMutex`] and the spin-then-yield
//! [`SpinRawMutex`] baseline it replaced.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use crate::futex;
use crate::lock_api;

/// Lock states of [`RawMutex`].
const UNLOCKED: u32 = 0;
const LOCKED: u32 = 1;
/// Locked with (possibly) parked waiters: unlock must issue a wake.
const CONTENDED: u32 = 2;

/// Spins before the first park. Short critical sections (the serialization
/// lock guards one transaction attempt, the `Mutex`/`RwLock` built on this
/// guard a few field updates) usually release within this budget; past it,
/// burning more cycles only taxes the overloaded regime parking exists for.
const SPIN_LIMIT: u32 = 40;

/// A word-sized parking raw mutex.
///
/// The uncontended path is a single inline CAS in both directions. Under
/// contention a locker spins briefly, then publishes `CONTENDED` and parks
/// in [`futex::wait`]; `unlock` hands off with one [`futex::wake_one`]
/// (kernel futex queues drain FIFO-ish, and the portable fallback parker is
/// strictly FIFO). A thread that waited even once acquires via
/// `swap(CONTENDED)`, conservatively keeping the waiter bit until an unlock
/// finds no one to wake — the classic three-state futex mutex.
///
/// Guardless `lock`/`unlock` can span scopes (the serialization lock is
/// released from scheduler hooks, not where it was taken).
pub struct RawMutex {
    state: AtomicU32,
}

impl RawMutex {
    #[cold]
    fn lock_slow(&self) {
        let mut spins = 0;
        loop {
            let s = self.state.load(Ordering::Relaxed);
            if s == UNLOCKED {
                if self
                    .state
                    .compare_exchange_weak(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return;
                }
                continue;
            }
            // Someone is already parked — skip straight to parking; more
            // spinning would only steal cycles from the holder.
            if s == CONTENDED || spins >= SPIN_LIMIT {
                break;
            }
            spins += 1;
            std::hint::spin_loop();
        }
        // Park until the swap observes an unlock. Claiming with CONTENDED
        // (not LOCKED) keeps the wake obligation alive for waiters behind us.
        while self.state.swap(CONTENDED, Ordering::Acquire) != UNLOCKED {
            futex::wait(&self.state, CONTENDED);
        }
    }
}

unsafe impl lock_api::RawMutex for RawMutex {
    const INIT: RawMutex = RawMutex {
        state: AtomicU32::new(UNLOCKED),
    };

    #[inline]
    fn lock(&self) {
        if self
            .state
            .compare_exchange(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.lock_slow();
        }
    }

    #[inline]
    fn try_lock(&self) -> bool {
        self.state
            .compare_exchange(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    #[inline]
    unsafe fn unlock(&self) {
        if self.state.swap(UNLOCKED, Ordering::Release) == CONTENDED {
            futex::wake_one(&self.state);
        }
    }
}

impl fmt::Debug for RawMutex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RawMutex { .. }")
    }
}

/// The previous spin-then-yield raw mutex, retained as the benchmark
/// baseline the parked [`RawMutex`] is measured against (see
/// `crates/bench/src/bin/bench_locks.rs` and DESIGN.md §8).
///
/// Every waiter burns its scheduling quantum polling `locked`, yielding
/// between polls — exactly the behaviour that taxes overloaded serialized
/// workloads. Do not use it outside comparisons.
pub struct SpinRawMutex {
    locked: AtomicBool,
}

unsafe impl lock_api::RawMutex for SpinRawMutex {
    const INIT: SpinRawMutex = SpinRawMutex {
        locked: AtomicBool::new(false),
    };

    fn lock(&self) {
        let mut spins = 0u32;
        loop {
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
            // Spin a little for short critical sections, then yield so a
            // descheduled holder can make progress.
            while self.locked.load(Ordering::Relaxed) {
                if spins < 64 {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    fn try_lock(&self) -> bool {
        self.locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    unsafe fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }
}

impl fmt::Debug for SpinRawMutex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SpinRawMutex { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock_api::RawMutex as _;
    use std::sync::Arc;

    fn hammer<M: lock_api::RawMutex + Send + Sync + 'static>(raw: Arc<M>) {
        let counter = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let raw = Arc::clone(&raw);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        raw.lock();
                        // Non-atomic-looking increment: torn only if mutual
                        // exclusion fails.
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        unsafe { raw.unlock() };
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn parked_raw_mutex_excludes() {
        hammer(Arc::new(RawMutex::INIT));
    }

    #[test]
    fn spin_raw_mutex_excludes() {
        hammer(Arc::new(SpinRawMutex::INIT));
    }

    #[test]
    fn try_lock_respects_holder() {
        let raw = RawMutex::INIT;
        assert!(raw.try_lock());
        assert!(!raw.try_lock());
        unsafe { raw.unlock() };
        assert!(raw.try_lock());
        unsafe { raw.unlock() };
    }

    #[test]
    fn contended_state_resets_after_drain() {
        // A lock that saw parked waiters must return to the uncontended fast
        // path once they drain (no stuck CONTENDED ⇒ no wake syscall storm).
        let raw = Arc::new(RawMutex::INIT);
        raw.lock();
        let waiter = {
            let raw = Arc::clone(&raw);
            std::thread::spawn(move || {
                raw.lock();
                unsafe { raw.unlock() };
            })
        };
        // Let the waiter park (state → CONTENDED).
        while raw.state.load(Ordering::Relaxed) != CONTENDED {
            std::thread::yield_now();
        }
        unsafe { raw.unlock() };
        waiter.join().unwrap();
        assert_eq!(raw.state.load(Ordering::Relaxed), UNLOCKED);
        assert!(raw.try_lock(), "fast path restored");
        unsafe { raw.unlock() };
    }
}
