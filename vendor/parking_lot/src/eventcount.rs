//! An *event count*: a versioned futex that lets threads sleep until a
//! counter advances, with no lost wakeups and no polling.
//!
//! The classic primitive behind "wait until something happens" schemes
//! (Reed & Kanodia's eventcounts; `folly::EventCount` is the modern
//! incarnation): a monotonically advancing **version** plus a way to block
//! until the version moves past a previously observed value. The STM
//! scheduler stack uses one per thread as the *attempt epoch* — bumped on
//! every commit/abort — so a transaction serialized behind an enemy sleeps
//! in the kernel until the enemy actually finishes, instead of burning its
//! core in a `yield_now` poll loop (DESIGN.md §8.5).
//!
//! # Layout and protocol
//!
//! One `AtomicU32` holds everything the wake path needs:
//!
//! * **bit 0** — the *waiter bit*: set by a thread about to sleep, cleared
//!   by the next [`advance`](EventCount::advance);
//! * **bits 1..32** — the version (31 bits, wrapping).
//!
//! A waiter that observed version `v` CASes the waiter bit on and then
//! futex-waits on the *exact word it installed*. An advancer bumps the
//! version with one `fetch_add(2)` (bit 0 is untouched — adding 2 preserves
//! parity) and issues a `wake_all` only when the old word carried the
//! waiter bit, so advancing with nobody asleep stays a single RMW with no
//! syscall. The futex compare closes every window: between the CAS and the
//! sleep the word cannot change without the kernel (or the fallback
//! parker's bucket lock) noticing and refusing the sleep.
//!
//! Clearing the bit races benignly with a fresh waiter setting it for the
//! *new* version: the fresh waiter's futex compare fails (the word it
//! expects has the bit set, the cleared word does not), it re-loops once
//! and re-installs the bit. Nothing is lost, one extra iteration is paid.
//!
//! A second word tracks the **exact number of threads inside
//! [`wait_while_eq`]** (`SeqCst` increment before the first predicate
//! check, decrement after the last). It plays no part in the wake
//! protocol; it exists so tests and benchmarks can deterministically
//! handshake with a waiter ("don't wake until the victim is provably
//! parked") instead of racing a `sleep` against it.
//!
//! [`wait_while_eq`]: EventCount::wait_while_eq
//!
//! # Version width
//!
//! 31 bits wrap after 2³¹ advances. Equality-based waiting is immune to
//! wrapping unless a waiter sleeps across *exactly* a multiple of 2³¹
//! advances — and every waiter in this codebase sleeps with a deadline
//! measured in milliseconds, during which 2³¹ advances do not happen.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

use crate::futex;

/// Bit 0 of the state word: "at least one thread is (about to be) asleep".
const WAITER_BIT: u32 = 1;
/// One version step in state-word units (the version lives in bits 1..32).
const VERSION_STEP: u32 = 2;

/// How a [`EventCount::wait_while_eq`] call ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The version moved past the observed value.
    Advanced,
    /// The deadline expired with the version still equal to the observed
    /// value.
    TimedOut,
}

/// What one [`EventCount::advance`] call did — the version it produced and
/// whether/how the wake side fired, so callers can account wasted wakeups
/// (`wake_issued && woken == 0`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Advance {
    /// The version after the bump.
    pub version: u32,
    /// Whether a futex wake was issued (the old word carried the waiter
    /// bit).
    pub wake_issued: bool,
    /// How many threads the wake released (0 when none was issued, or when
    /// the flagged waiters had already left on their own).
    pub woken: usize,
}

/// A futex-backed event count: `version()` / `advance()` /
/// `wait_while_eq(observed, deadline)`.
///
/// # Examples
///
/// ```
/// use parking_lot::{EventCount, WaitOutcome};
/// use std::time::{Duration, Instant};
///
/// let ec = EventCount::new();
/// let seen = ec.version();
/// // Nothing advanced: a bounded wait times out.
/// let outcome = ec.wait_while_eq(seen, Some(Instant::now() + Duration::from_millis(1)));
/// assert_eq!(outcome, WaitOutcome::TimedOut);
/// ec.advance();
/// // Advanced past `seen`: the wait is satisfied without sleeping.
/// assert_eq!(ec.wait_while_eq(seen, None), WaitOutcome::Advanced);
/// ```
#[derive(Debug, Default)]
pub struct EventCount {
    /// Waiter bit (bit 0) + wrapping 31-bit version (bits 1..32).
    state: AtomicU32,
    /// Exact count of threads currently inside `wait_while_eq`.
    waiters: AtomicU32,
}

impl EventCount {
    /// Creates an event count at version 0.
    pub const fn new() -> Self {
        EventCount {
            state: AtomicU32::new(0),
            waiters: AtomicU32::new(0),
        }
    }

    /// The current version.
    ///
    /// `SeqCst`: a caller that samples the version and then publishes data
    /// (e.g. stamps it into an abort record) needs the sample ordered
    /// against the advancer's bump in the single total order the waiters
    /// also observe.
    pub fn version(&self) -> u32 {
        self.state.load(Ordering::SeqCst) >> 1
    }

    /// Exact number of threads currently blocked in (or entering/leaving)
    /// [`wait_while_eq`](Self::wait_while_eq). A handshake signal for tests
    /// and benchmarks, not part of the wake protocol.
    pub fn waiters(&self) -> u32 {
        self.waiters.load(Ordering::SeqCst)
    }

    /// Bumps the version and wakes every waiter that saw the old one.
    ///
    /// One `fetch_add` when nobody is asleep; a clear-bit RMW plus one
    /// `wake_all` syscall when the waiter bit was set.
    pub fn advance(&self) -> Advance {
        let old = self.state.fetch_add(VERSION_STEP, Ordering::SeqCst);
        let version = (old >> 1).wrapping_add(1) & (u32::MAX >> 1);
        if old & WAITER_BIT != 0 {
            // Clear the bit so quiescent periods go back to syscall-free
            // advances. This may race a fresh waiter installing the bit for
            // the *new* version; see the module docs — the futex compare
            // turns that into one extra waiter loop, never a lost wake.
            self.state.fetch_and(!WAITER_BIT, Ordering::SeqCst);
            let woken = futex::wake_all(&self.state);
            Advance {
                version,
                wake_issued: true,
                woken,
            }
        } else {
            Advance {
                version,
                wake_issued: false,
                woken: 0,
            }
        }
    }

    /// Blocks the calling thread while `version() == observed`, up to
    /// `deadline` (`None` waits indefinitely).
    ///
    /// Returns immediately with [`WaitOutcome::Advanced`] if the version
    /// already moved. Never yields-polls: all blocking is futex/parker
    /// sleeping.
    pub fn wait_while_eq(&self, observed: u32, deadline: Option<Instant>) -> WaitOutcome {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let outcome = self.wait_inner(observed, deadline);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        outcome
    }

    fn wait_inner(&self, observed: u32, deadline: Option<Instant>) -> WaitOutcome {
        loop {
            let cur = self.state.load(Ordering::SeqCst);
            if cur >> 1 != observed {
                return WaitOutcome::Advanced;
            }
            // An already-expired deadline ends the wait before the waiter
            // bit is installed — otherwise a zero-duration wait would leave
            // the bit set with no sleeper, and the next advance would pay a
            // wake syscall that releases nobody. (The version was checked
            // just above, so TimedOut is honest here.)
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return WaitOutcome::TimedOut;
            }
            // Install the waiter bit for the word we are about to sleep on.
            let target = cur | WAITER_BIT;
            if cur & WAITER_BIT == 0
                && self
                    .state
                    .compare_exchange(cur, target, Ordering::SeqCst, Ordering::SeqCst)
                    .is_err()
            {
                // Lost the race: either the version moved or another waiter
                // installed the bit. Re-evaluate from the top.
                continue;
            }
            match deadline {
                None => futex::wait(&self.state, target),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        // Final authoritative check before reporting expiry.
                        if self.state.load(Ordering::SeqCst) >> 1 != observed {
                            return WaitOutcome::Advanced;
                        }
                        return WaitOutcome::TimedOut;
                    }
                    futex::wait_timeout(&self.state, target, d - now);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn versions_count_advances() {
        let ec = EventCount::new();
        assert_eq!(ec.version(), 0);
        for i in 1..=5u32 {
            let adv = ec.advance();
            assert_eq!(adv.version, i);
            assert_eq!(ec.version(), i);
            assert!(!adv.wake_issued, "no waiters: no wake syscall");
        }
    }

    #[test]
    fn wait_on_stale_version_returns_immediately() {
        let ec = EventCount::new();
        ec.advance();
        assert_eq!(ec.wait_while_eq(0, None), WaitOutcome::Advanced);
        assert_eq!(ec.waiters(), 0);
    }

    #[test]
    fn bounded_wait_times_out_and_respects_the_deadline() {
        let ec = EventCount::new();
        let deadline = Instant::now() + Duration::from_millis(30);
        let outcome = ec.wait_while_eq(ec.version(), Some(deadline));
        assert_eq!(outcome, WaitOutcome::TimedOut);
        assert!(Instant::now() >= deadline, "must not report expiry early");
    }

    #[test]
    fn expired_deadline_skips_the_sleep() {
        let ec = EventCount::new();
        let outcome = ec.wait_while_eq(ec.version(), Some(Instant::now()));
        assert_eq!(outcome, WaitOutcome::TimedOut);
    }

    #[test]
    fn advance_wakes_a_parked_waiter() {
        let ec = Arc::new(EventCount::new());
        let observed = ec.version();
        let waiter = {
            let ec = Arc::clone(&ec);
            thread::spawn(move || ec.wait_while_eq(observed, None))
        };
        // Deterministic handshake: wait until the waiter is accounted for
        // before advancing (no sleep race).
        while ec.waiters() == 0 {
            thread::yield_now();
        }
        let adv = ec.advance();
        assert!(adv.wake_issued, "a registered waiter must trigger a wake");
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Advanced);
        assert_eq!(ec.waiters(), 0);
    }

    #[test]
    fn waiter_bit_resets_after_a_wake_round() {
        let ec = Arc::new(EventCount::new());
        let observed = ec.version();
        let waiter = {
            let ec = Arc::clone(&ec);
            thread::spawn(move || ec.wait_while_eq(observed, None))
        };
        while ec.waiters() == 0 {
            thread::yield_now();
        }
        // The waiter may or may not have installed the bit yet; advancing
        // handles both. After it leaves, the next advance must be quiet.
        ec.advance();
        waiter.join().unwrap();
        let adv = ec.advance();
        assert!(
            !adv.wake_issued,
            "waiter bit must not stick after the crowd drained"
        );
    }

    #[test]
    fn many_waiters_all_release_on_one_advance() {
        let ec = Arc::new(EventCount::new());
        let observed = ec.version();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let ec = Arc::clone(&ec);
                thread::spawn(move || ec.wait_while_eq(observed, None))
            })
            .collect();
        while ec.waiters() < 4 {
            thread::yield_now();
        }
        ec.advance();
        for h in handles {
            assert_eq!(h.join().unwrap(), WaitOutcome::Advanced);
        }
        assert_eq!(ec.waiters(), 0);
    }
}
