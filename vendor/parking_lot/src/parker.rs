//! A miniature parking lot: address-keyed FIFO wait queues over
//! [`std::thread::park`].
//!
//! This is the portable backend behind [`crate::futex`] on targets where the
//! real `futex(2)` syscall is unavailable, and the namesake of the crate: a
//! global table of buckets, each holding a FIFO queue of parked threads
//! keyed by the address of the atomic they are waiting on.
//!
//! Semantics mirror a futex:
//!
//! * [`park`] atomically checks a caller-supplied `validate` predicate under
//!   the bucket lock and, only if it still holds, enqueues the calling
//!   thread and blocks it. A waker that changes the waited-on word and then
//!   calls [`unpark_one`]/[`unpark_all`] therefore cannot lose the wakeup:
//!   either the sleeper revalidates and refuses to sleep, or it is in the
//!   queue by the time the waker scans it.
//! * [`unpark_one`] wakes the **oldest** waiter on the address (FIFO), so
//!   convoys drain in arrival order.
//! * [`park_timeout`] additionally gives up after a relative timeout,
//!   removing itself from the queue under the bucket lock — so a timed-out
//!   thread can never absorb (and thereby lose) a wake meant for a later
//!   waiter: either it dequeues itself (timeout) or a waker dequeued it
//!   first (wake), decided atomically by the bucket lock.
//! * Spurious [`std::thread::park`] returns are absorbed internally; `park`
//!   only returns once the thread was explicitly unparked (or validation
//!   failed).
//!
//! The bucket lock is a plain spin lock: critical sections are a handful of
//! `Vec` operations, and the queue is only touched on the slow path of the
//! locks built on top.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, Thread};
use std::time::{Duration, Instant};

/// One parked thread: the address it waits on, its handle, and the wake
/// flag that guards against spurious `thread::park` returns.
struct WaitNode {
    addr: usize,
    thread: Thread,
    signalled: AtomicBool,
}

/// A hash bucket: spin lock plus FIFO queue of waiters.
struct Bucket {
    lock: AtomicBool,
    queue: UnsafeCell<Vec<Arc<WaitNode>>>,
}

// SAFETY: `queue` is only accessed while `lock` is held (see `with_queue`).
unsafe impl Sync for Bucket {}

impl Bucket {
    const fn new() -> Self {
        Bucket {
            lock: AtomicBool::new(false),
            queue: UnsafeCell::new(Vec::new()),
        }
    }

    /// Runs `f` with the queue, holding the bucket spin lock.
    fn with_queue<R>(&self, f: impl FnOnce(&mut Vec<Arc<WaitNode>>) -> R) -> R {
        while self
            .lock
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        // SAFETY: the spin lock above grants exclusive access to `queue`.
        let result = f(unsafe { &mut *self.queue.get() });
        self.lock.store(false, Ordering::Release);
        result
    }
}

const BUCKET_COUNT: usize = 64;

static TABLE: [Bucket; BUCKET_COUNT] = [const { Bucket::new() }; BUCKET_COUNT];

/// Maps an address to its bucket. Addresses of distinct `AtomicU32`s are at
/// least 4 apart, so the low two bits carry no information.
fn bucket(addr: usize) -> &'static Bucket {
    // Fibonacci hashing spreads consecutive words across buckets. Hash in
    // u64 so the constant and the >> 32 stay valid on 32-bit targets.
    let hash = ((addr as u64) >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    &TABLE[((hash >> 32) as usize) % BUCKET_COUNT]
}

/// Parks the calling thread on `addr` until unparked.
///
/// `validate` runs under the bucket lock; if it returns `false` the thread
/// is not enqueued and `park` returns immediately. This is the futex
/// compare: pass a check that the waited-on word still has its "I should
/// sleep" value.
pub fn park(addr: usize, validate: impl FnOnce() -> bool) {
    let node = Arc::new(WaitNode {
        addr,
        thread: thread::current(),
        signalled: AtomicBool::new(false),
    });
    let enqueued = bucket(addr).with_queue(|queue| {
        if !validate() {
            return false;
        }
        queue.push(Arc::clone(&node));
        true
    });
    if !enqueued {
        return;
    }
    while !node.signalled.load(Ordering::Acquire) {
        thread::park();
    }
}

/// Parks the calling thread on `addr` until unparked or `timeout` elapses.
///
/// Returns `true` if the thread was unparked (or `validate` refused the
/// sleep), `false` on timeout. A timed-out thread dequeues itself under the
/// bucket lock; if a waker got there first the wake wins and this returns
/// `true` — a wake is never silently consumed by an expiring waiter.
pub fn park_timeout(addr: usize, validate: impl FnOnce() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now().checked_add(timeout);
    let node = Arc::new(WaitNode {
        addr,
        thread: thread::current(),
        signalled: AtomicBool::new(false),
    });
    let enqueued = bucket(addr).with_queue(|queue| {
        if !validate() {
            return false;
        }
        queue.push(Arc::clone(&node));
        true
    });
    if !enqueued {
        return true;
    }
    loop {
        if node.signalled.load(Ordering::Acquire) {
            return true;
        }
        let remaining = deadline.map(|d| d.saturating_duration_since(Instant::now()));
        match remaining {
            // An unrepresentable deadline (`Instant` overflow) waits forever.
            None => thread::park(),
            Some(r) if !r.is_zero() => thread::park_timeout(r),
            Some(_) => {
                // Expired: dequeue ourselves, atomically with the wakers.
                let removed = bucket(addr).with_queue(|queue| {
                    queue
                        .iter()
                        .position(|n| Arc::ptr_eq(n, &node))
                        .map(|i| queue.remove(i))
                        .is_some()
                });
                if removed {
                    return false;
                }
                // A waker dequeued us first; `signalled` was set under the
                // bucket lock we just held, so the wake is already visible.
                debug_assert!(node.signalled.load(Ordering::Acquire));
                return true;
            }
        }
    }
}

/// Unparks the oldest thread parked on `addr`. Returns how many threads
/// were woken (0 or 1).
pub fn unpark_one(addr: usize) -> usize {
    // `signalled` is set while the bucket lock is held: a concurrently
    // timing-out `park_timeout` that fails to find itself in the queue can
    // then rely on the flag already being true.
    let node = bucket(addr).with_queue(|queue| {
        queue
            .iter()
            .position(|n| n.addr == addr)
            .map(|i| queue.remove(i))
            .inspect(|node| node.signalled.store(true, Ordering::Release))
    });
    match node {
        Some(node) => {
            node.thread.unpark();
            1
        }
        None => 0,
    }
}

/// Unparks every thread parked on `addr`. Returns how many were woken.
pub fn unpark_all(addr: usize) -> usize {
    let woken = bucket(addr).with_queue(|queue| {
        let mut woken = Vec::new();
        let mut i = 0;
        while i < queue.len() {
            if queue[i].addr == addr {
                let node = queue.remove(i);
                node.signalled.store(true, Ordering::Release);
                woken.push(node);
            } else {
                i += 1;
            }
        }
        woken
    });
    for node in &woken {
        node.thread.unpark();
    }
    woken.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::time::Duration;

    /// Spawns `n` threads that park on `addr` (validation always true) and
    /// bump a counter when they return.
    fn spawn_parked(addr: usize, n: usize) -> (Arc<AtomicU32>, Vec<thread::JoinHandle<()>>) {
        let woken = Arc::new(AtomicU32::new(0));
        let handles = (0..n)
            .map(|_| {
                let woken = Arc::clone(&woken);
                thread::spawn(move || {
                    park(addr, || true);
                    woken.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        (woken, handles)
    }

    fn wait_for(cond: impl Fn() -> bool) {
        for _ in 0..2000 {
            if cond() {
                return;
            }
            thread::sleep(Duration::from_millis(1));
        }
        panic!("condition not reached within 2s");
    }

    #[test]
    fn validation_failure_returns_immediately() {
        let word = AtomicU32::new(1);
        // Simulates the futex compare failing: no sleep, no enqueue.
        park(word.as_ptr() as usize, || word.load(Ordering::SeqCst) == 0);
        assert_eq!(unpark_one(word.as_ptr() as usize), 0, "nothing enqueued");
    }

    #[test]
    fn unpark_one_wakes_exactly_one() {
        let word = AtomicU32::new(0);
        let addr = word.as_ptr() as usize;
        let (woken, handles) = spawn_parked(addr, 2);
        // Both must be enqueued before we start waking.
        wait_for(|| bucket(addr).with_queue(|q| q.iter().filter(|n| n.addr == addr).count()) == 2);
        assert_eq!(unpark_one(addr), 1);
        wait_for(|| woken.load(Ordering::SeqCst) == 1);
        // The second is still parked: give it a moment, count must not move.
        thread::sleep(Duration::from_millis(30));
        assert_eq!(woken.load(Ordering::SeqCst), 1, "only one thread woken");
        assert_eq!(unpark_one(addr), 1);
        wait_for(|| woken.load(Ordering::SeqCst) == 2);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(unpark_one(addr), 0, "queue drained");
    }

    #[test]
    fn unpark_all_wakes_everyone() {
        let word = AtomicU32::new(0);
        let addr = word.as_ptr() as usize;
        let (woken, handles) = spawn_parked(addr, 3);
        wait_for(|| bucket(addr).with_queue(|q| q.iter().filter(|n| n.addr == addr).count()) == 3);
        assert_eq!(unpark_all(addr), 3);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(woken.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn park_timeout_expires_and_dequeues_itself() {
        let word = AtomicU32::new(0);
        let addr = word.as_ptr() as usize;
        let start = Instant::now();
        let woken = park_timeout(addr, || true, Duration::from_millis(30));
        assert!(!woken, "nobody woke us: must report timeout");
        assert!(start.elapsed() >= Duration::from_millis(30));
        // The node must be gone: a later unpark finds an empty queue.
        assert_eq!(unpark_one(addr), 0, "timed-out node must self-dequeue");
    }

    #[test]
    fn park_timeout_wake_beats_expiry() {
        let word = AtomicU32::new(0);
        let addr = word.as_ptr() as usize;
        let handle = thread::spawn(move || park_timeout(addr, || true, Duration::from_secs(10)));
        wait_for(|| bucket(addr).with_queue(|q| q.iter().any(|n| n.addr == addr)));
        assert_eq!(unpark_one(addr), 1);
        assert!(handle.join().unwrap(), "unparked before expiry → true");
    }

    #[test]
    fn park_timeout_validation_failure_skips_the_sleep() {
        let word = AtomicU32::new(1);
        let addr = word.as_ptr() as usize;
        let start = Instant::now();
        let woken = park_timeout(
            addr,
            || word.load(Ordering::SeqCst) == 0,
            Duration::from_secs(5),
        );
        assert!(woken, "failed validation counts as not-slept, not timeout");
        assert!(start.elapsed() < Duration::from_secs(1));
        assert_eq!(unpark_one(addr), 0, "nothing was enqueued");
    }

    #[test]
    fn unpark_one_is_fifo() {
        let word = AtomicU32::new(0);
        let addr = word.as_ptr() as usize;
        let order = Arc::new(crate::Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for id in 0..3u32 {
            let order = Arc::clone(&order);
            handles.push(thread::spawn(move || {
                park(addr, || true);
                order.lock().push(id);
            }));
            // Ensure thread `id` is enqueued before spawning the next, so
            // arrival order is deterministic.
            wait_for(|| {
                bucket(addr).with_queue(|q| q.iter().filter(|n| n.addr == addr).count())
                    == (id + 1) as usize
            });
        }
        for k in 1..=3 {
            assert_eq!(unpark_one(addr), 1);
            // Let the woken thread record itself before waking the next, so
            // the recorded order reflects wake order.
            wait_for(|| order.lock().len() == k);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2], "woken in arrival order");
    }

    #[test]
    fn distinct_addresses_do_not_cross_wake() {
        let a = AtomicU32::new(0);
        let b = AtomicU32::new(0);
        let (woken_a, handles_a) = spawn_parked(a.as_ptr() as usize, 1);
        let (woken_b, handles_b) = spawn_parked(b.as_ptr() as usize, 1);
        wait_for(|| {
            bucket(a.as_ptr() as usize).with_queue(|q| !q.is_empty())
                || bucket(b.as_ptr() as usize).with_queue(|q| !q.is_empty())
        });
        wait_for(|| {
            let qa = bucket(a.as_ptr() as usize)
                .with_queue(|q| q.iter().any(|n| n.addr == a.as_ptr() as usize));
            let qb = bucket(b.as_ptr() as usize)
                .with_queue(|q| q.iter().any(|n| n.addr == b.as_ptr() as usize));
            qa && qb
        });
        assert_eq!(unpark_all(b.as_ptr() as usize), 1);
        wait_for(|| woken_b.load(Ordering::SeqCst) == 1);
        thread::sleep(Duration::from_millis(30));
        assert_eq!(woken_a.load(Ordering::SeqCst), 0, "a's waiter untouched");
        assert_eq!(unpark_one(a.as_ptr() as usize), 1);
        for h in handles_a.into_iter().chain(handles_b) {
            h.join().unwrap();
        }
    }
}
