//! [`RwLock`]: a futex-parked readers-writer lock.
//!
//! One state word plus two condition words:
//!
//! * `state` — bit 31 = writer holds, bit 30 = writer(s) waiting, bits
//!   0..30 = reader count. Readers CAS the count up when neither writer bit
//!   is set (so a waiting writer blocks *new* readers — writer-preferring,
//!   which keeps `ThreadSlots` growth and STMBench7 structural updates from
//!   starving under a read storm). Writers CAS `state` to `WRITER` when no
//!   reader or writer holds.
//! * `rcond`/`wcond` — wake epochs readers/writers park on ([`futex::wait`]
//!   compares the epoch atomically, so a waker that bumps the epoch before
//!   waking can never lose a sleeper: the sleeper either observes the bump
//!   and refuses to sleep, or was already queued and gets the wake).
//!
//! Wake policy: sleepers announce themselves in `rparked`/`wparked`
//! counters (a `SeqCst` increment *before* the pre-sleep re-check of
//! `state`, decrement on wake), and unlocks only touch a condition word
//! when its counter is non-zero — so fully uncontended unlocks, read or
//! write, issue **no syscall**. The Dekker pairing makes this safe: the
//! unlock's `state` RMW and counter load, and the sleeper's counter RMW
//! and `state` re-check, are all `SeqCst`, so either the sleeper's
//! re-check observes the freed lock (and refuses to sleep) or the
//! unlocker observes the counter (and wakes); the epoch compare inside
//! [`futex::wait`] closes the remaining window between re-check and
//! kernel enqueue. The counters also make "a parked writer whose
//! `WR_WAIT` flag was stolen by a barging writer" impossible to strand:
//! the stealer holds the lock, and its unlock consults `wparked`, not
//! the flag. `WR_WAIT` itself is purely the anti-barge gate for readers.

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU32, Ordering};

use crate::futex;

/// Writer-held bit.
const WRITER: u32 = 1 << 31;
/// Writer(s)-waiting bit: blocks new readers.
const WR_WAIT: u32 = 1 << 30;
/// One reader.
const READER: u32 = 1;
/// Mask of the reader count.
const READER_MASK: u32 = WR_WAIT - 1;

/// Spins before parking; see `raw::SPIN_LIMIT` for the rationale.
const SPIN_LIMIT: u32 = 40;

/// A readers-writer lock whose `read`/`write` return guards directly (no
/// poisoning), parked on the crate's futex/parker when contended.
pub struct RwLock<T: ?Sized> {
    state: AtomicU32,
    /// Reader wake epoch.
    rcond: AtomicU32,
    /// Writer wake epoch.
    wcond: AtomicU32,
    /// Readers currently parked (or committed to parking) on `rcond`.
    rparked: AtomicU32,
    /// Writers currently parked (or committed to parking) on `wcond`.
    wparked: AtomicU32,
    data: UnsafeCell<T>,
}

// SAFETY: same bounds as std::sync::RwLock — readers share &T across
// threads (T: Sync), into_inner/write moves T (T: Send).
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            state: AtomicU32::new(0),
            rcond: AtomicU32::new(0),
            wcond: AtomicU32::new(0),
            rparked: AtomicU32::new(0),
            wparked: AtomicU32::new(0),
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Blocks until shared access is acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let mut spins = 0u32;
        loop {
            let s = self.state.load(Ordering::Relaxed);
            if s & (WRITER | WR_WAIT) == 0 {
                assert_ne!(s & READER_MASK, READER_MASK, "reader count overflow");
                if self
                    .state
                    .compare_exchange_weak(s, s + READER, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return RwLockReadGuard {
                        lock: self,
                        _not_send: PhantomData,
                    };
                }
                continue;
            }
            if spins < SPIN_LIMIT {
                spins += 1;
                std::hint::spin_loop();
                continue;
            }
            // Announce before the re-check (Dekker pairing with unlockers,
            // see module docs), sleep only if still blocked.
            self.rparked.fetch_add(1, Ordering::SeqCst);
            let epoch = self.rcond.load(Ordering::Acquire);
            if self.state.load(Ordering::SeqCst) & (WRITER | WR_WAIT) != 0 {
                futex::wait(&self.rcond, epoch);
            }
            self.rparked.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Blocks until exclusive access is acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let mut spins = 0u32;
        loop {
            let s = self.state.load(Ordering::Relaxed);
            if s & !WR_WAIT == 0 {
                // Free (possibly with other writers flagged): take it. This
                // clears WR_WAIT; a parked writer that loses the race re-flags
                // on its next loop, and our unlock always wakes `wcond`.
                if self
                    .state
                    .compare_exchange_weak(s, WRITER, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return RwLockWriteGuard {
                        lock: self,
                        _not_send: PhantomData,
                    };
                }
                continue;
            }
            if spins < SPIN_LIMIT {
                spins += 1;
                std::hint::spin_loop();
                continue;
            }
            if s & WR_WAIT == 0 {
                // Flag intent before parking so readers stop barging and the
                // last reader out knows to wake us.
                let _ = self.state.compare_exchange_weak(
                    s,
                    s | WR_WAIT,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                continue;
            }
            // Announce before the re-check (Dekker pairing with unlockers,
            // see module docs). Park only while the lock is held by someone
            // else AND our flag is still up — if a barging writer stole the
            // flag it also holds the lock, and its unlock consults
            // `wparked`, which we have already incremented.
            self.wparked.fetch_add(1, Ordering::SeqCst);
            let epoch = self.wcond.load(Ordering::Acquire);
            let now = self.state.load(Ordering::SeqCst);
            if now & !WR_WAIT != 0 && now & WR_WAIT != 0 {
                futex::wait(&self.wcond, epoch);
            }
            self.wparked.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Attempts shared access without blocking. Barges past waiting
    /// writers but never past a held write lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        loop {
            let s = self.state.load(Ordering::Relaxed);
            if s & WRITER != 0 {
                return None;
            }
            assert_ne!(s & READER_MASK, READER_MASK, "reader count overflow");
            if self
                .state
                .compare_exchange_weak(s, s + READER, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return Some(RwLockReadGuard {
                    lock: self,
                    _not_send: PhantomData,
                });
            }
        }
    }

    /// Attempts exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        loop {
            let s = self.state.load(Ordering::Relaxed);
            if s & !WR_WAIT != 0 {
                return None;
            }
            if self
                .state
                .compare_exchange_weak(s, WRITER, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return Some(RwLockWriteGuard {
                    lock: self,
                    _not_send: PhantomData,
                });
            }
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        // SAFETY: &mut self guarantees no guards exist.
        unsafe { &mut *self.data.get() }
    }

    fn unlock_read(&self) {
        let prev = self.state.fetch_sub(READER, Ordering::SeqCst);
        debug_assert!(prev & READER_MASK >= 1, "read unlock without readers");
        if prev & READER_MASK == 1 && self.wparked.load(Ordering::SeqCst) > 0 {
            // Last reader out with a writer parked: hand off. A writer that
            // flagged WR_WAIT but has not yet announced itself in `wparked`
            // re-checks `state` after announcing and sees the lock free.
            self.wcond.fetch_add(1, Ordering::Release);
            futex::wake_one(&self.wcond);
        }
    }

    fn unlock_write(&self) {
        let prev = self.state.fetch_and(!WRITER, Ordering::SeqCst);
        debug_assert!(prev & WRITER != 0, "write unlock without writer");
        // Wake only announced sleepers (uncontended unlock: no syscalls).
        // The epoch bumps make a sleeper between its state re-check and its
        // futex compare re-validate instead of sleeping through this unlock.
        if self.wparked.load(Ordering::SeqCst) > 0 {
            self.wcond.fetch_add(1, Ordering::Release);
            futex::wake_one(&self.wcond);
        }
        // Wake readers only once no writer is flagged: with WR_WAIT still
        // set (more writers parked behind us), woken readers would re-check,
        // see the flag and re-park — a thundering herd per unlock in a
        // writer drain. The drain's last writer unlocks with the flag clear
        // and releases the readers then.
        if prev & WR_WAIT == 0 && self.rparked.load(Ordering::SeqCst) > 0 {
            self.rcond.fetch_add(1, Ordering::Release);
            futex::wake_all(&self.rcond);
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            None => f.write_str("RwLock(<write-locked>)"),
        }
    }
}

/// Shared RAII guard for [`RwLock`]; releases on drop.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    _not_send: PhantomData<*mut ()>,
}

// SAFETY: sharing a read guard only shares &T.
unsafe impl<T: ?Sized + Sync> Sync for RwLockReadGuard<'_, T> {}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: read guards exclude writers.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock_read();
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Exclusive RAII guard for [`RwLock`]; releases on drop.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    _not_send: PhantomData<*mut ()>,
}

// SAFETY: sharing a write guard only shares &T.
unsafe impl<T: ?Sized + Sync> Sync for RwLockWriteGuard<'_, T> {}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the write guard witnesses exclusive access.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above; &mut self prevents aliased derefs.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock_write();
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn shared_then_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner().len(), 3);
    }

    #[test]
    fn try_variants_respect_holders() {
        let l = RwLock::new(0u32);
        let r = l.read();
        assert!(l.try_read().is_some(), "readers share");
        assert!(l.try_write().is_none(), "reader blocks writer");
        drop(r);
        let w = l.try_write().unwrap();
        assert!(l.try_read().is_none(), "writer blocks readers");
        assert!(l.try_write().is_none());
        drop(w);
        assert!(l.try_write().is_some());
    }

    #[test]
    fn waiting_writer_blocks_new_readers() {
        let l = Arc::new(RwLock::new(0u32));
        let reader = l.read();
        let writer = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || {
                *l.write() += 1;
            })
        };
        // Wait until the writer has flagged WR_WAIT.
        let mut tries = 0;
        while l.state.load(Ordering::Relaxed) & WR_WAIT == 0 && tries < 2000 {
            std::thread::sleep(Duration::from_millis(1));
            tries += 1;
        }
        assert!(
            l.state.load(Ordering::Relaxed) & WR_WAIT != 0,
            "writer must flag its wait"
        );
        // read() must now queue behind the writer, not barge.
        let late_reader = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || *l.read())
        };
        std::thread::sleep(Duration::from_millis(20));
        assert!(
            !late_reader.is_finished(),
            "late reader parked behind writer"
        );
        drop(reader);
        writer.join().unwrap();
        assert_eq!(late_reader.join().unwrap(), 1, "sees the write");
        assert_eq!(l.state.load(Ordering::Relaxed), 0, "fully released");
    }

    #[test]
    fn mixed_churn_stays_consistent() {
        // Writers append a monotone counter; readers assert the vector is a
        // strictly increasing prefix. Catches lost wakeups (deadlock) and
        // exclusion bugs (torn vector).
        let l = Arc::new(RwLock::new(Vec::<u32>::new()));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let mut v = l.write();
                        let next = v.last().copied().unwrap_or(0) + 1;
                        v.push(next);
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let v = l.read();
                        assert!(v.windows(2).all(|w| w[0] < w[1]), "monotone under lock");
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        assert_eq!(l.read().len(), 1000);
    }
}
