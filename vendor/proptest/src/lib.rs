//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this vendor
//! crate implements the `proptest` API subset the workspace's property tests
//! use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`] and
//!   [`Strategy::prop_flat_map`], implemented for integer ranges, tuples and
//!   [`collection::vec`];
//! * [`any`] for `Arbitrary` types;
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support) and
//!   [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`ProptestConfig::with_cases`] and [`TestCaseError`].
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed (stable across runs and machines), and shrinking is
//! a simple **halving strategy** rather than a value tree — on failure the
//! runner repeatedly tries simplified candidates (integers halved toward
//! their lower bound, collections halved in length and element-shrunk,
//! tuples shrunk component-wise) and reports the smallest input that still
//! fails alongside the case number. `prop_map`/`prop_flat_map` outputs do
//! not shrink (no inverse function). Swap this directory for the real
//! crate once the registry is reachable; call sites need no changes.

#![warn(missing_docs)]

use std::fmt;

pub use rand::{Rng, SeedableRng};

/// Deterministic RNG used to generate test cases.
pub mod test_runner {
    use rand::{rngs::StdRng, SeedableRng};

    /// The per-case random generator.
    #[derive(Clone, Debug)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// A generator for the given case index, fully deterministic.
        pub fn deterministic(case: u64) -> Self {
            TestRng(StdRng::seed_from_u64(
                0x5EED_CAFE_F00Du64.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ))
        }
    }
}

use test_runner::TestRng;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A test-case failure produced by `prop_assert!` or returned via `?`.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl fmt::Display) -> Self {
        TestCaseError(message.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// A recipe for generating random values of an output type.
///
/// Unlike real proptest there is no value tree: strategies generate final
/// values directly, and shrinking proposes simplified *candidates* of a
/// failing value via [`Strategy::shrink`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes simplified candidates of `value`, simplest first. The
    /// runner adopts the first candidate that still fails and iterates.
    /// Defaults to no candidates (no shrinking).
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// A strategy generating an intermediate value, then delegating to the
    /// strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Halving candidates for an integer `v` over a range starting at `lo`:
/// the lower bound itself, the midpoint between `lo` and `v`, and `v - 1`.
macro_rules! int_halving_candidates {
    ($v:expr, $lo:expr, $t:ty) => {{
        let v: $t = $v;
        let lo: $t = $lo;
        let mut out: Vec<$t> = Vec::new();
        if v != lo {
            out.push(lo);
            if let Some(delta) = v.checked_sub(lo) {
                let mid = lo + delta / 2;
                if mid != v && mid != lo {
                    out.push(mid);
                }
            }
            let prev = v - 1;
            if prev != lo {
                out.push(prev);
            }
        }
        out
    }};
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_halving_candidates!(*value, self.start, $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_halving_candidates!(*value, *self.start(), $t)
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "anything goes" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Proposes simplified candidates (see [`Strategy::shrink`]). Defaults
    /// to none.
    fn shrink(value: &Self) -> Vec<Self> {
        let _ = value;
        Vec::new()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.0.random::<$t>()
            }
            fn shrink(value: &$t) -> Vec<$t> {
                // Halve toward zero (also from below, for signed types).
                let mut out = Vec::new();
                if *value != 0 {
                    out.push(0);
                    let half = *value / 2;
                    if half != *value && half != 0 {
                        out.push(half);
                    }
                }
                out
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.0.random::<bool>()
    }
    fn shrink(value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink(value)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Strategies for collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// An inclusive-exclusive size specification: a fixed size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.random_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let len = value.len();
            if len > self.size.min {
                // Halve the length toward the minimum, then try dropping a
                // single element from either end.
                let target = self.size.min + (len - self.size.min) / 2;
                out.push(value[..target].to_vec());
                if len - 1 > target {
                    out.push(value[1..].to_vec());
                    out.push(value[..len - 1].to_vec());
                }
            }
            // Shrink elements in place (fan-out capped to keep candidate
            // lists small on long vectors).
            for (i, element) in value.iter().enumerate().take(16) {
                for cand in self.element.shrink(element) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Greedy shrink loop: repeatedly adopts the first candidate of
/// [`Strategy::shrink`] that still fails, until no candidate fails or the
/// re-run budget is exhausted. Returns the minimized input, its failure,
/// and how many shrink steps were taken.
///
/// Used by the [`proptest!`] runner; public so tests can drive it directly.
#[doc(hidden)]
pub fn __shrink<S: Strategy>(
    strategy: &S,
    initial: S::Value,
    initial_err: TestCaseError,
    run: &dyn Fn(&S::Value) -> Result<(), TestCaseError>,
) -> (S::Value, TestCaseError, usize) {
    let mut current = initial;
    let mut err = initial_err;
    let mut steps = 0usize;
    let mut budget = 256usize;
    loop {
        let mut progressed = false;
        for cand in strategy.shrink(&current) {
            if budget == 0 {
                return (current, err, steps);
            }
            budget -= 1;
            if let Err(e) = run(&cand) {
                current = cand;
                err = e;
                steps += 1;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return (current, err, steps);
        }
    }
}

/// The [`proptest!`] case loop: generates `config.cases` inputs, runs each,
/// and on failure shrinks before panicking with the minimized input.
#[doc(hidden)]
pub fn __run<S: Strategy>(
    config: &ProptestConfig,
    strategy: &S,
    run: &dyn Fn(&S::Value) -> Result<(), TestCaseError>,
) where
    S::Value: fmt::Debug,
{
    for case in 0..config.cases {
        let mut rng = test_runner::TestRng::deterministic(case as u64);
        let input = strategy.generate(&mut rng);
        if let Err(err) = run(&input) {
            let (minimized, min_err, steps) = __shrink(strategy, input, err, run);
            panic!(
                "proptest case {case}/{} failed: {min_err}\n\
                 minimal input (after {steps} shrink steps): {minimized:?}",
                config.cases,
            );
        }
    }
}

/// Extracts a printable message from a caught panic payload.
#[doc(hidden)]
pub fn __panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("test body panicked")
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property test, failing the case (without
/// panicking the whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Declares property tests.
///
/// Supports the subset of real proptest syntax the workspace uses: an
/// optional leading `#![proptest_config(expr)]`, then `#[test]` functions
/// whose arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategy = ($($strategy,)+);
            $crate::__run(&config, &strategy, &|input| {
                let ($($pat,)+) = ::std::clone::Clone::clone(input);
                let body = ::std::panic::AssertUnwindSafe(
                    move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
                match ::std::panic::catch_unwind(body) {
                    ::std::result::Result::Ok(outcome) => outcome,
                    ::std::result::Result::Err(panic) => ::std::result::Result::Err(
                        $crate::TestCaseError::fail($crate::__panic_message(&*panic)),
                    ),
                }
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_sizes_respect_spec(v in collection::vec(any::<bool>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn maps_compose(n in (1usize..4).prop_flat_map(|n| {
            collection::vec(0u8..10, n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = n;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&b| b < 10));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_number() {
        // No `#[test]` on the inner declaration: the macro passes attributes
        // through verbatim, and this one is driven by hand.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(_x in 0u8..4) {
                prop_assert!(false, "forced failure");
            }
        }
        always_fails();
    }

    #[test]
    #[should_panic(expected = "minimal input")]
    fn failing_property_reports_minimal_input() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn fails_from_ten(x in 0u64..1000) {
                prop_assert!(x < 10, "too big: {x}");
            }
        }
        fails_from_ten();
    }

    #[test]
    fn shrink_minimizes_a_range_failure_to_the_boundary() {
        let strategy = (0u64..1000,);
        let run = |v: &(u64,)| {
            if v.0 >= 10 {
                Err(crate::TestCaseError::fail("too big"))
            } else {
                Ok(())
            }
        };
        let (minimized, _, steps) = crate::__shrink(
            &strategy,
            (973,),
            crate::TestCaseError::fail("too big"),
            &run,
        );
        assert_eq!(minimized.0, 10, "halving must land on the failure boundary");
        assert!(steps > 0);
    }

    #[test]
    fn shrink_minimizes_vec_length_and_elements() {
        let strategy = (collection::vec(0u32..100, 1..20),);
        // Fails whenever any element is >= 5.
        let run = |v: &(Vec<u32>,)| {
            if v.0.iter().any(|&x| x >= 5) {
                Err(crate::TestCaseError::fail("contains big element"))
            } else {
                Ok(())
            }
        };
        let seed = vec![93u32, 2, 41, 7, 0, 88, 3, 12];
        let (minimized, _, _) = crate::__shrink(
            &strategy,
            (seed,),
            crate::TestCaseError::fail("contains big element"),
            &run,
        );
        assert_eq!(
            minimized.0,
            vec![5],
            "minimal failing vector is a single boundary element"
        );
    }

    #[test]
    fn shrink_candidates_respect_range_bounds() {
        let r = 3u64..17;
        for v in [3u64, 4, 10, 16] {
            for cand in Strategy::shrink(&r, &v) {
                assert!((3..17).contains(&cand), "candidate {cand} escaped {r:?}");
                assert!(cand < v, "candidate {cand} is not simpler than {v}");
            }
        }
        assert!(Strategy::shrink(&r, &3).is_empty());
    }

    #[test]
    fn panicking_bodies_are_reported_as_failures_and_shrunk() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn panics_over_limit(x in 0u32..50) {
                // A plain assert! (panic), not prop_assert!.
                assert!(x < 2, "hard panic at {x}");
            }
        }
        let outcome = std::panic::catch_unwind(panics_over_limit);
        let message = crate::__panic_message(&*outcome.expect_err("property must fail"));
        assert!(
            message.contains("minimal input"),
            "panic-based failures must still shrink: {message}"
        );
    }
}
