//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this vendor
//! crate implements the `proptest` API subset the workspace's property tests
//! use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`] and
//!   [`Strategy::prop_flat_map`], implemented for integer ranges, tuples and
//!   [`collection::vec`];
//! * [`any`] for `Arbitrary` types;
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support) and
//!   [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`ProptestConfig::with_cases`] and [`TestCaseError`].
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed (stable across runs and machines), and **there is no
//! shrinking** — a failure reports the case number and message but not a
//! minimized input. Swap this directory for the real crate once the
//! registry is reachable; call sites need no changes.

#![warn(missing_docs)]

use std::fmt;

pub use rand::{Rng, SeedableRng};

/// Deterministic RNG used to generate test cases.
pub mod test_runner {
    use rand::{rngs::StdRng, SeedableRng};

    /// The per-case random generator.
    #[derive(Clone, Debug)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// A generator for the given case index, fully deterministic.
        pub fn deterministic(case: u64) -> Self {
            TestRng(StdRng::seed_from_u64(
                0x5EED_CAFE_F00Du64.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ))
        }
    }
}

use test_runner::TestRng;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A test-case failure produced by `prop_assert!` or returned via `?`.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl fmt::Display) -> Self {
        TestCaseError(message.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// A recipe for generating random values of an output type.
///
/// Unlike real proptest there is no value tree: strategies generate final
/// values directly and nothing shrinks.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// A strategy generating an intermediate value, then delegating to the
    /// strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "anything goes" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.0.random::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// The strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Strategies for collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// An inclusive-exclusive size specification: a fixed size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.random_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property test, failing the case (without
/// panicking the whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Declares property tests.
///
/// Supports the subset of real proptest syntax the workspace uses: an
/// optional leading `#![proptest_config(expr)]`, then `#[test]` functions
/// whose arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategy = ($($strategy,)+);
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::deterministic(case as u64);
                let ($($pat,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!("proptest case {case}/{} failed: {err}", config.cases);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_sizes_respect_spec(v in collection::vec(any::<bool>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn maps_compose(n in (1usize..4).prop_flat_map(|n| {
            collection::vec(0u8..10, n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = n;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&b| b < 10));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_number() {
        // No `#[test]` on the inner declaration: the macro passes attributes
        // through verbatim, and this one is driven by hand.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(_x in 0u8..4) {
                prop_assert!(false, "forced failure");
            }
        }
        always_fails();
    }
}
