//! Sharded-service stress: cross-shard money conservation on mid-flight
//! distributed snapshots, across every scheduler × Parked/Busy waiting,
//! plus the open-loop traffic generator end to end and (with `--features
//! faults`) seeded fault injection at the cross-runtime registry's
//! register/wake sites.
//!
//! The store under test is `workloads::service::ShardedStore`: one
//! `TmRuntime` per shard, four-phase escrow transfers, and two-shard
//! bookings through the cross-runtime `retry_select` registry. The
//! auditor takes **freeze-gated distributed snapshots** while transfers
//! and bookings are mid-protocol — the invariant must be exact on every
//! snapshot, not just at the end.
//!
//! Set `SHRINK_STRESS=1` (CI stress job) to raise the volume.

use std::sync::Arc;
use std::time::{Duration, Instant};

use shrink::prelude::*;
use shrink::workloads::service::{
    build_schedule, run_open_loop, BookingOutcome, RequestKind, RequestMix, ShardedStore,
    TrafficConfig,
};

/// Fault schedules are process-global: when the `faults` feature is on,
/// every test in this binary serializes on one lock, and the invariant
/// tests shadow any ambient `SHRINK_FAULTS` schedule with a rate-0 one —
/// they assert exact conservation and are not fault targets themselves.
#[cfg(feature = "faults")]
static FAULT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(feature = "faults")]
fn shield() -> (
    std::sync::MutexGuard<'static, ()>,
    shrink::stm::faults::FaultGuard,
) {
    use shrink::stm::faults::ScheduleBuilder;
    // A poisoned lock only means an assertion failed in another test.
    let serial = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let quiet = ScheduleBuilder::new(0).rate_per_mille(0).install();
    (serial, quiet)
}

/// Stress scaling: 1 in normal runs, larger under `SHRINK_STRESS=1`.
fn stress_factor() -> usize {
    match std::env::var("SHRINK_STRESS") {
        Ok(v) if !v.is_empty() && v != "0" => 4,
        _ => 1,
    }
}

fn scheduler_kinds() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Noop,
        SchedulerKind::shrink_default(),
        SchedulerKind::ats_default(),
        SchedulerKind::Pool,
        SchedulerKind::Serializer(Default::default()),
    ]
}

fn build_store(wait: WaitPolicy, kind: &SchedulerKind) -> ShardedStore {
    ShardedStore::new(3, 4, 250, 2, |_| {
        TmRuntime::builder()
            .backend(BackendKind::Swiss)
            .wait_policy(wait)
            .scheduler_arc(kind.build())
            .build()
    })
}

/// One matrix cell: transfer writers and a booking client hammer the
/// store while the main thread repeatedly takes the freeze-gated
/// distributed snapshot; conservation must be exact on every one.
fn conservation_cell(wait: WaitPolicy, kind: &SchedulerKind) {
    let sf = stress_factor();
    let transfers_per_mover = 40 * sf;
    let bookings = 6 * sf;
    let store = Arc::new(build_store(wait, kind));
    let label = kind.label();

    let movers: Vec<_> = (0..3)
        .map(|t| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let mut seed = 0x5EED ^ (t as u64) << 17;
                for _ in 0..transfers_per_mover {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (seed >> 33) as usize % store.n_keys();
                    let to = (seed >> 13) as usize % store.n_keys();
                    store.transfer(from, to, (seed % 9) as i64);
                }
            })
        })
        .collect();
    let booker = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            let mut confirmed = 0u64;
            for i in 0..bookings {
                // Keys on different shards (3 shards: consecutive keys
                // differ); generous deadline so contention, not time,
                // decides.
                let outcome = store.book(i, i + 1, Instant::now() + Duration::from_secs(30));
                if outcome == BookingOutcome::Confirmed {
                    confirmed += 1;
                }
            }
            confirmed
        })
    };

    // Audit mid-flight until every worker is done — each snapshot must
    // balance exactly while transfers sit between protocol phases.
    let mut audits = 0u64;
    let mut workers: Vec<std::thread::JoinHandle<()>> = movers;
    while !workers.is_empty() {
        workers.retain(|h| !h.is_finished());
        assert_eq!(
            store.audit_conservation(),
            store.expected_total(),
            "mid-flight conservation violated: wait={wait:?} scheduler={label}"
        );
        audits += 1;
        std::thread::yield_now();
    }
    let confirmed = booker.join().unwrap();
    assert!(audits > 0, "the auditor must have audited at least once");
    assert_eq!(
        confirmed, bookings as u64,
        "every booking with a generous deadline confirms: wait={wait:?} scheduler={label}"
    );
    assert_eq!(
        store.audit_conservation(),
        store.expected_total(),
        "final conservation violated: wait={wait:?} scheduler={label}"
    );
    assert_eq!(store.audit_bookings(), bookings as u64);
    assert_eq!(
        store.pending_transfers(),
        0,
        "all escrow entries must drain: wait={wait:?} scheduler={label}"
    );
}

#[test]
fn parked_conserves_across_shards_under_all_schedulers() {
    #[cfg(feature = "faults")]
    let _shield = shield();
    for kind in scheduler_kinds() {
        conservation_cell(WaitPolicy::Parked, &kind);
    }
}

#[test]
fn busy_conserves_across_shards_under_all_schedulers() {
    #[cfg(feature = "faults")]
    let _shield = shield();
    for kind in scheduler_kinds() {
        conservation_cell(WaitPolicy::Busy, &kind);
    }
}

/// The open-loop generator end to end: a Zipfian, bursty schedule served
/// against the store leaves it conserved, drains every escrow entry, and
/// accounts for every booking.
#[test]
fn open_loop_traffic_leaves_the_store_conserved() {
    #[cfg(feature = "faults")]
    let _shield = shield();
    let sf = stress_factor();
    for kind in [SchedulerKind::Noop, SchedulerKind::shrink_default()] {
        let store = build_store(WaitPolicy::Parked, &kind);
        let cfg = TrafficConfig {
            clients: 128,
            workers: 4,
            requests: 600 * sf,
            offered_rps: 50_000.0,
            zipf_s: 1.1,
            burstiness: 0.5,
            burst_period: Duration::from_millis(5),
            mix: RequestMix::DEFAULT,
            booking_deadline: Duration::from_millis(200),
            seed: 7,
        };
        let schedule = build_schedule(store.n_keys(), store.n_shards(), &cfg);
        let report = run_open_loop(&store, &schedule, &cfg);
        assert_eq!(report.latencies.len(), cfg.requests);
        let bookings = schedule
            .iter()
            .filter(|r| r.kind == RequestKind::Booking)
            .count() as u64;
        assert_eq!(
            report.confirmed_bookings + report.declined_bookings,
            bookings,
            "every booking resolves: scheduler={}",
            kind.label()
        );
        assert_eq!(store.audit_conservation(), store.expected_total());
        store.audit_bookings();
        assert_eq!(store.pending_transfers(), 0);
    }
}

/// A transfer stranded between any two protocol phases must still balance
/// on the distributed snapshot — the escrow term covers exactly the
/// prepared-but-not-applied window.
#[test]
fn stranded_transfer_phases_balance_on_every_snapshot() {
    #[cfg(feature = "faults")]
    let _shield = shield();
    for phases in 1..=4 {
        let store = build_store(WaitPolicy::Parked, &SchedulerKind::Noop);
        store.transfer_phases(0, 1, 40, phases);
        assert_eq!(
            store.audit_conservation(),
            store.expected_total(),
            "snapshot unbalanced with transfer stopped after phase {phases}"
        );
    }
}

/// Seeded fault injection at the registry's register/wake sites: delays
/// and spurious wakes at `RegistryRegister`/`RegistryWake` must never
/// break booking-capacity conservation or hang a select, and a panic
/// injected at the register site must unwind without leaking a hold or a
/// waitlist registration.
#[cfg(feature = "faults")]
mod faulted {
    use super::*;
    use shrink::stm::faults::ScheduleBuilder;
    use shrink::stm::{FaultKind, FaultSite};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn registry_storm_keeps_bookings_correct() {
        // Serialize on the shared lock and shadow any ambient schedule
        // while setting up; the storm below then installs over the shield.
        let _shield = shield();
        let sf = stress_factor();
        let store = Arc::new(build_store(WaitPolicy::Parked, &SchedulerKind::Noop));
        let guard = ScheduleBuilder::new(0xB00C)
            .rate_per_mille(400)
            .sites(&[FaultSite::RegistryRegister, FaultSite::RegistryWake])
            .kinds(&[FaultKind::Delay, FaultKind::SpuriousWake])
            .install();
        // Capacity 2 per shard and 4 bookers: selects park and wake under
        // injected delays and spurious wakes. Concurrent two-shard bookers
        // can form a hold-wait cycle that only the deadline breaks, so a
        // decline is a legal outcome — what must never happen is a hang, a
        // leaked hold, or a broken invariant.
        let bookers: Vec<_> = (0..4)
            .map(|b| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    let mut confirmed = 0usize;
                    for i in 0..6 * sf {
                        let outcome =
                            store.book(b + i, b + i + 1, Instant::now() + Duration::from_secs(2));
                        if outcome == BookingOutcome::Confirmed {
                            confirmed += 1;
                        }
                    }
                    confirmed
                })
            })
            .collect();
        let confirmed: usize = bookers.into_iter().map(|h| h.join().unwrap()).sum();
        drop(guard);
        assert!(confirmed > 0, "the storm must not starve every booking");
        assert_eq!(store.audit_bookings(), confirmed as u64);
        assert_eq!(store.audit_conservation(), store.expected_total());
    }

    #[test]
    fn register_panic_unwinds_without_leaking_holds() {
        let _shield = shield();
        let store = Arc::new(ShardedStore::new(2, 2, 100, 1, |_| {
            TmRuntime::builder()
                .backend(BackendKind::Swiss)
                .wait_policy(WaitPolicy::Parked)
                .build()
        }));
        // Drain both shards so the booking select must park — the only
        // path through the RegistryRegister failpoint.
        let sink = Instant::now() + Duration::from_secs(30);
        assert_eq!(store.hold_all_capacity(), 2, "both units held");
        let guard = ScheduleBuilder::new(0xDEAD)
            .rate_per_mille(1000)
            .sites(&[FaultSite::RegistryRegister])
            .kinds(&[FaultKind::Panic])
            .install();
        let boom = catch_unwind(AssertUnwindSafe(|| {
            store.book(0, 1, Instant::now() + Duration::from_millis(200))
        }));
        assert!(boom.is_err(), "rate-1000 register panic must fire");
        drop(guard);
        // The panic unwound before any arm held capacity: the booking
        // invariant still balances and the registry is reusable.
        store.audit_bookings();
        store.release_all_holds();
        assert_eq!(
            store.book(0, 1, sink),
            BookingOutcome::Confirmed,
            "registry reusable after an injected register panic"
        );
        assert_eq!(store.audit_bookings(), 1);
    }
}
