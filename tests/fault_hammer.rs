//! Seeded fault-injection hammer: panics, spurious aborts, spurious wakes
//! and delays injected at every hazard site must leave the runtime
//! reusable and the money conserved.
//!
//! Only compiled with the `faults` feature:
//!
//! ```text
//! SHRINK_FAULTS=42,rate=25 cargo test --features faults --test fault_hammer
//! ```
//!
//! Fault schedules are process-global, so every test here serializes on
//! one lock; CI additionally runs this binary with `--test-threads=1`.
//! Set `SHRINK_STRESS=1` (CI stress job) to raise thread counts and
//! volume.

#![cfg(feature = "faults")]

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use shrink::prelude::*;
use shrink::stm::faults::{self, FaultGuard, ScheduleBuilder};
use shrink::stm::{FaultKind, FaultSite, TmError};

/// Fault schedules are process-global state: tests must not overlap.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    // A poisoned lock only means an assertion failed in another test;
    // the schedule guard there still restored the previous schedule.
    FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// A rate-0 schedule shadowing any `SHRINK_FAULTS` ambient schedule: these
/// tests install their own precisely targeted storms and need the warm-up
/// and reuse phases around them inert, whatever the environment says.
fn quiet() -> FaultGuard {
    ScheduleBuilder::new(0).rate_per_mille(0).install()
}

/// Stress scaling: 1 in normal runs, larger under `SHRINK_STRESS=1`.
fn stress_factor() -> usize {
    match std::env::var("SHRINK_STRESS") {
        Ok(v) if !v.is_empty() && v != "0" => 4,
        _ => 1,
    }
}

fn scheduler_matrix() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Noop,
        SchedulerKind::shrink_default(),
        SchedulerKind::ats_default(),
        SchedulerKind::Pool,
        SchedulerKind::Serializer(Default::default()),
    ]
}

fn build_runtime(kind: &SchedulerKind, wait: WaitPolicy) -> TmRuntime {
    TmRuntime::builder()
        .wait_policy(wait)
        .retry_wait(Duration::from_millis(10))
        .scheduler_arc(kind.build())
        .build()
}

fn transfer(rt: &TmRuntime, accounts: &[TVar<i64>], from: usize, to: usize, amount: i64) {
    rt.run(|tx| {
        let a = tx.read(&accounts[from])?;
        let b = tx.read(&accounts[to])?;
        tx.write(&accounts[from], a - amount)?;
        tx.write(&accounts[to], b + amount)
    });
}

fn total(accounts: &[TVar<i64>]) -> i64 {
    accounts.iter().map(|a| a.snapshot()).sum()
}

/// A panic forced mid-commit (after validation, before the write set is
/// installed) must unwind out of `run` leaving every scheduler reusable:
/// the next transaction on the *same runtime and thread* commits normally
/// and the books balance.
#[test]
fn mid_commit_panic_leaves_every_scheduler_reusable() {
    let _serial = serialize();
    let _quiet = quiet();
    for kind in scheduler_matrix() {
        for wait in [WaitPolicy::Preemptive, WaitPolicy::Busy] {
            let rt = build_runtime(&kind, wait);
            let accounts: Vec<TVar<i64>> = (0..4).map(|_| TVar::new(100)).collect();
            // Warm up: bind the TVars and register the thread while the
            // schedule is still inert.
            transfer(&rt, &accounts, 0, 1, 5);
            let guard = ScheduleBuilder::new(0xC0FFEE)
                .rate_per_mille(1000)
                .sites(&[FaultSite::CommitInstall])
                .kinds(&[FaultKind::Panic])
                .install();
            let boom = catch_unwind(AssertUnwindSafe(|| transfer(&rt, &accounts, 1, 2, 7)));
            assert!(
                boom.is_err(),
                "rate-1000 commit_install panic must fire: {} {wait:?}",
                kind.label()
            );
            drop(guard);
            // The interrupted transfer rolled back wholesale...
            assert_eq!(
                total(&accounts),
                400,
                "torn commit: {} {wait:?}",
                kind.label()
            );
            // ...and the runtime is not poisoned: fresh transfers commit.
            transfer(&rt, &accounts, 2, 3, 9);
            transfer(&rt, &accounts, 3, 0, 2);
            assert_eq!(total(&accounts), 400);
            assert!(rt.stats().commits >= 3, "{} {wait:?}", kind.label());
        }
    }
}

/// Every site whose safety mask admits panics gets a dedicated storm:
/// a schedule that panics on *every* probe of that one site, a driver
/// body that reaches the site, and the reuse check afterwards.
#[test]
fn panic_storm_at_every_panic_safe_site() {
    let _serial = serialize();
    let _quiet = quiet();
    let panic_sites: Vec<FaultSite> = FaultSite::ALL
        .iter()
        .copied()
        .filter(|s| s.allows(FaultKind::Panic))
        .collect();
    assert!(
        panic_sites.len() >= 8,
        "expected the full panic-safe catalog, got {panic_sites:?}"
    );
    for site in panic_sites {
        let rt = build_runtime(&SchedulerKind::shrink_default(), WaitPolicy::Preemptive);
        let accounts: Vec<TVar<i64>> = (0..4).map(|_| TVar::new(100)).collect();
        transfer(&rt, &accounts, 0, 1, 5);
        let guard = ScheduleBuilder::new(42)
            .rate_per_mille(1000)
            .sites(&[site])
            .kinds(&[FaultKind::Panic])
            .install();
        let boom = catch_unwind(AssertUnwindSafe(|| drive_site(&rt, &accounts, site)));
        assert!(boom.is_err(), "storm at {site} must panic the driver");
        drop(guard);
        assert_eq!(total(&accounts), 400, "conservation violated at {site}");
        // Reuse on the same thread, then from a fresh thread (the epoch
        // advanced: nobody stalls serialized behind the dead attempt).
        transfer(&rt, &accounts, 1, 2, 3);
        let worker = {
            let rt = rt.clone();
            let accounts = accounts.clone();
            std::thread::spawn(move || transfer(&rt, &accounts, 2, 3, 4))
        };
        worker.join().unwrap();
        assert_eq!(total(&accounts), 400, "post-storm transfers at {site}");
    }
}

/// Runs a body that provably reaches `site` on a read-write path.
fn drive_site(rt: &TmRuntime, accounts: &[TVar<i64>], site: FaultSite) {
    match site {
        // Reached by any writing transaction.
        FaultSite::OrecAcquire
        | FaultSite::CommitInstall
        | FaultSite::WaitWake
        | FaultSite::SchedBeforeStart
        | FaultSite::SchedOnCommit => transfer(rt, accounts, 0, 1, 1),
        // Reached via a user restart booking an abort.
        FaultSite::SchedOnAbort => {
            let first = Cell::new(true);
            rt.run(|tx| {
                if first.replace(false) {
                    return tx.restart();
                }
                tx.modify(&accounts[0], |x| x)
            });
        }
        // Reached via a deliberate retry: the completion hook fires, then
        // (for wait_register) the waitlist probe, before any parking.
        FaultSite::SchedOnRetryWait | FaultSite::WaitRegister => {
            let deadline = Instant::now() + Duration::from_secs(5);
            let _: Result<(), _> = rt.run_with_deadline(deadline, |tx| {
                let x = tx.read(&accounts[0])?;
                if x < i64::MAX {
                    return tx.retry();
                }
                Ok(())
            });
        }
        other => panic!("no driver for {other}"),
    }
}

/// The full seeded hammer: several threads transfer money while a
/// moderate-rate schedule sprays all four fault kinds over every site.
/// Each transfer is individually allowed to panic; the invariants are that
/// the total is conserved, the runtime stays reusable throughout, and the
/// schedule provably fired.
#[test]
fn seeded_hammer_conserves_money() {
    let _serial = serialize();
    let _quiet = quiet();
    const ACCOUNTS: usize = 8;
    let seeds: Vec<u64> = match faults::from_env() {
        // CI provides one seed per job via SHRINK_FAULTS; replay exactly it.
        Some(spec) => vec![spec.seed()],
        None => vec![0xC0FFEE, 42, 7],
    };
    let transfers = 150 * stress_factor();
    for seed in seeds {
        for kind in scheduler_matrix() {
            for wait in [WaitPolicy::Preemptive, WaitPolicy::Busy] {
                let rt = build_runtime(&kind, wait);
                let accounts: Arc<Vec<TVar<i64>>> =
                    Arc::new((0..ACCOUNTS).map(|_| TVar::new(1000)).collect());
                transfer(&rt, &accounts, 0, 1, 1);
                faults::reset_stats();
                let guard: FaultGuard = ScheduleBuilder::new(seed).rate_per_mille(25).install();
                let panics = Arc::new(AtomicU64::new(0));
                let handles: Vec<_> = (0..4)
                    .map(|t| {
                        let rt = rt.clone();
                        let accounts = Arc::clone(&accounts);
                        let panics = Arc::clone(&panics);
                        std::thread::spawn(move || {
                            let mut state = 0x9E37u64 + t as u64;
                            for _ in 0..transfers {
                                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                                let from = (state >> 33) as usize % ACCOUNTS;
                                let to = (state >> 13) as usize % ACCOUNTS;
                                if from == to {
                                    continue;
                                }
                                let amount = (state % 9) as i64;
                                let attempt = catch_unwind(AssertUnwindSafe(|| {
                                    transfer(&rt, &accounts, from, to, amount);
                                }));
                                if attempt.is_err() {
                                    panics.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                drop(guard);
                let injected = faults::stats();
                assert!(
                    injected.total() > 0,
                    "seed {seed} on {} injected nothing: {injected}",
                    kind.label()
                );
                // Transfers conserve whether they committed or unwound.
                assert_eq!(
                    total(&accounts),
                    ACCOUNTS as i64 * 1000,
                    "seed {seed} on {} broke conservation \
                     ({injected}; {} transfers panicked)",
                    kind.label(),
                    panics.load(Ordering::Relaxed)
                );
                // And the hammered runtime still works with the faults gone.
                transfer(&rt, &accounts, 0, 1, 13);
                transfer(&rt, &accounts, 1, 0, 13);
                assert_eq!(total(&accounts), ACCOUNTS as i64 * 1000);
            }
        }
    }
}

/// Spurious wakeups forced into the retry path: a consumer parked on a
/// `Tx::retry` keeps being woken with nothing to read and must simply
/// revalidate and park again — never return early, never miss the real
/// wake.
#[test]
fn spurious_wakes_do_not_break_retry() {
    let _serial = serialize();
    let _quiet = quiet();
    let rounds = 20 * stress_factor();
    let rt = TmRuntime::builder()
        .retry_wait(Duration::from_millis(50))
        .build();
    let v = TVar::new(0u64);
    // Bind + register while inert.
    rt.run(|tx| tx.write(&v, 0));
    let _guard = ScheduleBuilder::new(7)
        .rate_per_mille(500)
        .sites(&[FaultSite::WaitValidate, FaultSite::EventPark])
        .kinds(&[FaultKind::SpuriousWake])
        .install();
    faults::reset_stats();
    for round in 1..=rounds as u64 {
        let consumer = {
            let rt = rt.clone();
            let v = v.clone();
            std::thread::spawn(move || {
                rt.run(|tx| {
                    let x = tx.read(&v)?;
                    if x < round {
                        return tx.retry();
                    }
                    Ok(x)
                })
            })
        };
        // No parked-waits handshake here: spurious wakes may keep the
        // consumer bouncing without ever counting a park. A short grace
        // period is enough for it to reach its first wait.
        std::thread::sleep(Duration::from_millis(2));
        rt.run(|tx| tx.write(&v, round));
        assert_eq!(consumer.join().unwrap(), round);
    }
    let injected = faults::stats();
    assert!(
        injected.spurious_wakes > 0,
        "the wake storm never fired: {injected}"
    );
}

/// A `RetryTimeout` under a fault schedule still reports cleanly: the
/// deadline path and the injection path compose.
#[test]
fn deadline_survives_fault_schedule() {
    let _serial = serialize();
    let _quiet = quiet();
    let rt = TmRuntime::builder()
        .retry_wait(Duration::from_millis(5))
        .build();
    let v = TVar::new(0u64);
    rt.run(|tx| tx.write(&v, 0));
    let _guard = ScheduleBuilder::new(99)
        .rate_per_mille(200)
        .kinds(&[FaultKind::Delay, FaultKind::SpuriousWake])
        .install();
    let deadline = Instant::now() + Duration::from_millis(60);
    let got: Result<u64, TmError> = rt.run_with_deadline(deadline, |tx| {
        let x = tx.read(&v)?;
        if x == 0 {
            return tx.retry();
        }
        Ok(x)
    });
    assert!(
        matches!(got, Err(TmError::RetryTimeout { .. })),
        "expected RetryTimeout, got {got:?}"
    );
    // Still reusable under the same schedule.
    rt.run(|tx| tx.write(&v, 5));
    assert_eq!(v.snapshot(), 5);
}

/// The async suspension path under an injected wake storm: spurious
/// `Changed` outcomes out of register-validate (plus delays widening the
/// race windows) force suspended `TxFuture`s to revalidate and re-register,
/// and they must neither return early nor miss the real commit. The async
/// analogue of [`spurious_wakes_do_not_break_retry`].
#[test]
fn async_futures_survive_spurious_wakes() {
    let _serial = serialize();
    let _quiet = quiet();
    let rounds = 20 * stress_factor();
    let rt = TmRuntime::new();
    let v = TVar::new(0u64);
    // Bind + register while inert.
    rt.run(|tx| tx.write(&v, 0));
    let _guard = ScheduleBuilder::new(11)
        .rate_per_mille(500)
        .sites(&[
            FaultSite::WaitRegister,
            FaultSite::WaitValidate,
            FaultSite::WaitWake,
        ])
        .kinds(&[FaultKind::SpuriousWake, FaultKind::Delay])
        .install();
    faults::reset_stats();
    for round in 1..=rounds as u64 {
        let consumer = {
            let rt = rt.clone();
            let v = v.clone();
            // Drive the future on its own thread so the commit below can
            // race it; `block_on` parks that thread while suspended, the
            // transaction itself stays on the async waitlist path.
            std::thread::spawn(move || {
                futures::executor::block_on(atomically_async(&rt, move |tx| {
                    let x = tx.read(&v)?;
                    if x < round {
                        return tx.retry();
                    }
                    Ok(x)
                }))
            })
        };
        // No waiter-count handshake: injected `Changed` outcomes may keep
        // the future bouncing without a stable registration to observe.
        std::thread::sleep(Duration::from_millis(2));
        rt.run(|tx| tx.write(&v, round));
        assert_eq!(consumer.join().unwrap(), round);
    }
    assert_eq!(
        rt.retry_waiters(),
        0,
        "every suspension deregistered despite the storm"
    );
    let injected = faults::stats();
    assert!(
        injected.spurious_wakes > 0,
        "the wake storm never fired: {injected}"
    );
}
