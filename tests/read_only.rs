//! Acceptance tests for lock-free read-only transactions (DESIGN.md §10).
//!
//! The contract under test: [`TmRuntime::read_only`] delivers a consistent
//! multi-variable snapshot while performing **zero orec writes**, taking
//! **zero commit tickets**, and staying **invisible to the scheduler** —
//! a pure-reader thread must not even create scheduler state, and its
//! restarts are revalidations, never aborts.

use std::sync::Arc;

use shrink::prelude::*;

#[test]
fn read_only_attempts_do_not_inflate_commit_or_abort_counters() {
    let rt = TmRuntime::new();
    let vars: Vec<TVar<u64>> = (0..4).map(TVar::new).collect();
    for _ in 0..25 {
        let sum = rt.read_only(|tx| {
            let mut sum = 0;
            for v in &vars {
                sum += tx.read(v)?;
            }
            Ok(sum)
        });
        assert_eq!(sum, 6, "sum of the seeded values 0..4");
    }
    let stats = rt.stats();
    assert_eq!(stats.commits, 0, "ro attempts must not count as commits");
    assert_eq!(stats.aborts, 0, "ro restarts must not count as aborts");
    assert_eq!(stats.ro_commits, 25);
    assert_eq!(stats.ro_reads, 100);
    assert_eq!(stats.orec_acquires, 0, "no lock traffic at all");
}

/// Satellite: [`TArray::read_all`] reused from a read-only transaction
/// yields the consistent, version-stamped counterpart of
/// [`TArray::snapshot_all`], with zero orec writes (checked via
/// [`TmStats::orec_acquires`]).
#[test]
fn tarray_bulk_read_is_consistent_version_stamped_and_lock_free() {
    let rt = TmRuntime::new();
    let arr = TArray::new(16, 0u64);
    rt.run(|tx| {
        for i in 0..16 {
            arr.set(tx, i, i as u64 + 1)?;
        }
        Ok(())
    });
    let writer_orecs = rt.stats().orec_acquires;
    assert!(writer_orecs > 0, "the seeding writer took locks");

    let (view, stamp) = rt.read_only(|tx| Ok((arr.read_all(tx)?, tx.start_timestamp())));
    assert_eq!(view, (1..=16).collect::<Vec<u64>>());
    assert!(stamp >= 1, "the view carries the clock time it is valid at");
    // With no writers in flight the unsynchronized helper agrees.
    assert_eq!(arr.snapshot_all(), view);

    let stats = rt.stats();
    assert_eq!(
        stats.orec_acquires, writer_orecs,
        "the bulk read-only scan performed zero orec writes"
    );
    assert_eq!(stats.ro_reads, 16);
    assert_eq!(stats.commits, 1, "only the seeding writer committed");
}

/// A revalidation failure mid-scan restarts the reader — visible as
/// `ro_revalidations`, never as an abort, and still without touching an
/// orec.
#[test]
fn revalidation_failure_retries_without_touching_orecs() {
    let rt = TmRuntime::new();
    let arr = TArray::new(8, 0u64);
    let fired = std::cell::Cell::new(false);
    let (a, b) = rt.read_only(|tx| {
        let a = arr.get(tx, 0)?;
        if !fired.get() {
            fired.set(true);
            // Commit a whole-array bump between the reader's steps, once:
            // slot 7's version now exceeds the reader's snapshot, so the
            // next read must fail extension and restart.
            rt.run(|wtx| {
                for i in 0..8 {
                    arr.update(wtx, i, |v| v + 1)?;
                }
                Ok(())
            });
        }
        let b = arr.get(tx, 7)?;
        Ok((a, b))
    });
    assert_eq!((a, b), (1, 1), "the retried scan sees the new generation");
    let stats = rt.stats();
    assert!(
        stats.ro_revalidations > 0,
        "the forced restart shows up as a revalidation"
    );
    assert_eq!(stats.ro_commits, 1);
    assert_eq!(stats.aborts, 0, "a reader restart is not an abort");
    assert_eq!(stats.orec_acquires, 8, "only the writer took locks");
}

/// Satellite regression: a pure-reader thread leaves the Shrink scheduler's
/// per-thread success-rate state untouched — not merely neutral, but never
/// created.
#[test]
fn pure_reader_leaves_shrink_success_rate_untouched() {
    let sched = Arc::new(Shrink::new(ShrinkConfig::default()));
    let rt = TmRuntime::builder().scheduler_arc(sched.clone()).build();
    let v = TVar::new(7u64);
    for _ in 0..40 {
        assert_eq!(rt.read_only(|tx| tx.read(&v)), 7);
    }
    let stats = rt.stats();
    assert_eq!(stats.ro_commits, 40);
    let me = stats.per_thread[0].thread;
    assert_eq!(
        sched.success_rate(me),
        None,
        "read-only traffic must not create a Shrink slot"
    );
}

/// Same regression against ATS: read-only traffic must leave the
/// contention-intensity table untouched (no slot, no decay).
#[test]
fn pure_reader_leaves_ats_intensity_untouched() {
    let sched = Arc::new(Ats::new(AtsConfig::default()));
    let rt = TmRuntime::builder().scheduler_arc(sched.clone()).build();
    let v = TVar::new(1u64);
    for _ in 0..40 {
        rt.read_only(|tx| tx.read(&v));
    }
    let stats = rt.stats();
    assert_eq!(stats.ro_commits, 40);
    let me = stats.per_thread[0].thread;
    assert_eq!(
        sched.contention_intensity(me),
        None,
        "read-only traffic must not create an ATS intensity slot"
    );
    // A real read-write commit does create the slot — proving the probe
    // would have caught a leak.
    rt.run(|tx| tx.modify(&v, |x| x + 1));
    assert!(sched.contention_intensity(me).is_some());
}
