//! Property-based tests for the Section-2 theory: soundness of the bounds
//! and the theorems' envelopes on randomized instances.

use proptest::prelude::*;

use shrink::theory::{
    ats_makespan, batch_optimal, greedy_makespan, opt_lower_bound, restart_makespan,
    serializer_makespan, ConflictGraph, Instance, Job, JobId,
};

/// Strategy: a small instance with random execution times, releases and
/// conflict edges.
fn small_instance(max_jobs: usize, with_releases: bool) -> impl Strategy<Value = Instance> {
    (2..=max_jobs).prop_flat_map(move |n| {
        let jobs =
            proptest::collection::vec((if with_releases { 0u64..6 } else { 0u64..1 }, 1u64..5), n);
        let edges = proptest::collection::vec((0..n, 0..n), 0..(n * 2));
        (jobs, edges).prop_map(move |(jobs, edges)| {
            let jobs: Vec<Job> = jobs
                .into_iter()
                .map(|(release, exec)| Job::new(release, exec))
                .collect();
            let mut graph = ConflictGraph::new(jobs.len());
            for (a, b) in edges {
                if a != b {
                    graph.add_conflict(a, b);
                }
            }
            Instance::new(jobs, graph)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every simulated scheduler produces a makespan at least the certified
    /// lower bound on OPT.
    #[test]
    fn all_schedulers_respect_the_lower_bound(inst in small_instance(10, true)) {
        let lb = opt_lower_bound(&inst);
        prop_assert!(greedy_makespan(&inst).makespan >= lb);
        prop_assert!(restart_makespan(&inst).makespan >= lb);
        prop_assert!(serializer_makespan(&inst).makespan >= lb);
        prop_assert!(ats_makespan(&inst, 2).makespan >= lb);
    }

    /// Theorem 2's envelope: Restart finishes within R_max plus the optimal
    /// batch makespan of the whole job set.
    #[test]
    fn restart_is_within_rmax_plus_opt(inst in small_instance(10, true)) {
        let ids: Vec<JobId> = inst.ids().collect();
        let batch_opt = batch_optimal(&ids, &inst).makespan;
        let restart = restart_makespan(&inst).makespan;
        prop_assert!(
            restart <= inst.max_release() + batch_opt,
            "restart {restart} > Rmax {} + OPT {batch_opt}",
            inst.max_release()
        );
    }

    /// With simultaneous release, Restart equals the exact batch optimum
    /// (it simply executes that plan).
    #[test]
    fn restart_matches_batch_opt_without_releases(inst in small_instance(10, false)) {
        let ids: Vec<JobId> = inst.ids().collect();
        let batch_opt = batch_optimal(&ids, &inst).makespan;
        prop_assert_eq!(restart_makespan(&inst).makespan, batch_opt);
    }

    /// The exact solver never does worse than the greedy packer, and both
    /// schedule every job exactly once.
    #[test]
    fn exact_batch_beats_greedy_batch(inst in small_instance(10, false)) {
        let ids: Vec<JobId> = inst.ids().collect();
        let exact = batch_optimal(&ids, &inst);
        let greedy = shrink::theory::opt::batch_greedy(&ids, &inst);
        prop_assert!(exact.makespan <= greedy.makespan);
        let mut exact_jobs: Vec<JobId> = exact.waves.iter().flatten().copied().collect();
        exact_jobs.sort_unstable();
        prop_assert_eq!(exact_jobs, ids.clone());
        let mut greedy_jobs: Vec<JobId> = greedy.waves.iter().flatten().copied().collect();
        greedy_jobs.sort_unstable();
        prop_assert_eq!(greedy_jobs, ids);
    }

    /// Simulators are deterministic.
    #[test]
    fn simulators_are_deterministic(inst in small_instance(8, true)) {
        prop_assert_eq!(serializer_makespan(&inst), serializer_makespan(&inst));
        prop_assert_eq!(ats_makespan(&inst, 3), ats_makespan(&inst, 3));
        prop_assert_eq!(restart_makespan(&inst), restart_makespan(&inst));
        prop_assert_eq!(greedy_makespan(&inst), greedy_makespan(&inst));
    }

    /// Without conflicts, every scheduler achieves the trivial optimum.
    #[test]
    fn conflict_free_instances_run_fully_parallel(
        execs in proptest::collection::vec(1u64..6, 1..8)
    ) {
        let jobs: Vec<Job> = execs.iter().map(|&e| Job::new(0, e)).collect();
        let n = jobs.len();
        let inst = Instance::new(jobs, ConflictGraph::new(n));
        let opt = execs.iter().copied().max().unwrap();
        prop_assert_eq!(greedy_makespan(&inst).makespan, opt);
        prop_assert_eq!(restart_makespan(&inst).makespan, opt);
        prop_assert_eq!(serializer_makespan(&inst).makespan, opt);
        prop_assert_eq!(ats_makespan(&inst, 2).makespan, opt);
    }
}
