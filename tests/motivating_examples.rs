//! The paper's Figure 1 motivating scenarios, reproduced against the real
//! runtime.
//!
//! Figure 1(a): T1 and T3 read `x`; T2 then writes `x` and `y` and commits;
//! when T1/T3 go on to read `y` they are bound to abort — their snapshot
//! can no longer be validated. The paper's point: serializing T1 and T3
//! (which never conflict with each other) would be pure loss.
//!
//! Figure 1(b): (T1, T2) conflict on `x` and (T3, T4) conflict on `y`; one
//! of each pair aborts once, but the pairs are mutually independent, so a
//! scheduler that serializes the two losers together is over-reacting.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use shrink::prelude::*;

/// Spin-yields until `flag` is set (test-only synchronization).
fn await_flag(flag: &AtomicBool) {
    let mut spins = 0u32;
    while !flag.load(Ordering::Acquire) {
        std::thread::yield_now();
        spins += 1;
        assert!(spins < 10_000_000, "deadlock in test orchestration");
    }
}

#[test]
fn figure_1a_readers_abort_after_concurrent_writer_commits() {
    let rt = TmRuntime::builder().backend(BackendKind::Swiss).build();
    let x = TVar::new(0u64);
    let y = TVar::new(0u64);

    let readers_saw_x = Arc::new(AtomicU32::new(0));
    let writer_done = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for _ in 0..2 {
        // T1 and T3.
        let rt = rt.clone();
        let (x, y) = (x.clone(), y.clone());
        let readers_saw_x = Arc::clone(&readers_saw_x);
        let writer_done = Arc::clone(&writer_done);
        handles.push(std::thread::spawn(move || {
            let mut first_attempt = true;
            let (sx, sy) = rt.run(|tx| {
                let sx = tx.read(&x)?;
                if first_attempt {
                    first_attempt = false;
                    // Tell T2 we read x, then wait for its commit before
                    // touching y — forcing the paper's interleaving.
                    readers_saw_x.fetch_add(1, Ordering::AcqRel);
                    await_flag(&writer_done);
                }
                let sy = tx.read(&y)?;
                Ok((sx, sy))
            });
            // Serializability: a committed snapshot is all-old or all-new.
            assert_eq!(sx, sy, "torn snapshot committed: x={sx} y={sy}");
        }));
    }

    // T2: wait until both readers hold their x snapshot, then update.
    {
        let mut spins = 0u32;
        while readers_saw_x.load(Ordering::Acquire) < 2 {
            std::thread::yield_now();
            spins += 1;
            assert!(spins < 10_000_000, "readers never arrived");
        }
        rt.run(|tx| {
            tx.write(&x, 1)?;
            tx.write(&y, 1)
        });
        writer_done.store(true, Ordering::Release);
    }

    for h in handles {
        h.join().unwrap();
    }
    let stats = rt.stats();
    assert!(
        stats.aborts >= 2,
        "both readers were doomed to abort at least once, saw {}",
        stats.aborts
    );
    assert_eq!(x.snapshot(), 1);
    assert_eq!(y.snapshot(), 1);
}

#[test]
fn figure_1b_independent_pairs_conflict_only_within_pairs() {
    let rt = TmRuntime::builder().backend(BackendKind::Swiss).build();
    let x = TVar::new(0u64);
    let y = TVar::new(0u64);

    // T1, T2 increment x; T3, T4 increment y. Within a pair the
    // transactions conflict (read-write on the same variable); across
    // pairs they are completely independent.
    let mut handles = Vec::new();
    for var in [x.clone(), x.clone(), y.clone(), y.clone()] {
        let rt = rt.clone();
        handles.push(std::thread::spawn(move || {
            rt.run(|tx| {
                let v = tx.read(&var)?;
                // Lengthen the window so the pair actually overlaps.
                for _ in 0..500 {
                    std::hint::spin_loop();
                }
                tx.write(&var, v + 1)
            });
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Serializability: both increments of each pair must survive.
    assert_eq!(x.snapshot(), 2, "lost update on x");
    assert_eq!(y.snapshot(), 2, "lost update on y");
}
