//! Serializability stress: concurrent bank transfers must conserve the
//! total across every backend × waiting-policy × scheduler combination.
//! A read-only auditor thread sums the accounts concurrently with the
//! transfer writers — conservation must hold on *every* lock-free
//! snapshot, not just at the end.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use shrink::prelude::*;

fn transfer_matrix_cell(backend: BackendKind, wait: WaitPolicy, kind: &SchedulerKind) {
    const ACCOUNTS: usize = 12;
    const THREADS: usize = 4;
    const TRANSFERS: usize = 400;
    let rt = TmRuntime::builder()
        .backend(backend)
        .wait_policy(wait)
        .scheduler_arc(kind.build())
        .build();
    let accounts: Arc<Vec<TVar<i64>>> = Arc::new((0..ACCOUNTS).map(|_| TVar::new(500)).collect());
    let stop = Arc::new(AtomicBool::new(false));
    let auditor = {
        let rt = rt.clone();
        let accounts = Arc::clone(&accounts);
        let stop = Arc::clone(&stop);
        let label = kind.label().to_string();
        std::thread::spawn(move || {
            let mut audits = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let total: i64 = rt.read_only(|tx| {
                    let mut sum = 0;
                    for a in accounts.iter() {
                        sum += tx.read(a)?;
                    }
                    Ok(sum)
                });
                assert_eq!(
                    total,
                    ACCOUNTS as i64 * 500,
                    "mid-flight conservation violated: backend={backend:?} \
                     wait={wait:?} scheduler={label}"
                );
                audits += 1;
            }
            audits
        })
    };
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let rt = rt.clone();
            let accounts = Arc::clone(&accounts);
            std::thread::spawn(move || {
                let mut seed = 0x9E37 + t as u64;
                for _ in 0..TRANSFERS {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (seed >> 33) as usize % ACCOUNTS;
                    let to = (seed >> 13) as usize % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    let amount = (seed % 7) as i64;
                    rt.run(|tx| {
                        let a = tx.read(&accounts[from])?;
                        let b = tx.read(&accounts[to])?;
                        tx.write(&accounts[from], a - amount)?;
                        tx.write(&accounts[to], b + amount)
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let audits = auditor.join().unwrap();
    assert!(audits > 0, "the auditor must have summed at least once");
    let total: i64 = accounts.iter().map(|a| a.snapshot()).sum();
    assert_eq!(
        total,
        ACCOUNTS as i64 * 500,
        "conservation violated: backend={backend:?} wait={wait:?} scheduler={}",
        kind.label()
    );
    let stats = rt.stats();
    assert!(stats.commits > 0, "stats must be readable: {stats}");
    assert!(stats.ro_commits >= audits, "audits ride the read-only path");
    // The auditor is a pure reader: it never wrote an orec or aborted.
    for t in stats
        .per_thread
        .iter()
        .filter(|t| t.ro_commits > 0 && t.commits == 0)
    {
        assert_eq!(t.orec_acquires, 0, "auditor wrote an orec: {t:?}");
        assert_eq!(t.aborts, 0, "auditor aborted: {t:?}");
    }
}

fn scheduler_kinds() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Noop,
        SchedulerKind::shrink_default(),
        SchedulerKind::ats_default(),
        SchedulerKind::Pool,
        // Both Serializer wait paths: the parked epoch futex (default) and
        // the yield-poll baseline it replaced (DESIGN.md §8.5).
        SchedulerKind::Serializer(shrink::sched::SerializerConfig::default()),
        SchedulerKind::Serializer(shrink::sched::SerializerConfig {
            wait: shrink::sched::SerialWait::SpinYield,
            ..Default::default()
        }),
    ]
}

#[test]
fn swiss_preemptive_conserves_money_under_all_schedulers() {
    for kind in scheduler_kinds() {
        transfer_matrix_cell(BackendKind::Swiss, WaitPolicy::Preemptive, &kind);
    }
}

#[test]
fn swiss_busy_conserves_money_under_all_schedulers() {
    for kind in scheduler_kinds() {
        transfer_matrix_cell(BackendKind::Swiss, WaitPolicy::Busy, &kind);
    }
}

#[test]
fn tiny_preemptive_conserves_money_under_all_schedulers() {
    for kind in scheduler_kinds() {
        transfer_matrix_cell(BackendKind::Tiny, WaitPolicy::Preemptive, &kind);
    }
}

#[test]
fn tiny_busy_conserves_money_under_all_schedulers() {
    for kind in scheduler_kinds() {
        transfer_matrix_cell(BackendKind::Tiny, WaitPolicy::Busy, &kind);
    }
}

#[test]
fn swiss_parked_conserves_money_under_all_schedulers() {
    for kind in scheduler_kinds() {
        transfer_matrix_cell(BackendKind::Swiss, WaitPolicy::Parked, &kind);
    }
}

#[test]
fn tiny_parked_conserves_money_under_all_schedulers() {
    for kind in scheduler_kinds() {
        transfer_matrix_cell(BackendKind::Tiny, WaitPolicy::Parked, &kind);
    }
}

/// The blocking-queue cell: money moves producer-account → queue →
/// consumer-account through a bounded [`TxQueue`], with both blocking
/// directions exercised (producers park on a full queue, consumers on an
/// empty one) under every scheduler. Debit+push and pop+credit are single
/// transactions, so the total is conserved at every instant and — checked
/// here — at the end.
fn blocking_queue_cell(backend: BackendKind, kind: &SchedulerKind) {
    const PRODUCERS: usize = 2;
    const CONSUMERS: usize = 2;
    const COINS_PER_PRODUCER: u64 = 300;
    const TOTAL: u64 = PRODUCERS as u64 * COINS_PER_PRODUCER;
    const PER_CONSUMER: u64 = TOTAL / CONSUMERS as u64;

    let rt = TmRuntime::builder()
        .backend(backend)
        // Far beyond the test length: a lost wakeup hangs loudly instead
        // of being papered over by deadline revalidation.
        .retry_wait(std::time::Duration::from_secs(120))
        .scheduler_arc(kind.build())
        .build();
    let queue: Arc<TxQueue<u64>> = Arc::new(TxQueue::new(4));
    let sources: Arc<Vec<TVar<i64>>> = Arc::new(
        (0..PRODUCERS)
            .map(|_| TVar::new(COINS_PER_PRODUCER as i64))
            .collect(),
    );
    let sinks: Arc<Vec<TVar<i64>>> = Arc::new((0..CONSUMERS).map(|_| TVar::new(0)).collect());

    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|c| {
            let rt = rt.clone();
            let queue = Arc::clone(&queue);
            let sinks = Arc::clone(&sinks);
            std::thread::spawn(move || {
                for _ in 0..PER_CONSUMER {
                    // Pop one coin and credit it, atomically; blocks while
                    // the queue is empty.
                    rt.run(|tx| {
                        let coin = queue.pop(tx)?;
                        tx.modify(&sinks[c], |v| v + coin as i64)
                    });
                }
            })
        })
        .collect();
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let rt = rt.clone();
            let queue = Arc::clone(&queue);
            let sources = Arc::clone(&sources);
            std::thread::spawn(move || {
                for _ in 0..COINS_PER_PRODUCER {
                    // Debit one coin and push it, atomically; blocks while
                    // the queue is full.
                    rt.run(|tx| {
                        tx.modify(&sources[p], |v| v - 1)?;
                        queue.push(tx, 1)
                    });
                }
            })
        })
        .collect();
    for h in producers {
        h.join().unwrap();
    }
    for h in consumers {
        h.join().unwrap();
    }

    let remaining: i64 = sources.iter().map(|a| a.snapshot()).sum();
    let credited: i64 = sinks.iter().map(|a| a.snapshot()).sum();
    assert_eq!(remaining, 0, "every coin left its source: {}", kind.label());
    assert_eq!(
        credited,
        TOTAL as i64,
        "conservation violated through the queue: backend={backend:?} scheduler={}",
        kind.label()
    );
    assert!(
        queue.drain_snapshot().is_empty(),
        "exact counts drain the queue"
    );
    assert_eq!(
        rt.retry_stats().timed_out,
        0,
        "a retry-deadline hit here is a lost wakeup: scheduler={}",
        kind.label()
    );
}

#[test]
fn swiss_blocking_queue_conserves_money_under_all_schedulers() {
    for kind in scheduler_kinds() {
        blocking_queue_cell(BackendKind::Swiss, &kind);
    }
}

#[test]
fn tiny_blocking_queue_conserves_money_under_all_schedulers() {
    for kind in scheduler_kinds() {
        blocking_queue_cell(BackendKind::Tiny, &kind);
    }
}
