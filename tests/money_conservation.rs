//! Serializability stress: concurrent bank transfers must conserve the
//! total across every backend × waiting-policy × scheduler combination.

use std::sync::Arc;

use shrink::prelude::*;

fn transfer_matrix_cell(backend: BackendKind, wait: WaitPolicy, kind: &SchedulerKind) {
    const ACCOUNTS: usize = 12;
    const THREADS: usize = 4;
    const TRANSFERS: usize = 400;
    let rt = TmRuntime::builder()
        .backend(backend)
        .wait_policy(wait)
        .scheduler_arc(kind.build())
        .build();
    let accounts: Arc<Vec<TVar<i64>>> = Arc::new((0..ACCOUNTS).map(|_| TVar::new(500)).collect());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let rt = rt.clone();
            let accounts = Arc::clone(&accounts);
            std::thread::spawn(move || {
                let mut seed = 0x9E37 + t as u64;
                for _ in 0..TRANSFERS {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (seed >> 33) as usize % ACCOUNTS;
                    let to = (seed >> 13) as usize % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    let amount = (seed % 7) as i64;
                    rt.run(|tx| {
                        let a = tx.read(&accounts[from])?;
                        let b = tx.read(&accounts[to])?;
                        tx.write(&accounts[from], a - amount)?;
                        tx.write(&accounts[to], b + amount)
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total: i64 = accounts.iter().map(|a| a.snapshot()).sum();
    assert_eq!(
        total,
        ACCOUNTS as i64 * 500,
        "conservation violated: backend={backend:?} wait={wait:?} scheduler={}",
        kind.label()
    );
    let stats = rt.stats();
    assert!(stats.commits > 0, "stats must be readable: {stats}");
}

fn scheduler_kinds() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Noop,
        SchedulerKind::shrink_default(),
        SchedulerKind::ats_default(),
        SchedulerKind::Pool,
        // Both Serializer wait paths: the parked epoch futex (default) and
        // the yield-poll baseline it replaced (DESIGN.md §8.5).
        SchedulerKind::Serializer(shrink::sched::SerializerConfig::default()),
        SchedulerKind::Serializer(shrink::sched::SerializerConfig {
            wait: shrink::sched::SerialWait::SpinYield,
            ..Default::default()
        }),
    ]
}

#[test]
fn swiss_preemptive_conserves_money_under_all_schedulers() {
    for kind in scheduler_kinds() {
        transfer_matrix_cell(BackendKind::Swiss, WaitPolicy::Preemptive, &kind);
    }
}

#[test]
fn swiss_busy_conserves_money_under_all_schedulers() {
    for kind in scheduler_kinds() {
        transfer_matrix_cell(BackendKind::Swiss, WaitPolicy::Busy, &kind);
    }
}

#[test]
fn tiny_preemptive_conserves_money_under_all_schedulers() {
    for kind in scheduler_kinds() {
        transfer_matrix_cell(BackendKind::Tiny, WaitPolicy::Preemptive, &kind);
    }
}

#[test]
fn tiny_busy_conserves_money_under_all_schedulers() {
    for kind in scheduler_kinds() {
        transfer_matrix_cell(BackendKind::Tiny, WaitPolicy::Busy, &kind);
    }
}

#[test]
fn swiss_parked_conserves_money_under_all_schedulers() {
    for kind in scheduler_kinds() {
        transfer_matrix_cell(BackendKind::Swiss, WaitPolicy::Parked, &kind);
    }
}

#[test]
fn tiny_parked_conserves_money_under_all_schedulers() {
    for kind in scheduler_kinds() {
        transfer_matrix_cell(BackendKind::Tiny, WaitPolicy::Parked, &kind);
    }
}
