//! Opacity stress: transactions must never observe a torn snapshot, even
//! transiently, under either backend.
//!
//! A writer repeatedly updates a group of variables to a common value in
//! one transaction; readers assert inside their own transactions that all
//! members are equal. TL2-style incremental validation (with timestamp
//! extension) must make the assertion unfailable.
//!
//! Three tiers:
//!
//! * `snapshot_stress` — the original one-writer/three-reader shape;
//! * `contended_snapshot_stress` — several *competing* writer threads (so
//!   commit-time installs, aborts and orec hand-offs all race) against a
//!   pool of readers, with every writer stamping its own tag so a torn
//!   snapshot cannot hide behind coincidentally equal values;
//! * `read_only_snapshot_stress` — the same multi-writer hammer with the
//!   readers on the lock-free [`TmRuntime::read_only`] path, which must
//!   deliver the identical opacity guarantees while leaving zero marks on
//!   shared state (asserted per reader thread from the stats ledger).
//!
//! Set `SHRINK_STRESS=1` to raise thread counts and rounds.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use shrink::prelude::*;

fn snapshot_stress(backend: BackendKind, wait: WaitPolicy, kind: SchedulerKind) {
    const VARS: usize = 16;
    const WRITER_ROUNDS: u64 = 400;
    let rt = TmRuntime::builder()
        .backend(backend)
        .wait_policy(wait)
        .scheduler_arc(kind.build())
        .build();
    let vars: Arc<Vec<TVar<u64>>> = Arc::new((0..VARS).map(|_| TVar::new(0)).collect());
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let rt = rt.clone();
            let vars = Arc::clone(&vars);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observations = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let values: Vec<u64> = rt.run(|tx| {
                        let mut out = Vec::with_capacity(VARS);
                        for v in vars.iter() {
                            out.push(tx.read(v)?);
                        }
                        Ok(out)
                    });
                    assert!(
                        values.windows(2).all(|w| w[0] == w[1]),
                        "torn snapshot observed: {values:?}"
                    );
                    observations += 1;
                }
                observations
            })
        })
        .collect();

    for round in 1..=WRITER_ROUNDS {
        rt.run(|tx| {
            for v in vars.iter() {
                tx.write(v, round)?;
            }
            Ok(())
        });
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total > 0, "readers must have observed snapshots");
    assert!(vars.iter().all(|v| v.snapshot() == WRITER_ROUNDS));
}

/// Stress scaling: 1 in normal runs, larger under `SHRINK_STRESS=1`.
fn stress_factor() -> u64 {
    match std::env::var("SHRINK_STRESS") {
        Ok(v) if !v.is_empty() && v != "0" => 4,
        _ => 1,
    }
}

/// The same opacity invariants under real multi-writer contention: W writer
/// threads race to install their own tag across the whole group, so every
/// commit-time install overlaps other writers' acquires, aborts and
/// retries. Readers assert all-equal and additionally that the observed tag
/// was actually produced by some writer round (values are
/// `round * WRITERS + writer_id`, so tag consistency is checkable).
fn contended_snapshot_stress(backend: BackendKind, wait: WaitPolicy, kind: SchedulerKind) {
    const VARS: usize = 12;
    let writers: u64 = 4 * stress_factor().min(2);
    let readers: usize = (3 * stress_factor().min(2)) as usize;
    let writer_rounds: u64 = 200 * stress_factor();

    let rt = TmRuntime::builder()
        .backend(backend)
        .wait_policy(wait)
        .scheduler_arc(kind.build())
        .build();
    let vars: Arc<Vec<TVar<u64>>> = Arc::new((0..VARS).map(|_| TVar::new(0)).collect());
    let stop = Arc::new(AtomicBool::new(false));

    let reader_handles: Vec<_> = (0..readers)
        .map(|_| {
            let rt = rt.clone();
            let vars = Arc::clone(&vars);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observations = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let values: Vec<u64> = rt.run(|tx| {
                        let mut out = Vec::with_capacity(VARS);
                        for v in vars.iter() {
                            out.push(tx.read(v)?);
                        }
                        Ok(out)
                    });
                    assert!(
                        values.windows(2).all(|w| w[0] == w[1]),
                        "torn snapshot under contention: {values:?}"
                    );
                    observations += 1;
                }
                observations
            })
        })
        .collect();

    let writer_handles: Vec<_> = (0..writers)
        .map(|w| {
            let rt = rt.clone();
            let vars = Arc::clone(&vars);
            std::thread::spawn(move || {
                for round in 1..=writer_rounds {
                    let tag = round * writers + w;
                    rt.run(|tx| {
                        for v in vars.iter() {
                            tx.write(v, tag)?;
                        }
                        Ok(())
                    });
                }
            })
        })
        .collect();

    for h in writer_handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = reader_handles.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total > 0, "readers must have observed snapshots");

    // The final group value is whichever writer's last round won, but it
    // must be a tag some writer actually wrote in its final round.
    let final_values = rt.run(|tx| {
        let mut out = Vec::with_capacity(VARS);
        for v in vars.iter() {
            out.push(tx.read(v)?);
        }
        Ok(out)
    });
    assert!(final_values.windows(2).all(|w| w[0] == w[1]));
    let tag = final_values[0];
    assert!(
        tag / writers >= 1 && tag / writers <= writer_rounds,
        "final tag {tag} not produced by any writer round"
    );
}

/// The contended hammer with lock-free readers: several writers race their
/// tags across the group while readers scan via [`TmRuntime::read_only`].
/// Readers assert all-equal, tag validity, and within-snapshot re-read
/// stability; afterwards the stats ledger must show that every pure-reader
/// thread acquired zero orecs and aborted zero transactions — the
/// lock-freedom claim, checked rather than assumed.
fn read_only_snapshot_stress(backend: BackendKind, wait: WaitPolicy, kind: SchedulerKind) {
    const VARS: usize = 12;
    let writers: u64 = 4 * stress_factor().min(2);
    let readers: usize = (3 * stress_factor().min(2)) as usize;
    let writer_rounds: u64 = 200 * stress_factor();

    let rt = TmRuntime::builder()
        .backend(backend)
        .wait_policy(wait)
        .scheduler_arc(kind.build())
        .build();
    let vars: Arc<Vec<TVar<u64>>> = Arc::new((0..VARS).map(|_| TVar::new(0)).collect());
    let stop = Arc::new(AtomicBool::new(false));

    let reader_handles: Vec<_> = (0..readers)
        .map(|_| {
            let rt = rt.clone();
            let vars = Arc::clone(&vars);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observations = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (values, again) = rt.read_only(|tx| {
                        let mut out = Vec::with_capacity(VARS);
                        for v in vars.iter() {
                            out.push(tx.read(v)?);
                        }
                        // Re-reading inside the same snapshot must return
                        // what the snapshot already showed (no time-travel
                        // within one read-only transaction).
                        let again = tx.read(&vars[0])?;
                        Ok((out, again))
                    });
                    assert!(
                        values.windows(2).all(|w| w[0] == w[1]),
                        "torn read-only snapshot: {values:?}"
                    );
                    assert_eq!(again, values[0], "re-read moved within a snapshot");
                    let tag = values[0];
                    assert!(
                        tag == 0 || (1..=writer_rounds).contains(&(tag / writers)),
                        "tag {tag} not produced by any writer round"
                    );
                    observations += 1;
                }
                observations
            })
        })
        .collect();

    let writer_handles: Vec<_> = (0..writers)
        .map(|w| {
            let rt = rt.clone();
            let vars = Arc::clone(&vars);
            std::thread::spawn(move || {
                for round in 1..=writer_rounds {
                    let tag = round * writers + w;
                    rt.run(|tx| {
                        for v in vars.iter() {
                            tx.write(v, tag)?;
                        }
                        Ok(())
                    });
                }
            })
        })
        .collect();

    for h in writer_handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = reader_handles.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total > 0, "readers must have observed snapshots");

    // Lock-freedom footprint: a pure reader (only ro commits) leaves no
    // orec writes, no rw commits, no aborts — ever.
    let stats = rt.stats();
    let pure_readers: Vec<_> = stats
        .per_thread
        .iter()
        .filter(|t| t.ro_commits > 0 && t.commits == 0)
        .collect();
    assert!(
        pure_readers.len() >= readers,
        "every reader thread must appear as a pure reader"
    );
    for t in pure_readers {
        assert_eq!(t.orec_acquires, 0, "pure reader wrote an orec: {t:?}");
        assert_eq!(t.aborts, 0, "pure reader aborted: {t:?}");
    }
}

/// Deterministic writer/reader interleaving, single-threaded: a writer
/// transaction commits a whole-group bump between *every* reader step
/// while its budget lasts, so a naive reader would assemble a
/// mixed-generation view. The read-only transaction must instead restart
/// (visible as revalidations) until the writer budget is exhausted, and
/// the final view must be all-old-or-all-new — here, all-new.
#[test]
fn deterministic_interleaving_reads_all_old_or_all_new() {
    const VARS: usize = 8;
    const WRITE_BUDGET: u64 = 4 * VARS as u64;
    let rt = TmRuntime::new();
    let vars: Vec<TVar<u64>> = (0..VARS).map(|_| TVar::new(0)).collect();
    let budget = std::cell::Cell::new(WRITE_BUDGET);
    let view = rt.read_only(|tx| {
        let mut out = Vec::with_capacity(VARS);
        for v in &vars {
            out.push(tx.read(v)?);
            if budget.get() > 0 {
                budget.set(budget.get() - 1);
                // The writer commits between every reader step,
                // invalidating the reader's snapshot mid-scan.
                rt.run(|wtx| {
                    for v in &vars {
                        wtx.modify(v, |x| x + 1)?;
                    }
                    Ok(())
                });
            }
        }
        Ok(out)
    });
    assert!(
        view.windows(2).all(|w| w[0] == w[1]),
        "mixed-generation view: {view:?}"
    );
    let stats = rt.stats();
    // The scan can only complete once the writer budget is spent, so the
    // consistent view is the all-new one.
    assert_eq!(view[0], stats.commits);
    assert!(
        stats.ro_revalidations > 0,
        "interleaved commits must have forced reader restarts"
    );
    assert_eq!(stats.ro_commits, 1, "one read-only transaction, many tries");
    assert_eq!(stats.aborts, 0, "the writer never aborts single-threaded");
}

#[test]
fn swiss_backend_never_shows_torn_snapshots() {
    snapshot_stress(
        BackendKind::Swiss,
        WaitPolicy::Preemptive,
        SchedulerKind::Noop,
    );
}

#[test]
fn tiny_backend_never_shows_torn_snapshots() {
    snapshot_stress(
        BackendKind::Tiny,
        WaitPolicy::Preemptive,
        SchedulerKind::Noop,
    );
}

#[test]
fn shrink_scheduler_preserves_opacity() {
    snapshot_stress(
        BackendKind::Swiss,
        WaitPolicy::Preemptive,
        SchedulerKind::shrink_default(),
    );
}

#[test]
fn busy_waiting_preserves_opacity() {
    snapshot_stress(BackendKind::Tiny, WaitPolicy::Busy, SchedulerKind::Noop);
}

#[test]
fn swiss_backend_survives_contended_writers() {
    contended_snapshot_stress(
        BackendKind::Swiss,
        WaitPolicy::Preemptive,
        SchedulerKind::Noop,
    );
}

#[test]
fn tiny_backend_survives_contended_writers() {
    contended_snapshot_stress(
        BackendKind::Tiny,
        WaitPolicy::Preemptive,
        SchedulerKind::Noop,
    );
}

#[test]
fn shrink_scheduler_survives_contended_writers() {
    contended_snapshot_stress(
        BackendKind::Swiss,
        WaitPolicy::Preemptive,
        SchedulerKind::shrink_default(),
    );
}

#[test]
fn swiss_read_only_readers_survive_contended_writers() {
    read_only_snapshot_stress(
        BackendKind::Swiss,
        WaitPolicy::Preemptive,
        SchedulerKind::Noop,
    );
}

#[test]
fn tiny_read_only_readers_survive_contended_writers() {
    read_only_snapshot_stress(
        BackendKind::Tiny,
        WaitPolicy::Preemptive,
        SchedulerKind::Noop,
    );
}

#[test]
fn shrink_scheduler_read_only_readers_survive_contended_writers() {
    read_only_snapshot_stress(
        BackendKind::Swiss,
        WaitPolicy::Preemptive,
        SchedulerKind::shrink_default(),
    );
}
