//! Opacity stress: transactions must never observe a torn snapshot, even
//! transiently, under either backend.
//!
//! A writer repeatedly updates a group of variables to a common value in
//! one transaction; readers assert inside their own transactions that all
//! members are equal. TL2-style incremental validation (with timestamp
//! extension) must make the assertion unfailable.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use shrink::prelude::*;

fn snapshot_stress(backend: BackendKind, wait: WaitPolicy, kind: SchedulerKind) {
    const VARS: usize = 16;
    const WRITER_ROUNDS: u64 = 400;
    let rt = TmRuntime::builder()
        .backend(backend)
        .wait_policy(wait)
        .scheduler_arc(kind.build())
        .build();
    let vars: Arc<Vec<TVar<u64>>> = Arc::new((0..VARS).map(|_| TVar::new(0)).collect());
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let rt = rt.clone();
            let vars = Arc::clone(&vars);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observations = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let values: Vec<u64> = rt.run(|tx| {
                        let mut out = Vec::with_capacity(VARS);
                        for v in vars.iter() {
                            out.push(tx.read(v)?);
                        }
                        Ok(out)
                    });
                    assert!(
                        values.windows(2).all(|w| w[0] == w[1]),
                        "torn snapshot observed: {values:?}"
                    );
                    observations += 1;
                }
                observations
            })
        })
        .collect();

    for round in 1..=WRITER_ROUNDS {
        rt.run(|tx| {
            for v in vars.iter() {
                tx.write(v, round)?;
            }
            Ok(())
        });
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total > 0, "readers must have observed snapshots");
    assert!(vars.iter().all(|v| v.snapshot() == WRITER_ROUNDS));
}

#[test]
fn swiss_backend_never_shows_torn_snapshots() {
    snapshot_stress(
        BackendKind::Swiss,
        WaitPolicy::Preemptive,
        SchedulerKind::Noop,
    );
}

#[test]
fn tiny_backend_never_shows_torn_snapshots() {
    snapshot_stress(
        BackendKind::Tiny,
        WaitPolicy::Preemptive,
        SchedulerKind::Noop,
    );
}

#[test]
fn shrink_scheduler_preserves_opacity() {
    snapshot_stress(
        BackendKind::Swiss,
        WaitPolicy::Preemptive,
        SchedulerKind::shrink_default(),
    );
}

#[test]
fn busy_waiting_preserves_opacity() {
    snapshot_stress(BackendKind::Tiny, WaitPolicy::Busy, SchedulerKind::Noop);
}
