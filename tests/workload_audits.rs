//! End-to-end workload audits: every benchmark port runs concurrently
//! under both backends with the Shrink scheduler and passes its own
//! consistency verification.

use std::sync::Arc;

use shrink::prelude::*;
use shrink::workloads::harness::run_fixed_steps;
use shrink::workloads::stamp;
use shrink::workloads::stmbench7::{Sb7Config, Sb7Mix, Sb7Workload};
use shrink::workloads::RbTreeWorkload;

fn runtime(backend: BackendKind) -> TmRuntime {
    TmRuntime::builder()
        .backend(backend)
        .scheduler_arc(SchedulerKind::shrink_default().build())
        .build()
}

#[test]
fn every_stamp_config_verifies_on_swiss_with_shrink() {
    for name in stamp::STAMP_NAMES {
        let rt = runtime(BackendKind::Swiss);
        let w = stamp::build(name, &rt);
        run_fixed_steps(&rt, &w, 3, 40, 0xA11CE);
        w.verify(&rt)
            .unwrap_or_else(|e| panic!("{name} (swiss/shrink) failed: {e}"));
    }
}

#[test]
fn every_stamp_config_verifies_on_tiny_with_shrink() {
    for name in stamp::STAMP_NAMES {
        let rt = runtime(BackendKind::Tiny);
        let w = stamp::build(name, &rt);
        run_fixed_steps(&rt, &w, 3, 40, 0xB0B);
        w.verify(&rt)
            .unwrap_or_else(|e| panic!("{name} (tiny/shrink) failed: {e}"));
    }
}

#[test]
fn stmbench7_mixes_verify_on_both_backends() {
    for backend in [BackendKind::Swiss, BackendKind::Tiny] {
        for mix in Sb7Mix::all() {
            let rt = runtime(backend);
            let w: Arc<dyn TxWorkload> = Arc::new(Sb7Workload::new(&rt, Sb7Config::tiny(), mix));
            run_fixed_steps(&rt, &w, 3, 60, 7);
            w.verify(&rt)
                .unwrap_or_else(|e| panic!("stmbench7 {mix} on {backend} failed: {e}"));
        }
    }
}

#[test]
fn rbtree_workload_verifies_under_heavy_updates() {
    for backend in [BackendKind::Swiss, BackendKind::Tiny] {
        let rt = runtime(backend);
        let w: Arc<dyn TxWorkload> = Arc::new(RbTreeWorkload::new(&rt, 512, 70));
        run_fixed_steps(&rt, &w, 4, 200, 99);
        w.verify(&rt)
            .unwrap_or_else(|e| panic!("rbtree on {backend} failed: {e}"));
    }
}

#[test]
fn stamp_runs_under_every_scheduler_on_one_representative() {
    // `intruder` has the hot queue — the scheduler-sensitive case.
    for kind in [
        SchedulerKind::Noop,
        SchedulerKind::shrink_default(),
        SchedulerKind::ats_default(),
        SchedulerKind::Pool,
        SchedulerKind::Serializer(shrink::sched::SerializerConfig::default()),
    ] {
        let rt = TmRuntime::builder()
            .backend(BackendKind::Swiss)
            .scheduler_arc(kind.build())
            .build();
        let w = stamp::build("intruder", &rt);
        run_fixed_steps(&rt, &w, 3, 60, 5);
        w.verify(&rt)
            .unwrap_or_else(|e| panic!("intruder under {} failed: {e}", kind.label()));
    }
}
