//! Fairness and progress of the parked locking subsystem under convoys.
//!
//! The futex-parked `SerialLock` claims FIFO-ish wakeup (kernel futex
//! queues drain roughly in arrival order; the portable parker is strictly
//! FIFO). These tests pin down the properties the schedulers actually rely
//! on, for both waiting strategies:
//!
//! * **progress** — every thread in an N-way convoy completes its
//!   acquisition quota (a starved thread would hang the test);
//! * **bounded spread** — over a shared time window, no thread monopolizes
//!   the lock: max/min acquisition counts stay within a generous factor.
//!   Futex mutexes barge (a releasing thread can re-acquire before the
//!   woken waiter is scheduled), so the bound is deliberately loose — the
//!   claim is "no starvation", not strict round-robin;
//! * **exact `wait_count`** — the affinity signal never over-counts the
//!   number of serialized threads and returns to exactly zero at
//!   quiescence, even while park/unpark churn.
//!
//! Set `SHRINK_STRESS=1` (CI stress job) to raise thread counts and
//! iteration multipliers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use shrink_core::{SerialLock, SerialWait};
use shrink_stm::ThreadId;

/// Stress scaling: 1 in normal runs, larger under `SHRINK_STRESS=1`.
fn stress_factor() -> usize {
    match std::env::var("SHRINK_STRESS") {
        Ok(v) if !v.is_empty() && v != "0" => 4,
        _ => 1,
    }
}

fn tid(raw: u16) -> ThreadId {
    ThreadId::from_u16(raw)
}

/// Every thread must finish `quota` acquisitions — starvation hangs here
/// (and trips the harness timeout) instead of flaking an assertion.
fn convoy_completes_quota(wait: SerialWait) {
    let threads = 4 * stress_factor().min(2);
    let quota = 2_000 * stress_factor() as u64;
    let lock = Arc::new(SerialLock::with_wait(wait));
    let in_section = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (1..=threads as u16)
        .map(|raw| {
            let lock = Arc::clone(&lock);
            let in_section = Arc::clone(&in_section);
            std::thread::spawn(move || {
                let me = tid(raw);
                for _ in 0..quota {
                    lock.acquire(me);
                    // Mutual exclusion: never two threads inside.
                    assert_eq!(in_section.fetch_add(1, Ordering::SeqCst), 0);
                    in_section.fetch_sub(1, Ordering::SeqCst);
                    assert!(lock.release_if_held(me));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(lock.wait_count(), 0);
}

#[test]
fn parked_convoy_completes_quota() {
    convoy_completes_quota(SerialWait::Parked);
}

#[test]
fn spin_yield_convoy_completes_quota() {
    convoy_completes_quota(SerialWait::SpinYield);
}

/// Shared-window convoy: counts per-thread acquisitions, asserts everyone
/// made progress and the spread is bounded. One retry absorbs the rare
/// pathological window an oversubscribed CI container can produce.
fn bounded_spread(wait: SerialWait) {
    let threads = if stress_factor() > 1 { 8 } else { 4 };
    let window = Duration::from_millis(300 * stress_factor() as u64);
    // Futex/yield barging plus single-core timeslicing skews convoys; the
    // bound only rules out starvation-grade skew.
    const MAX_SPREAD: u64 = 100;

    let attempt = || -> (u64, u64) {
        let lock = Arc::new(SerialLock::with_wait(wait));
        let stop = Arc::new(AtomicBool::new(false));
        let counts: Vec<Arc<AtomicU64>> =
            (0..threads).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                let count = Arc::clone(&counts[i]);
                std::thread::spawn(move || {
                    let me = tid((i + 1) as u16);
                    while !stop.load(Ordering::Relaxed) {
                        lock.acquire(me);
                        count.fetch_add(1, Ordering::Relaxed);
                        lock.release_if_held(me);
                    }
                })
            })
            .collect();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        let all: Vec<u64> = counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        (*all.iter().min().unwrap(), *all.iter().max().unwrap())
    };

    let (mut min, mut max) = attempt();
    if min == 0 || max > min * MAX_SPREAD {
        // One retry: a single bad window on a loaded container is noise, a
        // repeatably starved thread is a bug.
        (min, max) = attempt();
    }
    assert!(min > 0, "{wait}: a thread starved (0 acquisitions)");
    assert!(
        max <= min * MAX_SPREAD,
        "{wait}: acquisition spread {max}/{min} exceeds {MAX_SPREAD}×"
    );
}

#[test]
fn parked_convoy_spread_is_bounded() {
    bounded_spread(SerialWait::Parked);
}

#[test]
fn spin_yield_convoy_spread_is_bounded() {
    bounded_spread(SerialWait::SpinYield);
}

/// `wait_count` exactness under churn: with N threads looping through the
/// lock, a sampler must never read more than N (over-count) and the signal
/// must settle to exactly 0 at quiescence. Guards the SeqCst pairing of
/// `waiting.fetch_add`/`fetch_sub` across the park/unpark boundary.
#[test]
fn wait_count_stays_exact_under_churn() {
    let threads = 4 * stress_factor().min(2);
    let iters = 3_000 * stress_factor() as u64;
    let lock = Arc::new(SerialLock::new());
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let lock = Arc::clone(&lock);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut max_seen = 0;
            while !stop.load(Ordering::Relaxed) {
                let count = lock.wait_count();
                max_seen = max_seen.max(count);
                std::hint::spin_loop();
            }
            max_seen
        })
    };
    let handles: Vec<_> = (1..=threads as u16)
        .map(|raw| {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                let me = tid(raw);
                for _ in 0..iters {
                    lock.acquire(me);
                    lock.release_if_held(me);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let max_seen = sampler.join().unwrap();
    assert!(
        max_seen <= threads as u32,
        "wait_count over-counted: saw {max_seen} with only {threads} threads"
    );
    assert_eq!(
        lock.wait_count(),
        0,
        "signal must be exactly 0 at quiescence"
    );
}
