//! Contention-manager matrix: the classic CM policies the paper contrasts
//! schedulers with (Suicide, Polite, Karma, SwissTM's TwoPhase) must all
//! preserve serializability and make progress.

use std::sync::Arc;

use shrink::prelude::*;
use shrink::stm::CmPolicy;

fn hammer_one_hot_variable(policy: CmPolicy) -> (u64, u64) {
    const THREADS: usize = 4;
    const INCREMENTS: usize = 300;
    let rt = TmRuntime::builder()
        .backend(BackendKind::Swiss)
        .cm_policy(policy)
        .build();
    let hot = TVar::new(0u64);
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let rt = rt.clone();
            let hot = hot.clone();
            std::thread::spawn(move || {
                for _ in 0..INCREMENTS {
                    rt.run(|tx| {
                        let v = tx.read(&hot)?;
                        // Widen the conflict window.
                        for _ in 0..50 {
                            std::hint::spin_loop();
                        }
                        tx.write(&hot, v + 1)
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = rt.stats();
    assert_eq!(
        hot.snapshot(),
        (THREADS * INCREMENTS) as u64,
        "{policy}: lost updates"
    );
    (stats.commits, stats.aborts)
}

#[test]
fn two_phase_cm_is_serializable_under_contention() {
    let (commits, _) = hammer_one_hot_variable(CmPolicy::TwoPhase);
    assert_eq!(commits, 1200);
}

#[test]
fn suicide_cm_is_serializable_under_contention() {
    let (commits, _) = hammer_one_hot_variable(CmPolicy::Suicide);
    assert_eq!(commits, 1200);
}

#[test]
fn polite_cm_is_serializable_under_contention() {
    let (commits, _) = hammer_one_hot_variable(CmPolicy::Polite);
    assert_eq!(commits, 1200);
}

#[test]
fn karma_cm_is_serializable_under_contention() {
    let (commits, _) = hammer_one_hot_variable(CmPolicy::Karma);
    assert_eq!(commits, 1200);
}

#[test]
fn karma_kills_the_lighter_transaction() {
    // A heavyweight transaction (many accesses) must be able to take a
    // stripe from a lightweight holder under Karma.
    let rt = TmRuntime::builder()
        .backend(BackendKind::Swiss)
        .cm_policy(CmPolicy::Karma)
        .build();
    let contended = TVar::new(0u64);
    let ballast: Arc<Vec<TVar<u64>>> = Arc::new((0..128).map(|_| TVar::new(1)).collect());

    // Light holder: acquires the stripe and then dawdles.
    let light = {
        let rt = rt.clone();
        let contended = contended.clone();
        std::thread::spawn(move || {
            rt.run(|tx| {
                tx.write(&contended, 1)?;
                for _ in 0..200_000 {
                    std::hint::spin_loop();
                }
                Ok(())
            });
        })
    };
    // Heavy contender: does lots of reads first, then wants the stripe.
    let heavy = {
        let rt = rt.clone();
        let contended = contended.clone();
        let ballast = Arc::clone(&ballast);
        std::thread::spawn(move || {
            rt.run(|tx| {
                let mut sum = 0;
                for v in ballast.iter() {
                    sum += tx.read(v)?;
                }
                tx.write(&contended, sum)
            });
        })
    };
    light.join().unwrap();
    heavy.join().unwrap();
    // Both eventually commit (order unspecified); the last writer's value
    // stands and nothing deadlocks.
    let v = contended.snapshot();
    assert!(v == 1 || v == 128, "unexpected final value {v}");
    assert_eq!(rt.stats().commits, 2);
}

#[test]
fn cm_policies_conserve_money_on_tiny_backend_too() {
    for policy in [CmPolicy::Suicide, CmPolicy::Polite, CmPolicy::Karma] {
        let rt = TmRuntime::builder()
            .backend(BackendKind::Tiny)
            .cm_policy(policy)
            .build();
        let a = TVar::new(100i64);
        let b = TVar::new(100i64);
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let rt = rt.clone();
                let (a, b) = (a.clone(), b.clone());
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        rt.run(|tx| {
                            let x = tx.read(&a)?;
                            let y = tx.read(&b)?;
                            tx.write(&a, x - 1)?;
                            tx.write(&b, y + 1)
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            a.snapshot() + b.snapshot(),
            200,
            "{policy}: conservation violated"
        );
    }
}
