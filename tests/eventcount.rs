//! Correctness of the `EventCount` epoch futex under contention.
//!
//! The primitive's contract (vendor/parking_lot/src/eventcount.rs) is the
//! foundation of the scheduler stack's epoch waiting (DESIGN.md §8.5):
//!
//! * **no lost wakeups** — a waiter that observed version `v` and an
//!   advancer that bumps past `v` can never miss each other, regardless of
//!   interleaving (the waiter-bit CAS / futex-compare protocol);
//! * **exact version accounting** — concurrent advances from N wakers are
//!   all distinct RMWs: the final version equals the initial version plus
//!   the number of advances;
//! * **deadline exactness** — a bounded wait never reports expiry before
//!   its deadline, and an expired wait never reports `TimedOut` when the
//!   version in fact advanced.
//!
//! A lost wakeup deadlocks the hammer (and trips the harness timeout)
//! instead of flaking an assertion. Set `SHRINK_STRESS=1` (CI stress job)
//! to raise thread counts and iteration multipliers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{EventCount, WaitOutcome};

/// Stress scaling: 1 in normal runs, larger under `SHRINK_STRESS=1`.
fn stress_factor() -> usize {
    match std::env::var("SHRINK_STRESS") {
        Ok(v) if !v.is_empty() && v != "0" => 4,
        _ => 1,
    }
}

/// Lost-wakeup hammer: M waiters ride the version from 0 to the target
/// with *unbounded* waits while N wakers race exactly `target` advances in
/// total. If any wakeup were lost, a waiter would sleep forever on a stale
/// version and the join below would hang. Exact version accounting is
/// asserted at the end.
#[test]
fn lost_wakeup_hammer_with_exact_version_accounting() {
    let wakers = 2 * stress_factor();
    let waiters = 2 * stress_factor();
    let advances_per_waker = (5_000 * stress_factor()) as u32;
    let target = (wakers as u32) * advances_per_waker;

    let ec = Arc::new(EventCount::new());
    let wake_issued = Arc::new(AtomicU64::new(0));
    let woken_total = Arc::new(AtomicU64::new(0));

    let waiter_handles: Vec<_> = (0..waiters)
        .map(|_| {
            let ec = Arc::clone(&ec);
            std::thread::spawn(move || {
                let mut observed = ec.version();
                let mut wakes_seen = 0u64;
                while observed != target {
                    // Unbounded: only an advance (i.e. a wakeup) can free us.
                    let outcome = ec.wait_while_eq(observed, None);
                    assert_eq!(outcome, WaitOutcome::Advanced);
                    let now = ec.version();
                    assert_ne!(now, observed, "Advanced must mean it moved");
                    observed = now;
                    wakes_seen += 1;
                }
                wakes_seen
            })
        })
        .collect();

    // Park-first handshake: all waiters are provably asleep on version 0
    // before the first advance, so every one of them exercises the wakeup
    // path at least once (otherwise, on a small container, the wakers could
    // finish before any waiter was scheduled).
    while ec.waiters() < waiters as u32 {
        std::thread::yield_now();
    }

    let waker_handles: Vec<_> = (0..wakers)
        .map(|_| {
            let ec = Arc::clone(&ec);
            let wake_issued = Arc::clone(&wake_issued);
            let woken_total = Arc::clone(&woken_total);
            std::thread::spawn(move || {
                for i in 0..advances_per_waker {
                    let adv = ec.advance();
                    if adv.wake_issued {
                        wake_issued.fetch_add(1, Ordering::Relaxed);
                        woken_total.fetch_add(adv.woken as u64, Ordering::Relaxed);
                    }
                    if i % 1024 == 0 {
                        // Let waiters actually park now and then, so the
                        // hammer exercises the sleep path and not only the
                        // version-already-moved fast path.
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();

    for h in waker_handles {
        h.join().unwrap();
    }
    // Exact accounting: every advance is a distinct +1.
    assert_eq!(ec.version(), target, "N wakers × K advances must all land");
    // Every waiter must come home (a lost wakeup would hang this join).
    for h in waiter_handles {
        let wakes_seen = h.join().unwrap();
        assert!(wakes_seen > 0, "each waiter must have slept at least once");
    }
    assert_eq!(ec.waiters(), 0, "waiter accounting must return to zero");
    // The probe is only meaningful if parking actually happened.
    assert!(
        wake_issued.load(Ordering::Relaxed) > 0,
        "hammer never parked a waiter — scale is too small to test anything"
    );
}

/// Deadline-expiry exactness: a bounded wait on a never-advancing count
/// returns `TimedOut`, never before its deadline.
#[test]
fn deadline_expiry_is_exact() {
    let ec = EventCount::new();
    for wait_ms in [5u64, 20, 50] {
        let deadline = Instant::now() + Duration::from_millis(wait_ms);
        let outcome = ec.wait_while_eq(ec.version(), Some(deadline));
        let now = Instant::now();
        assert_eq!(outcome, WaitOutcome::TimedOut);
        assert!(
            now >= deadline,
            "reported expiry {:?} before the {wait_ms} ms deadline",
            deadline - now
        );
    }
    // Already-expired deadline: immediate, still honest about the version.
    let outcome = ec.wait_while_eq(
        ec.version(),
        Some(Instant::now() - Duration::from_millis(1)),
    );
    assert_eq!(outcome, WaitOutcome::TimedOut);
    ec.advance();
    let outcome = ec.wait_while_eq(0, Some(Instant::now() - Duration::from_millis(1)));
    assert_eq!(
        outcome,
        WaitOutcome::Advanced,
        "an advanced version must win over an expired deadline"
    );
}

/// Bounded waits racing real advances: every outcome must be consistent
/// with the word — `Advanced` implies the version moved; `TimedOut` implies
/// the deadline truly passed.
#[test]
fn bounded_waits_under_churn_report_consistent_outcomes() {
    let rounds = (2_000 * stress_factor()) as u32;
    let ec = Arc::new(EventCount::new());
    let waiter = {
        let ec = Arc::clone(&ec);
        std::thread::spawn(move || {
            let mut advanced = 0u64;
            let mut timed_out = 0u64;
            loop {
                let observed = ec.version();
                if observed == rounds {
                    break;
                }
                let deadline = Instant::now() + Duration::from_micros(100);
                match ec.wait_while_eq(observed, Some(deadline)) {
                    WaitOutcome::Advanced => {
                        assert_ne!(ec.version(), observed);
                        advanced += 1;
                    }
                    WaitOutcome::TimedOut => {
                        assert!(Instant::now() >= deadline, "early TimedOut");
                        timed_out += 1;
                    }
                }
            }
            (advanced, timed_out)
        })
    };
    for i in 0..rounds {
        ec.advance();
        if i % 128 == 0 {
            std::thread::sleep(Duration::from_micros(50));
        }
    }
    let (advanced, _timed_out) = waiter.join().unwrap();
    assert!(advanced > 0, "churn must exercise the advanced path");
    assert_eq!(ec.version(), rounds);
    assert_eq!(ec.waiters(), 0);
}

/// Waiter accounting is exact at the handshake points the scheduler tests
/// rely on: all M waiters visible while parked, zero after the wake.
#[test]
fn waiter_count_is_exact_at_quiescence() {
    let waiters = 2 * stress_factor();
    let ec = Arc::new(EventCount::new());
    let observed = ec.version();
    let handles: Vec<_> = (0..waiters)
        .map(|_| {
            let ec = Arc::clone(&ec);
            std::thread::spawn(move || ec.wait_while_eq(observed, None))
        })
        .collect();
    // All waiters must become visible (they can only leave via an advance).
    while ec.waiters() < waiters as u32 {
        std::thread::yield_now();
    }
    assert_eq!(ec.waiters(), waiters as u32, "must not over-count");
    ec.advance();
    for h in handles {
        assert_eq!(h.join().unwrap(), WaitOutcome::Advanced);
    }
    assert_eq!(ec.waiters(), 0, "must return to exactly zero");
}
