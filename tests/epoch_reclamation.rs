//! Concurrency stress suite for the epoch-based reclamation behind `TVar`
//! snapshots (`vendor/crossbeam`, wired through `ValueCell` — see
//! DESIGN.md §7).
//!
//! Three layers:
//!
//! 1. **Vendor-level churn** drives `epoch::Atomic` directly: writer threads
//!    swap-and-retire while reader threads dereference under held guards.
//! 2. **TVar-level churn** exercises the same machinery through the public
//!    STM API with a drop-counting canary payload.
//! 3. **Exhaustive interleaving model** enumerates every schedule of a
//!    pin/load/unpin vs. swap/retire/advance/collect program on the
//!    algorithm's state machine and proves the two-epoch grace rule safe
//!    (and shows a one-epoch grace period is *not* — the model has teeth).
//!
//! Invariants asserted throughout:
//!
//! * (a) **no use-after-free** — a value reachable from a pinned snapshot is
//!   never dropped (canary magic + model check);
//! * (b) **no leak** — once all pins release and the collector quiesces,
//!   every retired value has been dropped, exactly once.
//!
//! Set `SHRINK_STRESS=1` (CI stress job) to raise thread counts and
//! iteration multipliers.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::epoch::{self, Atomic, Owned};
use shrink::prelude::*;
use shrink::stm::quiesce;

/// Stress scaling: 1 in normal runs, larger under `SHRINK_STRESS=1`.
fn stress_factor() -> usize {
    match std::env::var("SHRINK_STRESS") {
        Ok(v) if !v.is_empty() && v != "0" => 4,
        _ => 1,
    }
}

fn stress_threads(base: usize) -> usize {
    if stress_factor() > 1 {
        base * 2
    } else {
        base
    }
}

// ---------------------------------------------------------------- canary

const MAGIC: u64 = 0xA11C_E55E_D00D_FEED;
const POISON: u64 = 0xDEAD_DEAD_DEAD_DEAD;

/// Bookkeeping shared by every canary in one test run.
#[derive(Default)]
struct CanaryLedger {
    created: AtomicUsize,
    dropped: AtomicUsize,
}

impl CanaryLedger {
    fn live(&self) -> isize {
        // Read dropped first: a racing clone that bumps `created` between
        // the two loads can only make `live` look larger, never negative.
        let dropped = self.dropped.load(Ordering::SeqCst) as isize;
        let created = self.created.load(Ordering::SeqCst) as isize;
        created - dropped
    }
}

/// A payload whose clone and drop validate a magic word, so that a
/// use-after-free (clone of a poisoned value) or double free (drop of a
/// poisoned value) fails loudly, and whose drops are counted exactly.
struct Canary {
    magic: u64,
    value: u64,
    ledger: Arc<CanaryLedger>,
}

impl Canary {
    fn new(value: u64, ledger: &Arc<CanaryLedger>) -> Self {
        ledger.created.fetch_add(1, Ordering::SeqCst);
        Canary {
            magic: MAGIC,
            value,
            ledger: Arc::clone(ledger),
        }
    }

    fn check(&self) -> u64 {
        assert_eq!(
            self.magic, MAGIC,
            "use-after-free: observed a dropped canary (value {})",
            self.value
        );
        self.value
    }
}

impl Clone for Canary {
    fn clone(&self) -> Self {
        self.check();
        Canary::new(self.value, &self.ledger)
    }
}

impl Drop for Canary {
    fn drop(&mut self) {
        assert_eq!(
            self.magic, MAGIC,
            "double free: canary {} dropped twice",
            self.value
        );
        self.magic = POISON;
        self.ledger.dropped.fetch_add(1, Ordering::SeqCst);
    }
}

/// Drains deferred garbage until the ledger accounts for exactly
/// `expected_live` canaries, panicking if the backlog fails to converge.
fn quiesce_until_live(ledger: &CanaryLedger, expected_live: isize) {
    for _ in 0..64 {
        quiesce();
        if ledger.live() == expected_live {
            return;
        }
        std::thread::yield_now();
    }
    panic!(
        "leak: {} canaries live after quiescence, expected {expected_live} \
         (created {}, dropped {})",
        ledger.live(),
        ledger.created.load(Ordering::SeqCst),
        ledger.dropped.load(Ordering::SeqCst),
    );
}

// ------------------------------------------------- vendor-level Atomic churn

/// Writers swap-and-retire on a shared `epoch::Atomic` while readers
/// dereference the loaded pointer repeatedly under a *held* guard — the
/// rawest form of "a snapshot must outlive concurrent replacement".
#[test]
fn atomic_churn_with_held_guards() {
    let writers = stress_threads(2);
    let readers = stress_threads(2);
    let swaps_per_writer = 5_000 * stress_factor();

    let ledger = Arc::new(CanaryLedger::default());
    let slot = Arc::new(Atomic::new(Canary::new(0, &ledger)));
    let stop = Arc::new(AtomicBool::new(false));

    let writer_handles: Vec<_> = (0..writers)
        .map(|w| {
            let slot = Arc::clone(&slot);
            let ledger = Arc::clone(&ledger);
            std::thread::spawn(move || {
                for i in 0..swaps_per_writer {
                    let value = (w * swaps_per_writer + i) as u64;
                    let guard = epoch::pin();
                    let old = slot.swap(
                        Owned::new(Canary::new(value, &ledger)),
                        Ordering::AcqRel,
                        &guard,
                    );
                    // SAFETY: `old` was just swapped out; each swap returns
                    // a distinct previous pointer, so this thread is the
                    // unique retirer.
                    unsafe { guard.defer_destroy(old) };
                }
            })
        })
        .collect();

    let reader_handles: Vec<_> = (0..readers)
        .map(|_| {
            let slot = Arc::clone(&slot);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observations = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let guard = epoch::pin();
                    let shared = slot.load(Ordering::Acquire, &guard);
                    // Hold the snapshot across repeated validation: the
                    // pointee must stay alive for as long as the guard does,
                    // however much the writers churn meanwhile.
                    for _ in 0..32 {
                        // SAFETY: loaded under `guard`, non-null (the slot
                        // is never emptied), alive while `guard` pins.
                        let v = unsafe { shared.deref() };
                        v.check();
                        std::hint::spin_loop();
                    }
                    observations += 1;
                    drop(guard);
                }
                observations
            })
        })
        .collect();

    for h in writer_handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = reader_handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0, "readers must have validated snapshots");

    // Exactly one canary (the currently installed one) may remain live.
    quiesce_until_live(&ledger, 1);
    drop(slot);
    quiesce_until_live(&ledger, 0);
    assert_eq!(
        ledger.created.load(Ordering::SeqCst),
        ledger.dropped.load(Ordering::SeqCst),
        "every retired canary must be dropped exactly once"
    );
}

// -------------------------------------------------------- TVar-level churn

/// N writer threads churn boxed `TVar`s through transactions while M reader
/// threads take snapshots (both transactional and not); afterwards the
/// ledger must balance exactly: retired == dropped, zero early drops.
fn tvar_churn(backend: BackendKind, writers: usize, readers: usize, iters_per_writer: usize) {
    const VARS: usize = 8;
    let rt = TmRuntime::builder()
        .backend(backend)
        .wait_policy(WaitPolicy::Preemptive)
        .build();
    let ledger = Arc::new(CanaryLedger::default());
    let vars: Arc<Vec<TVar<Canary>>> = Arc::new(
        (0..VARS)
            .map(|i| TVar::new(Canary::new(i as u64, &ledger)))
            .collect(),
    );
    // Canary has drop glue, so it must take the epoch-reclaimed boxed path.
    assert!(!vars[0].uses_inline_storage());
    let stop = Arc::new(AtomicBool::new(false));

    let writer_handles: Vec<_> = (0..writers)
        .map(|w| {
            let rt = rt.clone();
            let vars = Arc::clone(&vars);
            let ledger = Arc::clone(&ledger);
            std::thread::spawn(move || {
                for i in 0..iters_per_writer {
                    let var = &vars[(w + i) % VARS];
                    let value = (w * iters_per_writer + i) as u64;
                    rt.run(|tx| tx.write(var, Canary::new(value, &ledger)));
                }
            })
        })
        .collect();

    let reader_handles: Vec<_> = (0..readers)
        .map(|r| {
            let rt = rt.clone();
            let vars = Arc::clone(&vars);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observations = 0u64;
                // A small window of held snapshots: clones whose canaries
                // must stay valid however long the reader keeps them.
                let mut held: Vec<Canary> = Vec::with_capacity(8);
                while !stop.load(Ordering::Relaxed) {
                    // Non-transactional single-variable snapshot.
                    let snap = vars[observations as usize % VARS].snapshot();
                    snap.check();
                    if held.len() == 8 {
                        held.remove(0);
                    }
                    held.push(snap);
                    // Transactional multi-variable snapshot.
                    if r % 2 == 0 {
                        let all: Vec<Canary> = rt.run(|tx| {
                            let mut out = Vec::with_capacity(VARS);
                            for v in vars.iter() {
                                out.push(tx.read(v)?);
                            }
                            Ok(out)
                        });
                        for c in &all {
                            c.check();
                        }
                    }
                    for c in &held {
                        c.check();
                    }
                    observations += 1;
                }
                observations
            })
        })
        .collect();

    for h in writer_handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = reader_handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0, "readers must have observed snapshots");

    // After quiescence exactly the VARS currently-installed canaries remain:
    // every replaced value was retired and dropped (no leak), and none of
    // the checks above ever saw a poisoned magic (no early drop).
    quiesce_until_live(&ledger, VARS as isize);
    drop(vars);
    quiesce_until_live(&ledger, 0);
    assert_eq!(
        ledger.created.load(Ordering::SeqCst),
        ledger.dropped.load(Ordering::SeqCst),
        "retired == dropped must hold exactly after final quiescence"
    );
}

#[test]
fn tvar_churn_swiss_4w_4r_10k() {
    tvar_churn(
        BackendKind::Swiss,
        stress_threads(4),
        stress_threads(4),
        10_000 * stress_factor(),
    );
}

#[test]
fn tvar_churn_tiny_4w_4r_10k() {
    tvar_churn(
        BackendKind::Tiny,
        stress_threads(4),
        stress_threads(4),
        10_000 * stress_factor(),
    );
}

// ------------------------------------------- exhaustive interleaving model

/// Abstract state of the epoch algorithm: two readers running
/// `pin → load → unpin` twice, one writer running
/// `swap → retire → try_advance` twice. Generations 0..=2 identify values
/// (generation 0 is installed initially).
///
/// `reachable[r]` is the stale-visibility set: the generations reader `r`'s
/// next load may return — the generation current at pin time plus anything
/// installed afterwards (pin publication is a sequentially consistent
/// barrier, so anything unlinked *before* the pin is invisible).
#[derive(Clone, PartialEq, Eq, Hash)]
struct ModelState {
    pcs: [usize; 3],
    epoch: u8,
    /// `Some(e)` = pinned at epoch `e`.
    pins: [Option<u8>; 2],
    /// Generation currently installed in the atomic.
    current: u8,
    /// Bitmask of generations reader `r` may still load.
    reachable: [u8; 2],
    /// Generation a reader has loaded and may still dereference.
    held: [Option<u8>; 2],
    /// Retired (generation, epoch-tag) pairs not yet freed.
    retired: Vec<(u8, u8)>,
    /// Bitmask of freed generations.
    freed: u8,
}

const READER_OPS: usize = 6; // (pin, load, unpin) × 2
const WRITER_OPS: usize = 6; // (swap, retire, try_advance) × 2

/// Explores every interleaving; returns an error description if any
/// schedule violates safety. `grace` is the number of epoch steps a retired
/// generation must age before collection (the algorithm uses 2).
fn explore(grace: u8) -> Result<usize, String> {
    let initial = ModelState {
        pcs: [0, 0, 0],
        epoch: 0,
        pins: [None, None],
        current: 0,
        reachable: [0, 0],
        held: [None, None],
        retired: Vec::new(),
        freed: 0,
    };
    let mut seen: HashSet<ModelState> = HashSet::new();
    let mut stack = vec![initial];
    let mut explored = 0usize;
    while let Some(state) = stack.pop() {
        if !seen.insert(state.clone()) {
            continue;
        }
        explored += 1;

        // Safety invariant (a): a generation held under a live pin is never
        // freed.
        for r in 0..2 {
            if let (Some(gen), Some(_)) = (state.held[r], state.pins[r]) {
                if state.freed & (1 << gen) != 0 {
                    return Err(format!(
                        "use-after-free: reader {r} holds freed generation {gen} \
                         (epoch {}, grace {grace})",
                        state.epoch
                    ));
                }
            }
        }

        let terminal =
            state.pcs[0] == READER_OPS && state.pcs[1] == READER_OPS && state.pcs[2] == WRITER_OPS;
        if terminal {
            // Liveness invariant (b): with everyone unpinned, a quiescing
            // sweep (advance + collect until stable) frees every retired
            // generation.
            let mut s = state.clone();
            for _ in 0..8 {
                s.epoch += 1;
                s.retired.retain(|&(gen, tag)| {
                    if tag + grace <= s.epoch {
                        s.freed |= 1 << gen;
                        false
                    } else {
                        true
                    }
                });
            }
            if !s.retired.is_empty() {
                return Err(format!(
                    "leak: generations {:?} never freed after quiescence",
                    s.retired
                ));
            }
            continue;
        }

        // Reader transitions.
        for r in 0..2 {
            let pc = state.pcs[r];
            if pc == READER_OPS {
                continue;
            }
            match pc % 3 {
                // pin: publish at the current epoch (the implementation's
                // publish-and-revalidate loop makes this atomic).
                0 => {
                    let mut next = state.clone();
                    next.pins[r] = Some(state.epoch);
                    next.reachable[r] = 1 << state.current;
                    next.pcs[r] += 1;
                    stack.push(next);
                }
                // load: nondeterministically observe any reachable
                // generation (current or stale-but-unlinked-after-pin).
                1 => {
                    for gen in 0..3u8 {
                        if state.reachable[r] & (1 << gen) == 0 {
                            continue;
                        }
                        if state.freed & (1 << gen) != 0 {
                            return Err(format!(
                                "stale load of freed generation {gen} by reader {r} \
                                 (grace {grace})"
                            ));
                        }
                        let mut next = state.clone();
                        next.held[r] = Some(gen);
                        next.pcs[r] += 1;
                        stack.push(next);
                    }
                }
                // unpin: the held value may no longer be dereferenced.
                _ => {
                    let mut next = state.clone();
                    next.pins[r] = None;
                    next.held[r] = None;
                    next.reachable[r] = 0;
                    next.pcs[r] += 1;
                    stack.push(next);
                }
            }
        }

        // Writer transitions.
        let wpc = state.pcs[2];
        if wpc < WRITER_OPS {
            match wpc % 3 {
                // swap: install the next generation; the previous one stays
                // reachable (stale) to currently pinned readers.
                0 => {
                    let mut next = state.clone();
                    next.current = state.current + 1;
                    for r in 0..2 {
                        if next.pins[r].is_some() {
                            next.reachable[r] |= 1 << next.current;
                        }
                    }
                    next.pcs[2] += 1;
                    stack.push(next);
                }
                // retire the just-unlinked generation, tagged with the
                // epoch current at (or after) unlink time.
                1 => {
                    let mut next = state.clone();
                    next.retired.push((state.current - 1, state.epoch));
                    next.pcs[2] += 1;
                    stack.push(next);
                }
                // try_advance + collect: advance only if every pinned
                // participant is pinned at the current epoch, then free
                // sufficiently aged retirees. The attempt is consumed
                // either way (matching `try_advance`).
                _ => {
                    let mut next = state.clone();
                    let all_current = next
                        .pins
                        .iter()
                        .flatten()
                        .all(|&pinned_at| pinned_at == next.epoch);
                    if all_current {
                        next.epoch += 1;
                    }
                    let epoch = next.epoch;
                    let mut freed = next.freed;
                    next.retired.retain(|&(gen, tag)| {
                        if tag + grace <= epoch {
                            freed |= 1 << gen;
                            false
                        } else {
                            true
                        }
                    });
                    next.freed = freed;
                    next.pcs[2] += 1;
                    stack.push(next);
                }
            }
        }
    }
    Ok(explored)
}

/// The shipped algorithm (two-epoch grace) is safe and leak-free across
/// every interleaving of two pinning readers and a retiring writer.
#[test]
fn model_two_epoch_grace_is_safe_across_all_interleavings() {
    let explored = explore(2).unwrap_or_else(|violation| panic!("{violation}"));
    // Sanity: the enumeration is genuinely exhaustive, not trivially small.
    assert!(
        explored > 1_000,
        "model explored only {explored} states — enumeration is broken"
    );
}

/// Meta-check that the model can actually detect unsafety: a one-epoch
/// grace period admits a use-after-free schedule (reader pinned at epoch e
/// still holds a value retired at e when the epoch reaches e+1).
#[test]
fn model_one_epoch_grace_is_unsafe() {
    let violation = explore(1).expect_err("one-epoch grace must admit a violation");
    assert!(
        violation.contains("freed generation") || violation.contains("use-after-free"),
        "unexpected violation kind: {violation}"
    );
}
