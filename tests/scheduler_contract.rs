//! The scheduler hook contract: every attempt is bracketed by
//! `before_start` and exactly one of `on_commit`/`on_abort`/`on_retry_wait`,
//! reads and writes are reported, and the access sets handed to the
//! completion hooks match what the transaction did.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use shrink::prelude::*;
use shrink::stm::{SchedCtx, VarId};

#[derive(Debug, Default)]
struct RecordingScheduler {
    starts: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
    retry_waits: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    /// Depth check: +1 on start, −1 on completion; must never exceed the
    /// number of threads or go negative.
    in_flight: AtomicU64,
    last_commit_sets: Mutex<(Vec<VarId>, Vec<VarId>)>,
    last_retry_sets: Mutex<(Vec<VarId>, Vec<VarId>)>,
}

impl TxScheduler for RecordingScheduler {
    fn before_start(&self, _ctx: &SchedCtx<'_>) {
        self.starts.fetch_add(1, Ordering::SeqCst);
        self.in_flight.fetch_add(1, Ordering::SeqCst);
    }

    fn on_read(&self, _ctx: &SchedCtx<'_>, _var: VarId) {
        self.reads.fetch_add(1, Ordering::SeqCst);
    }

    fn on_write(&self, _ctx: &SchedCtx<'_>, _var: VarId) {
        self.writes.fetch_add(1, Ordering::SeqCst);
    }

    fn on_commit(&self, _ctx: &SchedCtx<'_>, reads: &[VarId], writes: &[VarId]) {
        self.commits.fetch_add(1, Ordering::SeqCst);
        let prev = self.in_flight.fetch_sub(1, Ordering::SeqCst);
        assert!(prev > 0, "on_commit without matching before_start");
        *self.last_commit_sets.lock() = (reads.to_vec(), writes.to_vec());
    }

    fn on_abort(&self, _ctx: &SchedCtx<'_>, abort: &Abort, _reads: &[VarId], _writes: &[VarId]) {
        assert!(
            !abort.reason().is_retry(),
            "retry attempts must complete through on_retry_wait, not on_abort"
        );
        self.aborts.fetch_add(1, Ordering::SeqCst);
        let prev = self.in_flight.fetch_sub(1, Ordering::SeqCst);
        assert!(prev > 0, "on_abort without matching before_start");
    }

    fn on_retry_wait(&self, _ctx: &SchedCtx<'_>, reads: &[VarId], writes: &[VarId]) {
        self.retry_waits.fetch_add(1, Ordering::SeqCst);
        let prev = self.in_flight.fetch_sub(1, Ordering::SeqCst);
        assert!(prev > 0, "on_retry_wait without matching before_start");
        *self.last_retry_sets.lock() = (reads.to_vec(), writes.to_vec());
    }

    fn name(&self) -> &str {
        "recording"
    }
}

#[test]
fn hooks_bracket_every_attempt() {
    let recorder = Arc::new(RecordingScheduler::default());
    let rt = TmRuntime::builder().scheduler_arc(recorder.clone()).build();
    let v = TVar::new(0u64);

    // One clean commit.
    rt.run(|tx| tx.modify(&v, |x| x + 1));
    // One user restart (one abort + one commit).
    let mut first = true;
    rt.run(|tx| {
        if first {
            first = false;
            return tx.restart();
        }
        tx.read(&v).map(|_| ())
    });

    assert_eq!(recorder.starts.load(Ordering::SeqCst), 3);
    assert_eq!(recorder.commits.load(Ordering::SeqCst), 2);
    assert_eq!(recorder.aborts.load(Ordering::SeqCst), 1);
    assert_eq!(recorder.in_flight.load(Ordering::SeqCst), 0);
    // Runtime statistics agree with the hooks.
    let stats = rt.stats();
    assert_eq!(stats.commits, 2);
    assert_eq!(stats.aborts, 1);
}

#[test]
fn completion_hooks_see_the_access_sets() {
    let recorder = Arc::new(RecordingScheduler::default());
    let rt = TmRuntime::builder().scheduler_arc(recorder.clone()).build();
    let a = TVar::new(1u64);
    let b = TVar::new(2u64);
    rt.run(|tx| {
        let x = tx.read(&a)?;
        tx.write(&b, x + 1)
    });
    let (reads, writes) = recorder.last_commit_sets.lock().clone();
    assert_eq!(reads, vec![a.id()], "read set must list the read variable");
    assert_eq!(
        writes,
        vec![b.id()],
        "write set must list the written variable"
    );
}

#[test]
fn hook_counts_match_under_concurrency() {
    let recorder = Arc::new(RecordingScheduler::default());
    let rt = TmRuntime::builder().scheduler_arc(recorder.clone()).build();
    let v = TVar::new(0u64);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let rt = rt.clone();
            let v = v.clone();
            std::thread::spawn(move || {
                for _ in 0..250 {
                    rt.run(|tx| tx.modify(&v, |x| x + 1));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(v.snapshot(), 1000);
    let starts = recorder.starts.load(Ordering::SeqCst);
    let commits = recorder.commits.load(Ordering::SeqCst);
    let aborts = recorder.aborts.load(Ordering::SeqCst);
    assert_eq!(commits, 1000);
    assert_eq!(
        starts,
        commits + aborts,
        "every start completes exactly once"
    );
    assert_eq!(recorder.in_flight.load(Ordering::SeqCst), 0);
}

#[test]
fn retry_attempts_complete_through_on_retry_wait() {
    let recorder = Arc::new(RecordingScheduler::default());
    let rt = TmRuntime::builder()
        .retry_wait(std::time::Duration::from_millis(1))
        .scheduler_arc(recorder.clone())
        .build();
    let gate = TVar::new(0u64);
    let scratch = TVar::new(0u64);
    // Two bounded retry rounds, then give up: each round must fire
    // on_retry_wait (with the attempt's access sets), never on_abort.
    let result = rt.run_budgeted(2, |tx| {
        tx.write(&scratch, 7)?;
        if tx.read(&gate)? == 0 {
            return tx.retry();
        }
        Ok(())
    });
    assert!(result.is_err(), "the gate never opens");
    assert_eq!(recorder.retry_waits.load(Ordering::SeqCst), 2);
    assert_eq!(recorder.aborts.load(Ordering::SeqCst), 0);
    assert_eq!(recorder.starts.load(Ordering::SeqCst), 2);
    assert_eq!(recorder.in_flight.load(Ordering::SeqCst), 0);
    let (reads, writes) = recorder.last_retry_sets.lock().clone();
    assert_eq!(reads, vec![gate.id()], "retry hook sees the read set");
    assert_eq!(writes, vec![scratch.id()], "retry hook sees the write set");
    // Runtime statistics keep deliberate waits apart from aborts.
    let stats = rt.stats();
    assert_eq!(stats.retry_waits, 2);
    assert_eq!(stats.aborts, 0);
}
