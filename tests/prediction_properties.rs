//! Property-based tests for the prediction machinery and core data
//! structures: Bloom filters, the success-rate recurrence and the
//! transactional red-black tree against a model.

use proptest::prelude::*;

use shrink::prelude::*;
use shrink::sched::BloomFilter;
use shrink::stm::VarId;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bloom filters never report false negatives, regardless of geometry.
    #[test]
    fn bloom_has_no_false_negatives(
        bits in 64usize..4096,
        probes in 1u32..5,
        elements in proptest::collection::vec(any::<u64>(), 0..200)
    ) {
        let mut bf = BloomFilter::with_bits(bits, probes);
        for &e in &elements {
            bf.insert(VarId::from_u64(e));
        }
        for &e in &elements {
            prop_assert!(bf.contains(VarId::from_u64(e)));
        }
    }

    /// `insert_if_absent` agrees with `contains` before the insertion.
    #[test]
    fn insert_if_absent_is_test_and_set(
        elements in proptest::collection::vec(0u64..500, 1..300)
    ) {
        let mut bf = BloomFilter::with_bits(8192, 2);
        for &e in &elements {
            let var = VarId::from_u64(e);
            let was_absent = !bf.contains(var);
            prop_assert_eq!(bf.insert_if_absent(var), was_absent);
            prop_assert!(bf.contains(var));
        }
    }

    /// The success-rate recurrence stays in [0, 1] and crosses the
    /// activation threshold only after enough aborts.
    #[test]
    fn success_rate_stays_bounded(outcomes in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut rate = 1.0f64;
        for &committed in &outcomes {
            rate = if committed { (rate + 1.0) / 2.0 } else { rate / 2.0 };
            prop_assert!((0.0..=1.0).contains(&rate), "rate escaped: {rate}");
        }
        // A long streak of commits always recovers above threshold.
        for _ in 0..10 {
            rate = (rate + 1.0) / 2.0;
        }
        prop_assert!(rate > 0.5);
    }

    /// The transactional red-black tree stays equivalent to a BTreeMap
    /// model under arbitrary single-threaded operation sequences, and its
    /// structural invariants hold throughout.
    #[test]
    fn rbtree_matches_model(ops in proptest::collection::vec((0u8..3, 0u64..64), 1..120)) {
        let rt = TmRuntime::new();
        let tree = TxRbTree::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (i, &(op, key)) in ops.iter().enumerate() {
            match op {
                0 => {
                    let mine = rt.run(|tx| tree.insert(tx, key, key * 3));
                    prop_assert_eq!(mine, model.insert(key, key * 3));
                }
                1 => {
                    let mine = rt.run(|tx| tree.remove(tx, key));
                    prop_assert_eq!(mine, model.remove(&key));
                }
                _ => {
                    let mine = rt.run(|tx| tree.get(tx, key));
                    prop_assert_eq!(mine, model.get(&key).copied());
                }
            }
            if i % 16 == 0 {
                let count = rt
                    .run(|tx| tree.check_invariants(tx))
                    .map_err(|e| TestCaseError::fail(format!("invariant: {e}")))?;
                prop_assert_eq!(count, model.len());
            }
        }
        let keys = rt.run(|tx| tree.keys(tx));
        let expected: Vec<u64> = model.keys().copied().collect();
        prop_assert_eq!(keys, expected);
    }

    /// Transactions are all-or-nothing: a user restart rolls every write
    /// back.
    #[test]
    fn aborted_writes_never_leak(values in proptest::collection::vec(any::<u64>(), 1..20)) {
        let rt = TmRuntime::new();
        let vars: Vec<TVar<u64>> = values.iter().map(|&v| TVar::new(v)).collect();
        let mut first = true;
        rt.run(|tx| {
            if first {
                first = false;
                for var in &vars {
                    tx.write(var, 0xDEAD)?;
                }
                return tx.restart();
            }
            Ok(())
        });
        for (var, &original) in vars.iter().zip(&values) {
            prop_assert_eq!(var.snapshot(), original);
        }
    }
}
