//! Async transactions (`atomically_async`, DESIGN.md §12): the poll/retry
//! state machine driven *by hand* with a counting waker, so every edge is
//! deterministic:
//!
//! * **suspension** — a blocked `Tx::retry` registers exactly one parker
//!   and returns `Pending` without waking anyone;
//! * **wake delivery** — the committing writer delivers exactly one wake,
//!   and the next poll resumes and completes;
//! * **cancellation** — dropping a suspended future deregisters its parker
//!   (waiter count back to zero), leaves no stray wake for a later commit,
//!   and reports the abandonment to the scheduler through `on_reset`;
//! * **wake/drop race** — dropping after the wake fired but before the
//!   re-poll still cleans up;
//! * **selective cancellation** — cancelled and surviving futures on the
//!   same bucket don't disturb each other.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use shrink::prelude::*;
use shrink::stm::SchedCtx;

/// A waker that only counts. `Wake::wake` and `wake_by_ref` both land here,
/// so the count is exactly the number of wake deliveries the waitlist made.
#[derive(Debug, Default)]
struct CountingWaker {
    wakes: AtomicU64,
}

impl CountingWaker {
    fn count(&self) -> u64 {
        self.wakes.load(Ordering::SeqCst)
    }
}

impl Wake for CountingWaker {
    fn wake(self: Arc<Self>) {
        self.wakes.fetch_add(1, Ordering::SeqCst);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.wakes.fetch_add(1, Ordering::SeqCst);
    }
}

/// Scheduler double recording the hooks the async path must fire: the
/// retry-wait bracket around each suspension and the `on_reset` a
/// cancellation must deliver.
#[derive(Debug, Default)]
struct RecordingScheduler {
    starts: AtomicU64,
    commits: AtomicU64,
    retry_waits: AtomicU64,
    resets: AtomicU64,
}

impl TxScheduler for RecordingScheduler {
    fn before_start(&self, _ctx: &SchedCtx<'_>) {
        self.starts.fetch_add(1, Ordering::SeqCst);
    }

    fn on_commit(
        &self,
        _ctx: &SchedCtx<'_>,
        _reads: &[shrink::stm::VarId],
        _writes: &[shrink::stm::VarId],
    ) {
        self.commits.fetch_add(1, Ordering::SeqCst);
    }

    fn on_retry_wait(
        &self,
        _ctx: &SchedCtx<'_>,
        _reads: &[shrink::stm::VarId],
        _writes: &[shrink::stm::VarId],
    ) {
        self.retry_waits.fetch_add(1, Ordering::SeqCst);
    }

    fn on_reset(&self, _ctx: &SchedCtx<'_>) {
        self.resets.fetch_add(1, Ordering::SeqCst);
    }

    fn name(&self) -> &str {
        "recording-async"
    }
}

/// A future suspended on `gate == 0`, returning the gate value it resumed
/// to. Single TVar → single stripe → exactly one waitlist bucket, so the
/// runtime's registered-waiter count is exact.
fn gate_future(rt: &TmRuntime, gate: &TVar<u64>) -> impl std::future::Future<Output = u64> + Unpin {
    let gate = gate.clone();
    atomically_async(rt, move |tx| {
        let v = tx.read(&gate)?;
        if v == 0 {
            return tx.retry();
        }
        Ok(v)
    })
}

#[test]
fn suspended_future_registers_one_parker_and_resumes_on_commit() {
    let rt = TmRuntime::new();
    let gate = TVar::new(0u64);
    let waker_a = Arc::new(CountingWaker::default());
    let waker = Waker::from(Arc::clone(&waker_a));
    let mut cx = Context::from_waker(&waker);

    let mut fut = gate_future(&rt, &gate);
    assert!(matches!(Pin::new(&mut fut).poll(&mut cx), Poll::Pending));
    assert_eq!(rt.retry_waiters(), 1, "one registered parker");
    assert_eq!(waker_a.count(), 0, "suspension itself wakes nobody");

    // A spurious poll keeps waiting without consuming the registration.
    assert!(matches!(Pin::new(&mut fut).poll(&mut cx), Poll::Pending));
    assert_eq!(rt.retry_waiters(), 1);

    rt.run(|tx| tx.write(&gate, 7));
    assert_eq!(waker_a.count(), 1, "the commit delivers exactly one wake");
    assert!(matches!(Pin::new(&mut fut).poll(&mut cx), Poll::Ready(7)));
    assert_eq!(rt.retry_waiters(), 0, "resume deregisters the parker");

    let stats = rt.retry_stats();
    assert_eq!(stats.async_parks, 1);
    assert_eq!(stats.async_woken, 1);
    assert_eq!(stats.tasks_woken, 1);
    assert_eq!(stats.parked_waits, 0, "no thread ever parked");
}

#[test]
fn dropping_a_suspended_future_deregisters_and_never_wakes() {
    let recorder = Arc::new(RecordingScheduler::default());
    let rt = TmRuntime::builder().scheduler_arc(recorder.clone()).build();
    let gate = TVar::new(0u64);
    let waker_a = Arc::new(CountingWaker::default());
    let waker = Waker::from(Arc::clone(&waker_a));
    let mut cx = Context::from_waker(&waker);

    let mut fut = gate_future(&rt, &gate);
    assert!(matches!(Pin::new(&mut fut).poll(&mut cx), Poll::Pending));
    assert_eq!(rt.retry_waiters(), 1);
    assert_eq!(recorder.retry_waits.load(Ordering::SeqCst), 1);
    assert_eq!(recorder.resets.load(Ordering::SeqCst), 0);

    drop(fut);
    assert_eq!(
        rt.retry_waiters(),
        0,
        "cancellation removes the parker from every bucket"
    );
    assert_eq!(
        recorder.resets.load(Ordering::SeqCst),
        1,
        "the scheduler hears about the abandonment"
    );

    // A later commit to the watched stripe finds an empty bucket: no wake
    // round is issued at all and the dead task's waker never fires.
    let before = rt.retry_stats();
    rt.run(|tx| tx.write(&gate, 1));
    let after = rt.retry_stats();
    assert_eq!(
        after.wakes_issued, before.wakes_issued,
        "no stray wake round"
    );
    assert_eq!(after.tasks_woken, before.tasks_woken);
    assert_eq!(waker_a.count(), 0, "no wake reaches the dropped future");
}

#[test]
fn dropping_after_the_wake_but_before_the_repoll_still_cleans_up() {
    let rt = TmRuntime::new();
    let gate = TVar::new(0u64);
    let waker_a = Arc::new(CountingWaker::default());
    let waker = Waker::from(Arc::clone(&waker_a));
    let mut cx = Context::from_waker(&waker);

    let mut fut = gate_future(&rt, &gate);
    assert!(matches!(Pin::new(&mut fut).poll(&mut cx), Poll::Pending));
    rt.run(|tx| tx.write(&gate, 1));
    assert_eq!(waker_a.count(), 1, "wake delivered");

    // The wake only hands the task back to its executor; the parker stays
    // registered until the re-poll. Dropping in that window must still
    // deregister it.
    assert_eq!(rt.retry_waiters(), 1);
    drop(fut);
    assert_eq!(rt.retry_waiters(), 0);
}

#[test]
fn cancelled_and_surviving_futures_on_one_bucket_do_not_disturb_each_other() {
    let recorder = Arc::new(RecordingScheduler::default());
    let rt = TmRuntime::builder().scheduler_arc(recorder.clone()).build();
    let gate = TVar::new(0u64);

    let mut futures = Vec::new();
    let mut counters = Vec::new();
    for _ in 0..4 {
        let counter = Arc::new(CountingWaker::default());
        let waker = Waker::from(Arc::clone(&counter));
        let mut fut = gate_future(&rt, &gate);
        let mut cx = Context::from_waker(&waker);
        assert!(matches!(Pin::new(&mut fut).poll(&mut cx), Poll::Pending));
        futures.push(fut);
        counters.push(counter);
    }
    assert_eq!(rt.retry_waiters(), 4);

    // Cancel the last two of the four.
    drop(futures.pop().expect("four futures"));
    drop(futures.pop().expect("three futures"));
    assert_eq!(rt.retry_waiters(), 2);
    assert_eq!(recorder.resets.load(Ordering::SeqCst), 2);

    rt.run(|tx| tx.write(&gate, 9));
    assert_eq!(
        counters[2].count() + counters[3].count(),
        0,
        "cancelled futures stay silent"
    );
    assert_eq!(counters[0].count(), 1);
    assert_eq!(counters[1].count(), 1);

    for mut fut in futures {
        let waker = Waker::from(Arc::new(CountingWaker::default()));
        let mut cx = Context::from_waker(&waker);
        assert!(matches!(Pin::new(&mut fut).poll(&mut cx), Poll::Ready(9)));
    }
    assert_eq!(rt.retry_waiters(), 0);
}

#[test]
fn block_on_completes_an_unblocked_future_without_suspending() {
    let rt = TmRuntime::new();
    let v = TVar::new(10u64);
    let got = futures::executor::block_on(atomically_async(&rt, |tx| {
        tx.modify(&v, |x| x * 2)?;
        tx.read(&v)
    }));
    assert_eq!(got, 20);
    assert_eq!(v.snapshot(), 20);
    assert_eq!(rt.retry_stats().async_parks, 0);
}
