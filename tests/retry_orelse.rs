//! Correctness of the composable blocking API (`Tx::retry` / `Tx::or_else`,
//! DESIGN.md §9):
//!
//! * **checkpoint isolation** — writes made by a retried `or_else` branch
//!   never become visible, at any nesting depth, even when the branch
//!   overwrote values written before it (property-tested against a pure
//!   model);
//! * **read-set union** — a retry escaping both branches parks on the union
//!   of both read sets: a commit touching only the *second* branch's reads
//!   must wake it;
//! * **no lost wakeups** — producers and consumers hammering blocking
//!   queues and counters with a retry deadline far beyond the test length:
//!   a lost wakeup hangs the join (and trips the harness timeout) instead
//!   of flaking an assertion;
//! * **parked, not polling** — a blocked consumer's wait-op counters show
//!   parked futex waits and no transaction re-runs while nothing changed.
//!
//! Set `SHRINK_STRESS=1` (CI stress job) to raise thread counts and volume.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use shrink::prelude::*;

/// Stress scaling: 1 in normal runs, larger under `SHRINK_STRESS=1`.
fn stress_factor() -> usize {
    match std::env::var("SHRINK_STRESS") {
        Ok(v) if !v.is_empty() && v != "0" => 4,
        _ => 1,
    }
}

/// A runtime whose retry deadline is far beyond the test length: a lost
/// wakeup hangs instead of being papered over by deadline revalidation.
fn hang_on_lost_wakeup_runtime() -> TmRuntime {
    TmRuntime::builder()
        .retry_wait(Duration::from_secs(120))
        .build()
}

// ---------------------------------------------------------------------------
// Checkpoint isolation, property-tested against a pure model.
// ---------------------------------------------------------------------------

/// One `or_else` alternative in a right-associated chain. Each segment
/// writes some variables, then runs a *nested* `or_else` of its own (whose
/// first branch may retry), then either commits or retries the whole
/// segment.
#[derive(Clone, Debug)]
struct Segment {
    writes: Vec<(usize, u64)>,
    inner_first: Vec<(usize, u64)>,
    inner_first_retries: bool,
    inner_second: Vec<(usize, u64)>,
    retries: bool,
}

fn segment_strategy(vars: usize) -> impl Strategy<Value = Segment> {
    let writes = proptest::collection::vec((0..vars, 0u64..1000), 0..4);
    let inner1 = proptest::collection::vec((0..vars, 0u64..1000), 0..3);
    let inner2 = proptest::collection::vec((0..vars, 0u64..1000), 0..3);
    (writes, inner1, any::<bool>(), inner2, any::<bool>()).prop_map(
        |(writes, inner_first, inner_first_retries, inner_second, retries)| Segment {
            writes,
            inner_first,
            inner_first_retries,
            inner_second,
            retries,
        },
    )
}

/// Runs one segment transactionally: its writes, then its nested or_else.
fn run_segment(tx: &mut Tx<'_>, vars: &[TVar<u64>], seg: &Segment) -> TxResult<()> {
    for &(v, val) in &seg.writes {
        tx.write(&vars[v], val)?;
    }
    tx.or_else(
        |tx| {
            for &(v, val) in &seg.inner_first {
                tx.write(&vars[v], val)?;
            }
            if seg.inner_first_retries {
                tx.retry()
            } else {
                Ok(())
            }
        },
        |tx| {
            for &(v, val) in &seg.inner_second {
                tx.write(&vars[v], val)?;
            }
            Ok(())
        },
    )
}

/// Runs the right-associated `or_else` chain; returns the winning index.
fn run_chain(tx: &mut Tx<'_>, vars: &[TVar<u64>], segs: &[Segment]) -> TxResult<usize> {
    let (first, rest) = segs.split_first().expect("chain is non-empty");
    if rest.is_empty() {
        run_segment(tx, vars, first)?;
        return Ok(0);
    }
    tx.or_else(
        |tx| {
            run_segment(tx, vars, first)?;
            if first.retries {
                tx.retry()
            } else {
                Ok(0)
            }
        },
        |tx| run_chain(tx, vars, rest).map(|i| i + 1),
    )
}

/// Applies one segment to the pure model (a map of pending writes).
fn model_segment(state: &mut HashMap<usize, u64>, seg: &Segment) {
    for &(v, val) in &seg.writes {
        state.insert(v, val);
    }
    // The nested or_else: the first branch's writes count only if it does
    // not retry; otherwise the second branch runs on the pre-branch state.
    if seg.inner_first_retries {
        for &(v, val) in &seg.inner_second {
            state.insert(v, val);
        }
    } else {
        for &(v, val) in &seg.inner_first {
            state.insert(v, val);
        }
    }
}

/// The model outcome of the whole chain: the first segment that commits
/// wins; everything a retried segment did is discarded.
fn model_chain(segs: &[Segment]) -> (HashMap<usize, u64>, usize) {
    for (i, seg) in segs.iter().enumerate() {
        let last = i == segs.len() - 1;
        if !seg.retries || last {
            let mut state = HashMap::new();
            model_segment(&mut state, seg);
            return (state, i);
        }
    }
    unreachable!("loop returns at the last segment");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Writes in a retried branch never leak — at either nesting level —
    /// and overwrites of pre-branch writes are rolled back exactly.
    #[test]
    fn retried_branch_writes_never_leak(
        prefix in proptest::collection::vec((0usize..6, 0u64..1000), 0..4),
        segs in proptest::collection::vec(segment_strategy(6), 1..5),
    ) {
        let mut segs = segs;
        // The final alternative must commit, or the whole transaction
        // blocks (that path is exercised by the wakeup tests below).
        segs.last_mut().expect("non-empty").retries = false;

        let rt = TmRuntime::new();
        let vars: Vec<TVar<u64>> = (0..6).map(|_| TVar::new(u64::MAX)).collect();
        let winner = rt.run(|tx| {
            for &(v, val) in &prefix {
                tx.write(&vars[v], val)?;
            }
            run_chain(tx, &vars, &segs)
        });

        // Model: prefix writes, then the winning segment on top.
        let mut expected: HashMap<usize, u64> = HashMap::new();
        for &(v, val) in &prefix {
            expected.insert(v, val);
        }
        let (winner_state, expected_winner) = model_chain(&segs);
        for (v, val) in winner_state {
            expected.insert(v, val);
        }
        prop_assert_eq!(winner, expected_winner);
        for (i, var) in vars.iter().enumerate() {
            let expected_val = expected.get(&i).copied().unwrap_or(u64::MAX);
            prop_assert!(
                var.snapshot() == expected_val,
                "var {} diverged from the model (winner {}): {} != {}",
                i,
                winner,
                var.snapshot(),
                expected_val
            );
        }
        prop_assert!(rt.stats().aborts == 0, "or_else handles retries inline");
    }

    /// try_push/try_pop round-trips preserve queue contents exactly (the
    /// or_else-composed non-blocking API against a VecDeque model).
    #[test]
    fn queue_matches_model_under_try_ops(
        ops in proptest::collection::vec((any::<bool>(), 0u64..100), 1..60),
        capacity in 1usize..6,
    ) {
        let rt = TmRuntime::new();
        let q: TxQueue<u64> = TxQueue::new(capacity);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        for (is_push, val) in ops {
            if is_push {
                let accepted = atomically(&rt, |tx| q.try_push(tx, val));
                prop_assert_eq!(accepted, model.len() < capacity);
                if accepted {
                    model.push_back(val);
                }
            } else {
                let got = atomically(&rt, |tx| q.try_pop(tx));
                prop_assert_eq!(got, model.pop_front());
            }
            prop_assert_eq!(atomically(&rt, |tx| q.len(tx)), model.len());
        }
        prop_assert!(rt.stats().retry_waits == 0, "try ops never park");
    }
}

// ---------------------------------------------------------------------------
// Read-set union and wakeup semantics.
// ---------------------------------------------------------------------------

/// A retry escaping both `or_else` branches parks on the union of both
/// read sets: writing only the variable the *second* branch read must wake
/// the transaction.
#[test]
fn double_retry_parks_on_the_union_of_both_read_sets() {
    let rt = hang_on_lost_wakeup_runtime();
    let a: TVar<u64> = TVar::new(0);
    let b: TVar<u64> = TVar::new(0);
    let blocked = {
        let rt = rt.clone();
        let a = a.clone();
        let b = b.clone();
        std::thread::spawn(move || {
            rt.run(|tx| {
                tx.or_else(
                    |tx| {
                        if tx.read(&a)? == 0 {
                            return tx.retry();
                        }
                        Ok("first")
                    },
                    |tx| {
                        if tx.read(&b)? == 0 {
                            return tx.retry();
                        }
                        Ok("second")
                    },
                )
            })
        })
    };
    while rt.retry_stats().parked_waits == 0 {
        std::thread::yield_now();
    }
    // Wake via the SECOND branch's variable only.
    rt.run(|tx| tx.write(&b, 1));
    assert_eq!(blocked.join().unwrap(), "second");
    assert!(rt.retry_stats().woken >= 1, "{:?}", rt.retry_stats());
}

/// While nothing changes, a parked consumer re-runs nothing: no aborts, no
/// extra attempts, exactly one parked wait-op — the "0 yield-polls" proof.
#[test]
fn a_blocked_consumer_is_parked_not_polling() {
    let rt = hang_on_lost_wakeup_runtime();
    let v: TVar<u64> = TVar::new(0);
    let consumer = {
        let rt = rt.clone();
        let v = v.clone();
        std::thread::spawn(move || {
            rt.run(|tx| {
                let x = tx.read(&v)?;
                if x == 0 {
                    return tx.retry();
                }
                Ok(x)
            })
        })
    };
    while rt.retry_stats().parked_waits == 0 {
        std::thread::yield_now();
    }
    // Give a poller every chance to spin; a parked thread does nothing.
    std::thread::sleep(Duration::from_millis(100));
    let stats = rt.stats();
    let waits = rt.retry_stats();
    assert_eq!(stats.retry_waits, 1, "exactly one retry round entered");
    assert_eq!(stats.aborts, 0, "no conflict aborts while parked");
    assert_eq!(waits.parked_waits, 1, "exactly one parked wait-op");
    assert_eq!(waits.timed_out, 0, "the deadline is far away");
    assert_eq!(
        stats.commits, 0,
        "a parked consumer commits nothing while blocked"
    );
    rt.run(|tx| tx.write(&v, 3));
    assert_eq!(consumer.join().unwrap(), 3);
    assert!(rt.retry_stats().woken >= 1);
}

// ---------------------------------------------------------------------------
// Lost-wakeup hammers (the per-stripe mirror of tests/eventcount.rs).
// ---------------------------------------------------------------------------

/// Counter hammer: consumers ride a TVar from 0 to the target with
/// effectively unbounded retry waits while producers race increments. A
/// lost per-stripe wakeup leaves a consumer parked forever and hangs the
/// join.
#[test]
fn counter_hammer_loses_no_wakeups() {
    let producers = 2 * stress_factor();
    let consumers = 2 * stress_factor();
    let increments_per_producer = 200 * stress_factor() as u64;
    let target = producers as u64 * increments_per_producer;

    let rt = hang_on_lost_wakeup_runtime();
    let counter: TVar<u64> = TVar::new(0);

    let consumer_handles: Vec<_> = (0..consumers)
        .map(|_| {
            let rt = rt.clone();
            let counter = counter.clone();
            std::thread::spawn(move || {
                let mut seen = 0u64;
                let mut wakes = 0u64;
                while seen != target {
                    // Block until the counter moves past what we saw.
                    let now = rt.run(|tx| {
                        let v = tx.read(&counter)?;
                        if v <= seen {
                            return tx.retry();
                        }
                        Ok(v)
                    });
                    assert!(now > seen, "blocking read must return progress");
                    seen = now;
                    wakes += 1;
                }
                wakes
            })
        })
        .collect();

    let producer_handles: Vec<_> = (0..producers)
        .map(|_| {
            let rt = rt.clone();
            let counter = counter.clone();
            std::thread::spawn(move || {
                for i in 0..increments_per_producer {
                    rt.run(|tx| tx.modify(&counter, |v| v + 1));
                    if i % 64 == 0 {
                        // Let consumers actually park now and then, so the
                        // hammer exercises the sleep path and not only the
                        // value-already-moved fast path.
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();

    for h in producer_handles {
        h.join().unwrap();
    }
    assert_eq!(counter.snapshot(), target, "every increment must land");
    for h in consumer_handles {
        let wakes = h.join().unwrap();
        assert!(wakes > 0, "each consumer must have blocked at least once");
    }
    let waits = rt.retry_stats();
    assert!(
        waits.parked_waits > 0,
        "hammer never parked — too small to test anything: {waits:?}"
    );
    assert_eq!(
        waits.timed_out, 0,
        "no wait may hit the 120 s deadline: a timeout here is a lost wakeup"
    );
}

/// Queue hammer: both blocking directions at once — producers park on a
/// full queue, consumers on an empty one, through a capacity far smaller
/// than the volume. Exact conservation of count and sum at the end.
#[test]
fn queue_hammer_conserves_items_and_loses_no_wakeups() {
    let producers = 2 * stress_factor();
    let consumers = 2 * stress_factor();
    let items_per_producer = 250 * stress_factor() as u64;
    let total = producers as u64 * items_per_producer;
    assert_eq!(total % consumers as u64, 0, "test setup: even split");
    let items_per_consumer = total / consumers as u64;

    let rt = hang_on_lost_wakeup_runtime();
    let q: Arc<TxQueue<u64>> = Arc::new(TxQueue::new(4));

    let consumer_handles: Vec<_> = (0..consumers)
        .map(|_| {
            let rt = rt.clone();
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut sum = 0u64;
                for _ in 0..items_per_consumer {
                    sum += rt.run(|tx| q.pop(tx));
                }
                sum
            })
        })
        .collect();
    let producer_handles: Vec<_> = (0..producers)
        .map(|p| {
            let rt = rt.clone();
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut sum = 0u64;
                for i in 0..items_per_producer {
                    let v = (p as u64) << 32 | i;
                    rt.run(|tx| q.push(tx, v));
                    sum += v;
                }
                sum
            })
        })
        .collect();

    let pushed: u64 = producer_handles
        .into_iter()
        .map(|h| h.join().unwrap())
        .sum();
    let popped: u64 = consumer_handles
        .into_iter()
        .map(|h| h.join().unwrap())
        .sum();
    assert_eq!(pushed, popped, "every item exactly once, by value sum");
    assert!(
        q.drain_snapshot().is_empty(),
        "exact counts drain the queue"
    );
    let waits = rt.retry_stats();
    assert!(
        waits.parked_waits > 0,
        "hammer must actually block: {waits:?}"
    );
    assert_eq!(waits.timed_out, 0, "a deadline hit here is a lost wakeup");
}

/// The composable API under a real scheduler: the pipeline shape (pop from
/// one queue, push to the next, one transaction) with Shrink installed,
/// exercising `on_retry_wait` release paths under contention.
#[test]
fn pipeline_hops_work_under_the_shrink_scheduler() {
    let hops = 3usize;
    let items = 300 * stress_factor() as u64;
    let rt = TmRuntime::builder()
        .retry_wait(Duration::from_secs(120))
        .scheduler(Shrink::new(ShrinkConfig::default()))
        .build();
    let queues: Vec<Arc<TxQueue<u64>>> = (0..hops + 1).map(|_| Arc::new(TxQueue::new(8))).collect();

    let movers: Vec<_> = (0..hops)
        .map(|h| {
            let rt = rt.clone();
            let from = Arc::clone(&queues[h]);
            let to = Arc::clone(&queues[h + 1]);
            std::thread::spawn(move || {
                for _ in 0..items {
                    rt.run(|tx| {
                        let v = from.pop(tx)?;
                        to.push(tx, v + 1)
                    });
                }
            })
        })
        .collect();

    let sink = {
        let rt = rt.clone();
        let last = Arc::clone(&queues[hops]);
        std::thread::spawn(move || {
            let mut sum = 0u64;
            for _ in 0..items {
                sum += rt.run(|tx| last.pop(tx));
            }
            sum
        })
    };

    for i in 0..items {
        rt.run(|tx| queues[0].push(tx, i));
    }
    for m in movers {
        m.join().unwrap();
    }
    let sum = sink.join().unwrap();
    let expected: u64 = (0..items).map(|i| i + hops as u64).sum();
    assert_eq!(sum, expected, "each item gains exactly one per hop");
    assert_eq!(
        rt.retry_stats().timed_out,
        0,
        "no lost wakeups under Shrink"
    );
}

// ---------------------------------------------------------------------------
// Sync/async interop: thread-parked and future-suspended waiters share the
// same per-stripe buckets, so one commit must wake both kinds (DESIGN.md §12).
// ---------------------------------------------------------------------------

/// Deterministic mixed wake: a thread parked in `Tx::retry` and a suspended
/// `TxFuture` watch the same stripe. The committer waits until *both* are
/// registered (single TVar → one bucket → the runtime's waiter count is
/// exact), then commits once; the thread must return and the future must
/// receive its waker.
#[test]
fn one_commit_wakes_a_parked_thread_and_a_suspended_future() {
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::task::{Context, Poll, Wake, Waker};

    #[derive(Default)]
    struct CountingWaker(AtomicU64);
    impl Wake for CountingWaker {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
        fn wake_by_ref(self: &Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    let rt = hang_on_lost_wakeup_runtime();
    let gate: TVar<u64> = TVar::new(0);

    // Future side, suspended by hand.
    let counter = Arc::new(CountingWaker::default());
    let waker = Waker::from(Arc::clone(&counter));
    let mut cx = Context::from_waker(&waker);
    let mut fut = {
        let gate = gate.clone();
        atomically_async(&rt, move |tx| {
            let v = tx.read(&gate)?;
            if v == 0 {
                return tx.retry();
            }
            Ok(v)
        })
    };
    assert!(matches!(
        Pin::new(&mut fut).poll(&mut cx),
        std::task::Poll::Pending
    ));
    assert_eq!(rt.retry_waiters(), 1, "future registered");

    // Thread side.
    let parked = {
        let rt = rt.clone();
        let gate = gate.clone();
        std::thread::spawn(move || {
            rt.run(|tx| {
                let v = tx.read(&gate)?;
                if v == 0 {
                    return tx.retry();
                }
                Ok(v)
            })
        })
    };
    while rt.retry_waiters() < 2 {
        std::thread::yield_now();
    }

    // One commit, both waiters.
    rt.run(|tx| tx.write(&gate, 5));
    assert_eq!(parked.join().unwrap(), 5, "the thread waiter resumed");
    assert_eq!(counter.0.load(Ordering::SeqCst), 1, "the future was woken");
    assert!(matches!(Pin::new(&mut fut).poll(&mut cx), Poll::Ready(5)));

    let stats = rt.retry_stats();
    assert!(stats.threads_woken >= 1, "futex wake delivered: {stats:?}");
    assert!(stats.tasks_woken >= 1, "waker delivered: {stats:?}");
    assert_eq!(rt.retry_waiters(), 0, "both registrations cleaned up");
}

/// The counter lost-wakeup hammer with a mixed consumer population: half
/// the consumers are OS threads parked in `Tx::retry`, half are futures on
/// the vendored thread-pool executor, all on the same stripe buckets. The
/// thread half hangs on its 120 s deadline if a wake is lost; the future
/// half (wake-driven only, no deadline) hangs the final channel recv.
#[test]
fn mixed_thread_and_future_consumers_lose_no_wakeups() {
    let producers = 2 * stress_factor();
    let thread_consumers = 2 * stress_factor();
    let future_consumers = 2 * stress_factor();
    let increments_per_producer = 150 * stress_factor() as u64;
    let target = producers as u64 * increments_per_producer;

    let rt = hang_on_lost_wakeup_runtime();
    let counter: TVar<u64> = TVar::new(0);
    let pool = futures::executor::ThreadPool::builder()
        .pool_size(2)
        .name_prefix("interop-")
        .create()
        .expect("spawn executor");

    let thread_handles: Vec<_> = (0..thread_consumers)
        .map(|_| {
            let rt = rt.clone();
            let counter = counter.clone();
            std::thread::spawn(move || {
                let mut seen = 0u64;
                while seen != target {
                    let now = rt.run(|tx| {
                        let v = tx.read(&counter)?;
                        if v <= seen {
                            return tx.retry();
                        }
                        Ok(v)
                    });
                    assert!(now > seen);
                    seen = now;
                }
            })
        })
        .collect();

    let (done_tx, done_rx) = std::sync::mpsc::channel::<u64>();
    for _ in 0..future_consumers {
        let rt = rt.clone();
        let counter = counter.clone();
        let done = done_tx.clone();
        pool.spawn_ok(async move {
            let mut seen = 0u64;
            let mut wakes = 0u64;
            while seen != target {
                let counter = counter.clone();
                let floor = seen;
                let now = atomically_async(&rt, move |tx| {
                    let v = tx.read(&counter)?;
                    if v <= floor {
                        return tx.retry();
                    }
                    Ok(v)
                })
                .await;
                assert!(now > seen);
                seen = now;
                wakes += 1;
            }
            done.send(wakes).expect("main thread waits on the channel");
        });
    }
    drop(done_tx);

    let producer_handles: Vec<_> = (0..producers)
        .map(|_| {
            let rt = rt.clone();
            let counter = counter.clone();
            std::thread::spawn(move || {
                for i in 0..increments_per_producer {
                    rt.run(|tx| tx.modify(&counter, |v| v + 1));
                    if i % 64 == 0 {
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();

    for h in producer_handles {
        h.join().unwrap();
    }
    assert_eq!(counter.snapshot(), target);
    for h in thread_handles {
        h.join().unwrap();
    }
    for _ in 0..future_consumers {
        let wakes = done_rx.recv().expect("every async consumer finishes");
        assert!(wakes > 0, "each async consumer must have blocked");
    }

    let stats = rt.retry_stats();
    assert!(stats.parked_waits > 0, "threads parked: {stats:?}");
    assert!(stats.async_parks > 0, "futures suspended: {stats:?}");
    assert_eq!(stats.timed_out, 0, "a deadline hit is a lost wakeup");
    assert_eq!(rt.retry_waiters(), 0, "waitlist fully drained: {stats:?}");
}
