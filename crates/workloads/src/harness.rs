//! Time-boxed throughput measurement.
//!
//! All figures in the paper report *committed transactions per second* for a
//! fixed wall-clock window at each thread count. The harness reproduces that
//! methodology: spawn `threads` workers that repeatedly execute a workload
//! step, let them run for a warmup window, snapshot the runtime counters,
//! run the measurement window, snapshot again, and report the delta.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use shrink_stm::TmRuntime;

/// A benchmark workload: shared state plus a per-step operation mix.
///
/// Implementations own their data (usually `TVar` graphs) and perform one
/// or more transactions per [`step`](TxWorkload::step) call.
pub trait TxWorkload: Send + Sync + 'static {
    /// Executes one unit of work on behalf of worker `worker`.
    fn step(&self, rt: &TmRuntime, worker: usize, rng: &mut StdRng);

    /// Audits workload invariants after a run.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    fn verify(&self, rt: &TmRuntime) -> Result<(), String> {
        let _ = rt;
        Ok(())
    }

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Parameters of one measured cell.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Measurement window.
    pub duration: Duration,
    /// Warmup window excluded from the measurement.
    pub warmup: Duration,
    /// Base RNG seed; worker `i` uses `seed + i`.
    pub seed: u64,
}

impl RunConfig {
    /// A config with the given thread count and window, 20 % warmup.
    pub fn new(threads: usize, duration: Duration) -> Self {
        RunConfig {
            threads,
            duration,
            warmup: duration / 5,
            seed: 0xC0FFEE,
        }
    }
}

/// Result of one measured cell.
#[derive(Clone, Copy, Debug)]
pub struct RunOutcome {
    /// Committed transactions during the measurement window.
    pub commits: u64,
    /// Aborted attempts during the measurement window.
    pub aborts: u64,
    /// Actual measured wall time.
    pub elapsed: Duration,
    /// Workload steps completed during the measurement window.
    pub steps: u64,
}

impl RunOutcome {
    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        self.commits as f64 / self.elapsed.as_secs_f64()
    }

    /// Aborts per commit.
    pub fn abort_ratio(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.aborts as f64 / self.commits as f64
        }
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} tx/s ({} commits, {} aborts in {:?})",
            self.throughput(),
            self.commits,
            self.aborts,
            self.elapsed
        )
    }
}

/// Runs `workload` on `rt` with the given configuration and returns the
/// measured throughput.
///
/// # Panics
///
/// Panics if a worker thread panics or if `threads` is zero.
pub fn run_throughput(
    rt: &TmRuntime,
    workload: &Arc<dyn TxWorkload>,
    config: &RunConfig,
) -> RunOutcome {
    assert!(config.threads > 0, "at least one worker thread required");
    let stop = Arc::new(AtomicBool::new(false));
    let measuring = Arc::new(AtomicBool::new(false));
    let steps = Arc::new(std::sync::atomic::AtomicU64::new(0));

    let workers: Vec<_> = (0..config.threads)
        .map(|worker| {
            let rt = rt.clone();
            let workload = Arc::clone(workload);
            let stop = Arc::clone(&stop);
            let measuring = Arc::clone(&measuring);
            let steps = Arc::clone(&steps);
            let seed = config.seed + worker as u64;
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                while !stop.load(Ordering::Relaxed) {
                    workload.step(&rt, worker, &mut rng);
                    if measuring.load(Ordering::Relaxed) {
                        steps.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();

    std::thread::sleep(config.warmup);
    let before = rt.stats();
    measuring.store(true, Ordering::Relaxed);
    let started = Instant::now();
    std::thread::sleep(config.duration);
    let elapsed = started.elapsed();
    let after = rt.stats();
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("worker thread panicked");
    }

    let delta = after.since(&before);
    RunOutcome {
        commits: delta.commits,
        aborts: delta.aborts,
        elapsed,
        steps: steps.load(Ordering::Relaxed),
    }
}

/// Runs the workload for a fixed number of steps per worker instead of a
/// time window — used by correctness tests that need deterministic volume.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn run_fixed_steps(
    rt: &TmRuntime,
    workload: &Arc<dyn TxWorkload>,
    threads: usize,
    steps_per_worker: u64,
    seed: u64,
) {
    let workers: Vec<_> = (0..threads)
        .map(|worker| {
            let rt = rt.clone();
            let workload = Arc::clone(workload);
            let seed = seed + worker as u64;
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                for _ in 0..steps_per_worker {
                    workload.step(&rt, worker, &mut rng);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker thread panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrink_stm::{TVar, TxResult};

    #[derive(Debug)]
    struct CounterWorkload {
        counter: TVar<u64>,
    }

    impl TxWorkload for CounterWorkload {
        fn step(&self, rt: &TmRuntime, _worker: usize, _rng: &mut StdRng) {
            rt.run(|tx| -> TxResult<()> { tx.modify(&self.counter, |v| v + 1) });
        }

        fn verify(&self, rt: &TmRuntime) -> Result<(), String> {
            let commits = rt.stats().commits;
            let value = self.counter.snapshot();
            if value == commits {
                Ok(())
            } else {
                Err(format!("counter {value} != commits {commits}"))
            }
        }

        fn name(&self) -> &'static str {
            "counter"
        }
    }

    #[test]
    fn throughput_run_counts_commits() {
        let rt = TmRuntime::new();
        let workload: Arc<dyn TxWorkload> = Arc::new(CounterWorkload {
            counter: TVar::new(0),
        });
        let config = RunConfig {
            threads: 2,
            duration: Duration::from_millis(50),
            warmup: Duration::from_millis(10),
            seed: 1,
        };
        let outcome = run_throughput(&rt, &workload, &config);
        assert!(outcome.commits > 0, "two workers must commit something");
        assert!(outcome.throughput() > 0.0);
        workload.verify(&rt).unwrap();
    }

    #[test]
    fn fixed_steps_run_is_deterministic_in_volume() {
        let rt = TmRuntime::new();
        let counter = TVar::new(0u64);
        let workload: Arc<dyn TxWorkload> = Arc::new(CounterWorkload {
            counter: counter.clone(),
        });
        run_fixed_steps(&rt, &workload, 3, 100, 7);
        assert_eq!(counter.snapshot(), 300);
    }
}
