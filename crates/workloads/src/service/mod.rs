//! A sharded transactional KV/booking service under open-loop traffic.
//!
//! Every other workload in this crate is *paper-shaped*: a fixed set of
//! threads in a closed loop, measured by throughput alone. This module is
//! the production-shaped scenario the ROADMAP calls for — the regime where
//! the paper says prevention beats curing is **overload**, and overload
//! only exists under an *open* arrival process, where requests keep
//! arriving whether or not the server keeps up and the cost shows first in
//! tail latency.
//!
//! Two pieces:
//!
//! * [`store`] — a [`ShardedStore`]: one `TmRuntime` per shard, keys
//!   partitioned round-robin, a typed cross-shard transfer protocol with
//!   **exact** conservation on audited global snapshots (escrow accounting
//!   and a freeze-gated audit; see the module docs for the impossibility
//!   argument that forces this design), and a cross-shard booking flow
//!   built on the cross-runtime [`retry_select`] registry;
//! * [`traffic`] — an open-loop generator: thousands of simulated clients
//!   with Zipfian key popularity and bursty exponential inter-arrival
//!   produce a pre-computed arrival schedule; a bounded worker pool serves
//!   it, and each request's latency is measured from its *scheduled
//!   arrival* (not service start), so queueing delay under overload is in
//!   the number — the open-loop discipline that makes p99 honest.
//!
//! `bench_service` drives this against all five schedulers at multiples of
//! calibrated capacity and writes the p50/p99/p999 ledger
//! `BENCH_service.json`; `tests/service.rs` hammers the conservation audit
//! mid-flight across the scheduler × wait-policy matrix.
//!
//! [`ShardedStore`]: store::ShardedStore
//! [`retry_select`]: shrink_stm::retry_select

pub mod store;
pub mod traffic;

pub use store::{BookingOutcome, ShardedStore, TransferEntry};
pub use traffic::{
    build_schedule, run_open_loop, Request, RequestKind, RequestMix, TrafficConfig, TrafficReport,
};
