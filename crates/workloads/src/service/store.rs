//! Sharded transactional KV/booking store with exact cross-shard conservation.
//!
//! One [`TmRuntime`] per shard; keys are partitioned round-robin
//! (`shard = key % n_shards`). Intra-shard operations are single ordinary
//! transactions. Cross-shard money movement cannot be one transaction —
//! that is precisely what [`TmError::ForeignTVar`] refuses — so it runs as
//! a typed **four-phase escrow protocol**, each phase a single-shard
//! transaction:
//!
//! 1. **prepare** @ source: debit the account and append a
//!    [`TransferEntry`] to the shard's `outbox`;
//! 2. **apply** @ destination: credit the account and record the transfer
//!    id in the shard's `applied` set;
//! 3. **ack** @ source: remove the outbox entry;
//! 4. **gc** @ destination: forget the applied id.
//!
//! The escrow invariant holds **exactly** in every inter-phase state:
//!
//! ```text
//! Σ balances  +  Σ { e.amount : e ∈ outbox(s), e.id ∉ applied(e.dst) }  ==  TOTAL
//! ```
//!
//! (after `prepare`, the debit is balanced by the outbox term; after
//! `apply`, the credit lands but `applied` cancels the outbox term; `ack`
//! and `gc` remove both sides of an already-cancelled pair.)
//!
//! The audit still cannot just read shard snapshots one by one: a transfer
//! whose `ack`+`gc` complete *between* the audit's visit to the source and
//! its visit to the destination would be double-counted (outbox entry seen
//! at the source, `applied` id already gone at the destination). So
//! [`ShardedStore::audit_conservation`] is a distributed snapshot: it
//! first commits a `frozen` bump on every shard, then snapshots, then
//! unfreezes. Every protocol phase reads `frozen` and retries while it is
//! set, so TL2 commit validation guarantees no phase commits between any
//! two snapshot reads — a phase that read `frozen == 0` before the freeze
//! committed fails validation and re-runs (then parks on the `frozen`
//! stripe until the audit ends).
//!
//! The booking flow reserves capacity on **two** shards. The first unit
//! comes from whichever shard frees up first via the cross-runtime
//! [`retry_select_deadline`]; the second leg waits with the remaining
//! deadline and **compensates** (releases the first hold) on timeout, so
//! bookings never deadlock and per-shard `capacity + held == CAP` holds in
//! every state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use shrink_stm::{retry_select_deadline, SelectArm, TVar, TmError, TmRuntime};

/// An in-flight cross-shard transfer recorded in a source shard's outbox.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransferEntry {
    /// Process-unique transfer id (allocated from a global counter).
    pub id: u64,
    /// Destination shard index.
    pub dst_shard: usize,
    /// Destination account index within the destination shard.
    pub dst_account: usize,
    /// Amount being moved (debited at prepare, credited at apply).
    pub amount: i64,
}

/// Outcome of a two-shard booking attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BookingOutcome {
    /// Both capacity units were reserved (and released at checkout).
    Confirmed,
    /// The deadline passed before both units could be held; any partial
    /// hold was compensated.
    Declined,
}

/// One account: a balance moved only by transfers, and a metadata word
/// bumped by updates — so read-modify-write contention on hot keys never
/// disturbs conservation.
#[derive(Debug)]
struct Account {
    balance: TVar<i64>,
    meta: TVar<u64>,
}

/// One shard: a private runtime plus its slice of the keyspace.
#[derive(Debug)]
struct Shard {
    rt: TmRuntime,
    accounts: Vec<Account>,
    /// Transfers prepared here and not yet acked.
    outbox: TVar<Vec<TransferEntry>>,
    /// Ids applied here and not yet garbage-collected.
    applied: TVar<Vec<u64>>,
    /// Audit gate: >0 while a distributed snapshot is in progress. Every
    /// transfer phase reads this first and retries while set.
    frozen: TVar<i32>,
    /// Remaining booking capacity; `capacity + held == CAP` always.
    capacity: TVar<i64>,
    held: TVar<i64>,
    confirmed: TVar<u64>,
}

/// A sharded transactional store: `n` independent [`TmRuntime`]s, each
/// owning `accounts_per_shard` accounts and a booking capacity pool.
///
/// See the [module docs](self) for the cross-shard transfer protocol and
/// the freeze-gated conservation audit.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<Shard>,
    accounts_per_shard: usize,
    initial_balance: i64,
    booking_capacity: i64,
    next_transfer_id: AtomicU64,
    /// Spin iterations executed *inside* each transactional body — the
    /// request's service work. Widens the conflict window, so aborted
    /// attempts waste real work (the paper's overload cost).
    tx_work: u32,
}

impl ShardedStore {
    /// Builds a store with `n_shards` shards of `accounts_per_shard`
    /// accounts, every balance starting at `initial_balance` and every
    /// shard holding `booking_capacity` booking units. `make_runtime` is
    /// called once per shard so callers choose backend, wait policy and
    /// scheduler (this crate stays scheduler-agnostic).
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` or `accounts_per_shard` is zero.
    pub fn new(
        n_shards: usize,
        accounts_per_shard: usize,
        initial_balance: i64,
        booking_capacity: i64,
        mut make_runtime: impl FnMut(usize) -> TmRuntime,
    ) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        assert!(
            accounts_per_shard > 0,
            "need at least one account per shard"
        );
        let shards = (0..n_shards)
            .map(|s| Shard {
                rt: make_runtime(s),
                accounts: (0..accounts_per_shard)
                    .map(|_| Account {
                        balance: TVar::new(initial_balance),
                        meta: TVar::new(0),
                    })
                    .collect(),
                outbox: TVar::new(Vec::new()),
                applied: TVar::new(Vec::new()),
                frozen: TVar::new(0),
                capacity: TVar::new(booking_capacity),
                held: TVar::new(0),
                confirmed: TVar::new(0),
            })
            .collect();
        ShardedStore {
            shards,
            accounts_per_shard,
            initial_balance,
            booking_capacity,
            next_transfer_id: AtomicU64::new(1),
            tx_work: 0,
        }
    }

    /// Sets the per-transaction service work (spin iterations inside each
    /// body; 0 = bare protocol). Call before sharing the store.
    pub fn set_tx_work(&mut self, iters: u32) {
        self.tx_work = iters;
    }

    /// Burns `iters` loop iterations — the simulated per-request service
    /// work. Placed inside transaction bodies so an aborted attempt
    /// re-pays it, exactly like recomputing a response.
    fn spin(iters: u32) {
        for i in 0..iters {
            std::hint::black_box(i);
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of keys (`n_shards * accounts_per_shard`).
    pub fn n_keys(&self) -> usize {
        self.shards.len() * self.accounts_per_shard
    }

    /// The invariant total the conservation audit must reproduce.
    pub fn expected_total(&self) -> i64 {
        self.n_keys() as i64 * self.initial_balance
    }

    /// Maps a key to `(shard, account)` — round-robin partitioning.
    pub fn locate(&self, key: usize) -> (usize, usize) {
        let shard = key % self.shards.len();
        let account = (key / self.shards.len()) % self.accounts_per_shard;
        (shard, account)
    }

    /// The runtime owning `shard` (for tests and diagnostics).
    pub fn runtime(&self, shard: usize) -> &TmRuntime {
        &self.shards[shard].rt
    }

    /// Reads a key's `(balance, meta)` with a lock-free read-only
    /// transaction on its shard.
    pub fn read_key(&self, key: usize) -> (i64, u64) {
        let (s, a) = self.locate(key);
        let acct = &self.shards[s].accounts[a];
        let work = self.tx_work / 2;
        self.shards[s].rt.read_only(|tx| {
            let b = tx.read(&acct.balance)?;
            let m = tx.read(&acct.meta)?;
            Self::spin(work);
            Ok((b, m))
        })
    }

    /// Bumps a key's metadata word (a read-modify-write on the hot
    /// stripe — the update-contention workload). Conservation-neutral.
    pub fn update_key(&self, key: usize) {
        let (s, a) = self.locate(key);
        let acct = &self.shards[s].accounts[a];
        let work = self.tx_work;
        self.shards[s].rt.run(|tx| {
            let m = tx.read(&acct.meta)?;
            Self::spin(work); // conflict window: hot stripe held open
            tx.write(&acct.meta, m.wrapping_add(1))
        });
    }

    /// Moves `amount` from `from_key` to `to_key`. Same-shard transfers
    /// are one transaction; cross-shard transfers run the four-phase
    /// escrow protocol described in the [module docs](self). Balances may
    /// go negative (no overdraft gate) so transfers never block on funds.
    pub fn transfer(&self, from_key: usize, to_key: usize, amount: i64) {
        let (sf, af) = self.locate(from_key);
        let (st, at) = self.locate(to_key);
        if sf == st {
            if af == at {
                return; // self-transfer: debit and credit cancel exactly
            }
            let shard = &self.shards[sf];
            let from = &shard.accounts[af];
            let to = &shard.accounts[at];
            let work = self.tx_work;
            shard.rt.run(|tx| {
                tx.modify(&from.balance, |b| b - amount)?;
                Self::spin(work);
                tx.modify(&to.balance, |b| b + amount)
            });
            return;
        }
        let id = self.next_transfer_id.fetch_add(1, Ordering::Relaxed);
        let src = &self.shards[sf];
        let dst = &self.shards[st];
        let entry = TransferEntry {
            id,
            dst_shard: st,
            dst_account: at,
            amount,
        };
        let work = self.tx_work / 4;
        // Phase 1 — prepare @ source: debit into escrow.
        src.rt.run(|tx| {
            if tx.read(&src.frozen)? > 0 {
                return tx.retry();
            }
            tx.modify(&src.accounts[af].balance, |b| b - amount)?;
            Self::spin(work);
            tx.modify(&src.outbox, |mut ob| {
                ob.push(entry.clone());
                ob
            })
        });
        // Phase 2 — apply @ destination: credit and mark applied.
        dst.rt.run(|tx| {
            if tx.read(&dst.frozen)? > 0 {
                return tx.retry();
            }
            tx.modify(&dst.accounts[at].balance, |b| b + amount)?;
            Self::spin(work);
            tx.modify(&dst.applied, |mut ap| {
                ap.push(id);
                ap
            })
        });
        // Phase 3 — ack @ source: retire the outbox entry.
        src.rt.run(|tx| {
            if tx.read(&src.frozen)? > 0 {
                return tx.retry();
            }
            Self::spin(work);
            tx.modify(&src.outbox, |mut ob| {
                ob.retain(|e| e.id != id);
                ob
            })
        });
        // Phase 4 — gc @ destination: forget the applied id.
        dst.rt.run(|tx| {
            if tx.read(&dst.frozen)? > 0 {
                return tx.retry();
            }
            Self::spin(work);
            tx.modify(&dst.applied, |mut ap| {
                ap.retain(|&i| i != id);
                ap
            })
        });
    }

    /// Runs only the first `phases` phases (1..=4) of a cross-shard
    /// transfer and returns the transfer id — a deliberately stranded
    /// protocol state for invariant tests. `from_key` and `to_key` must
    /// map to different shards.
    ///
    /// # Panics
    ///
    /// Panics if the keys share a shard or `phases` is not in `1..=4`.
    pub fn transfer_phases(
        &self,
        from_key: usize,
        to_key: usize,
        amount: i64,
        phases: usize,
    ) -> u64 {
        assert!((1..=4).contains(&phases), "phases must be 1..=4");
        let (sf, af) = self.locate(from_key);
        let (st, at) = self.locate(to_key);
        assert_ne!(sf, st, "transfer_phases needs two distinct shards");
        let id = self.next_transfer_id.fetch_add(1, Ordering::Relaxed);
        let src = &self.shards[sf];
        let dst = &self.shards[st];
        let entry = TransferEntry {
            id,
            dst_shard: st,
            dst_account: at,
            amount,
        };
        src.rt.run(|tx| {
            if tx.read(&src.frozen)? > 0 {
                return tx.retry();
            }
            tx.modify(&src.accounts[af].balance, |b| b - amount)?;
            tx.modify(&src.outbox, |mut ob| {
                ob.push(entry.clone());
                ob
            })
        });
        if phases >= 2 {
            dst.rt.run(|tx| {
                if tx.read(&dst.frozen)? > 0 {
                    return tx.retry();
                }
                tx.modify(&dst.accounts[at].balance, |b| b + amount)?;
                tx.modify(&dst.applied, |mut ap| {
                    ap.push(id);
                    ap
                })
            });
        }
        if phases >= 3 {
            src.rt.run(|tx| {
                if tx.read(&src.frozen)? > 0 {
                    return tx.retry();
                }
                tx.modify(&src.outbox, |mut ob| {
                    ob.retain(|e| e.id != id);
                    ob
                })
            });
        }
        if phases >= 4 {
            dst.rt.run(|tx| {
                if tx.read(&dst.frozen)? > 0 {
                    return tx.retry();
                }
                tx.modify(&dst.applied, |mut ap| {
                    ap.retain(|&i| i != id);
                    ap
                })
            });
        }
        id
    }

    /// Takes a **distributed snapshot** and returns the global escrow sum
    /// (Σ balances + un-applied in-flight transfers). Equals
    /// [`expected_total`](Self::expected_total) in every reachable state.
    ///
    /// Freeze-gated: commits a `frozen` bump on every shard before
    /// snapshotting and unfreezes after, so no transfer phase can commit
    /// between any two snapshot reads (TL2 validation fails any phase that
    /// read `frozen == 0` before the freeze committed). Safe to run
    /// mid-flight from any thread, including concurrently with transfers.
    pub fn audit_conservation(&self) -> i64 {
        for s in &self.shards {
            s.rt.run(|tx| tx.modify(&s.frozen, |f| f + 1));
        }
        let snaps: Vec<(i64, Vec<TransferEntry>, Vec<u64>)> = self
            .shards
            .iter()
            .map(|s| {
                s.rt.read_only(|tx| {
                    let mut sum = 0i64;
                    for a in &s.accounts {
                        sum += tx.read(&a.balance)?;
                    }
                    Ok((sum, tx.read(&s.outbox)?, tx.read(&s.applied)?))
                })
            })
            .collect();
        let mut total: i64 = snaps.iter().map(|(b, _, _)| *b).sum();
        for (_, outbox, _) in &snaps {
            for e in outbox {
                if !snaps[e.dst_shard].2.contains(&e.id) {
                    total += e.amount;
                }
            }
        }
        for s in self.shards.iter().rev() {
            s.rt.run(|tx| tx.modify(&s.frozen, |f| f - 1));
        }
        total
    }

    /// Sum of all outbox lengths — approximate in-flight transfer count
    /// (unfrozen, diagnostics only).
    pub fn pending_transfers(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.rt.read_only(|tx| Ok(tx.read(&s.outbox)?.len())))
            .sum()
    }

    /// Books one capacity unit on **each** of the two shards owning
    /// `first_key` and `second_key` (a two-resource itinerary — flight
    /// shard + hotel shard). The first unit comes from whichever shard
    /// frees up first ([`retry_select_deadline`] parks one parker across
    /// both runtimes' waitlists); the second leg uses the remaining
    /// deadline and compensates on timeout. Holds are released at
    /// checkout, so capacity is conserved and `Confirmed` means both units
    /// were simultaneously held.
    pub fn book(&self, first_key: usize, second_key: usize, deadline: Instant) -> BookingOutcome {
        let (s1, _) = self.locate(first_key);
        let (s2, _) = self.locate(second_key);
        if s1 == s2 {
            return self.book_same_shard(s1, deadline);
        }
        let winner = {
            let mut arms = [
                SelectArm::new(&self.shards[s1].rt, Self::reserve(&self.shards[s1])),
                SelectArm::new(&self.shards[s2].rt, Self::reserve(&self.shards[s2])),
            ];
            match retry_select_deadline(&mut arms, deadline) {
                Ok((idx, ())) => idx,
                Err(TmError::RetryTimeout { .. }) => return BookingOutcome::Declined,
                Err(err) => panic!("booking select failed: {err}"),
            }
        };
        let (won, other) = if winner == 0 { (s1, s2) } else { (s2, s1) };
        let second = self.shards[other]
            .rt
            .run_with_deadline(deadline, Self::reserve(&self.shards[other]));
        match second {
            Ok(()) => {
                self.release(won, 1);
                self.release(other, 1);
                self.shards[won]
                    .rt
                    .run(|tx| tx.modify(&self.shards[won].confirmed, |c| c + 1));
                BookingOutcome::Confirmed
            }
            Err(TmError::RetryTimeout { .. }) => {
                // Compensate: give back the first hold so capacity is
                // conserved and other bookers stop waiting on us.
                self.release(won, 1);
                BookingOutcome::Declined
            }
            Err(err) => panic!("booking second leg failed: {err}"),
        }
    }

    /// Non-blocking booking probe on one shard: reserves and immediately
    /// releases a unit if capacity is free, declines otherwise
    /// (`run_or_else` — the `or_else` branch fires instead of parking).
    pub fn try_book_one(&self, key: usize) -> BookingOutcome {
        let (s, _) = self.locate(key);
        let shard = &self.shards[s];
        let got = shard.rt.run_or_else(
            |tx| {
                let cap = tx.read(&shard.capacity)?;
                if cap == 0 {
                    return tx.retry();
                }
                tx.write(&shard.capacity, cap - 1)?;
                tx.modify(&shard.held, |h| h + 1)?;
                Ok(true)
            },
            |_tx| Ok(false),
        );
        if got {
            self.release(s, 1);
            shard.rt.run(|tx| tx.modify(&shard.confirmed, |c| c + 1));
            BookingOutcome::Confirmed
        } else {
            BookingOutcome::Declined
        }
    }

    fn book_same_shard(&self, s: usize, deadline: Instant) -> BookingOutcome {
        let shard = &self.shards[s];
        let got = shard.rt.run_with_deadline(deadline, |tx| {
            let cap = tx.read(&shard.capacity)?;
            if cap < 2 {
                return tx.retry();
            }
            tx.write(&shard.capacity, cap - 2)?;
            tx.modify(&shard.held, |h| h + 2)
        });
        match got {
            Ok(()) => {
                self.release(s, 2);
                shard.rt.run(|tx| tx.modify(&shard.confirmed, |c| c + 1));
                BookingOutcome::Confirmed
            }
            Err(TmError::RetryTimeout { .. }) => BookingOutcome::Declined,
            Err(err) => panic!("same-shard booking failed: {err}"),
        }
    }

    /// The one-unit reserve body used by both booking legs: park while
    /// the shard is out of capacity, otherwise move one unit to `held`.
    fn reserve(
        shard: &Shard,
    ) -> impl FnMut(&mut shrink_stm::Tx<'_>) -> shrink_stm::TxResult<()> + '_ {
        move |tx| {
            let cap = tx.read(&shard.capacity)?;
            if cap == 0 {
                return tx.retry();
            }
            tx.write(&shard.capacity, cap - 1)?;
            tx.modify(&shard.held, |h| h + 1)
        }
    }

    fn release(&self, s: usize, n: i64) {
        let shard = &self.shards[s];
        shard.rt.run(|tx| {
            tx.modify(&shard.capacity, |c| c + n)?;
            tx.modify(&shard.held, |h| h - n)
        });
    }

    /// Moves every remaining capacity unit on every shard into `held` and
    /// returns how many units were taken — a test fixture for forcing
    /// subsequent bookings to park.
    pub fn hold_all_capacity(&self) -> i64 {
        let mut taken = 0;
        for s in &self.shards {
            taken += s.rt.run(|tx| {
                let cap = tx.read(&s.capacity)?;
                tx.write(&s.capacity, 0)?;
                tx.modify(&s.held, |h| h + cap)?;
                Ok(cap)
            });
        }
        taken
    }

    /// Returns every held unit to capacity (undoes
    /// [`hold_all_capacity`](Self::hold_all_capacity)).
    pub fn release_all_holds(&self) {
        for s in &self.shards {
            s.rt.run(|tx| {
                let held = tx.read(&s.held)?;
                tx.write(&s.held, 0)?;
                tx.modify(&s.capacity, |c| c + held)
            });
        }
    }

    /// Asserts the per-shard booking invariant `capacity + held == CAP`
    /// on every shard and returns the total confirmed-booking count.
    pub fn audit_bookings(&self) -> u64 {
        let mut confirmed = 0;
        for (i, s) in self.shards.iter().enumerate() {
            let (cap, held, done) = s.rt.read_only(|tx| {
                Ok((
                    tx.read(&s.capacity)?,
                    tx.read(&s.held)?,
                    tx.read(&s.confirmed)?,
                ))
            });
            assert_eq!(
                cap + held,
                self.booking_capacity,
                "shard {i}: capacity {cap} + held {held} != CAP {}",
                self.booking_capacity
            );
            confirmed += done;
        }
        confirmed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize};
    use std::sync::Arc;
    use std::time::Duration;

    fn store(shards: usize, accounts: usize) -> ShardedStore {
        ShardedStore::new(shards, accounts, 100, 2, |_| TmRuntime::new())
    }

    #[test]
    fn partitioning_is_round_robin_and_total_matches() {
        let st = store(4, 8);
        assert_eq!(st.n_keys(), 32);
        assert_eq!(st.expected_total(), 3200);
        for key in 0..st.n_keys() {
            let (s, a) = st.locate(key);
            assert_eq!(s, key % 4);
            assert_eq!(a, key / 4);
        }
        assert_eq!(st.read_key(5), (100, 0));
        st.update_key(5);
        assert_eq!(st.read_key(5), (100, 1));
        assert_eq!(st.audit_conservation(), 3200);
    }

    #[test]
    fn same_shard_transfer_is_one_transaction() {
        let st = store(2, 4);
        st.transfer(0, 2, 30); // keys 0 and 2 both live on shard 0
        assert_eq!(st.read_key(0).0, 70);
        assert_eq!(st.read_key(2).0, 130);
        st.transfer(0, 0, 10); // self-transfer is a no-op on the balance
        assert_eq!(st.read_key(0).0, 70);
        assert_eq!(st.audit_conservation(), st.expected_total());
    }

    #[test]
    fn escrow_invariant_holds_in_every_inter_phase_state() {
        for phases in 1..=4 {
            let st = store(3, 2);
            st.transfer_phases(0, 1, 25, phases);
            assert_eq!(
                st.audit_conservation(),
                st.expected_total(),
                "conservation broke after {phases} phase(s)"
            );
            let (src_bal, dst_bal) = (st.read_key(0).0, st.read_key(1).0);
            assert_eq!(src_bal, 75, "debit lands at phase 1");
            if phases >= 2 {
                assert_eq!(dst_bal, 125, "credit lands at phase 2");
            } else {
                assert_eq!(dst_bal, 100, "credit still in escrow");
            }
            assert_eq!(st.pending_transfers(), usize::from(phases < 3));
        }
    }

    #[test]
    fn audit_is_exact_under_concurrent_cross_shard_transfers() {
        let st = Arc::new(store(4, 4));
        let stop = Arc::new(AtomicBool::new(false));
        let progress = Arc::new(AtomicUsize::new(0));
        let movers: Vec<_> = (0..4)
            .map(|t| {
                let st = Arc::clone(&st);
                let stop = Arc::clone(&stop);
                let progress = Arc::clone(&progress);
                std::thread::spawn(move || {
                    let mut i = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let from = (t * 5 + i) % st.n_keys();
                        let to = (from + 1 + t) % st.n_keys();
                        st.transfer(from, to, 3);
                        progress.fetch_add(1, Ordering::Relaxed);
                        i += 1;
                    }
                    i
                })
            })
            .collect();
        // Audit mid-flight from this thread until the movers have pushed
        // enough transfers through that audits demonstrably interleaved
        // with live protocol phases.
        let mut audits = 0usize;
        while progress.load(Ordering::Relaxed) < 200 || audits < 20 {
            assert_eq!(st.audit_conservation(), st.expected_total());
            audits += 1;
        }
        stop.store(true, Ordering::Relaxed);
        let moved: usize = movers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(moved > 0, "movers made no progress");
        assert_eq!(st.audit_conservation(), st.expected_total());
        assert_eq!(st.pending_transfers(), 0);
    }

    #[test]
    fn booking_two_shards_confirms_and_conserves_capacity() {
        let st = store(2, 2);
        let deadline = Instant::now() + Duration::from_secs(2);
        assert_eq!(st.book(0, 1, deadline), BookingOutcome::Confirmed);
        assert_eq!(st.book(0, 3, deadline), BookingOutcome::Confirmed); // same pair of shards
        assert_eq!(st.book(0, 2, deadline), BookingOutcome::Confirmed); // same shard twice
        assert_eq!(st.audit_bookings(), 3);
        assert_eq!(st.try_book_one(1), BookingOutcome::Confirmed);
        assert_eq!(st.audit_bookings(), 4);
    }

    #[test]
    fn booking_declines_on_deadline_and_compensates() {
        let st = Arc::new(store(2, 2));
        // Exhaust shard 1's capacity with raw holds so the second leg of a
        // (shard 0, shard 1) booking can never complete.
        let shard1 = &st.shards[1];
        shard1.rt.run(|tx| {
            let cap = tx.read(&shard1.capacity)?;
            tx.write(&shard1.capacity, 0)?;
            tx.modify(&shard1.held, |h| h + cap)
        });
        let deadline = Instant::now() + Duration::from_millis(100);
        assert_eq!(st.book(0, 1, deadline), BookingOutcome::Declined);
        // Compensation returned the shard-0 hold.
        let shard0 = &st.shards[0];
        let (cap0, held0) = shard0
            .rt
            .read_only(|tx| Ok((tx.read(&shard0.capacity)?, tx.read(&shard0.held)?)));
        assert_eq!((cap0, held0), (2, 0));
        assert_eq!(st.try_book_one(1), BookingOutcome::Declined);
        // Give capacity back and confirm the path recovers.
        shard1.rt.run(|tx| {
            let held = tx.read(&shard1.held)?;
            tx.write(&shard1.held, 0)?;
            tx.modify(&shard1.capacity, |c| c + held)
        });
        let deadline = Instant::now() + Duration::from_secs(2);
        assert_eq!(st.book(0, 1, deadline), BookingOutcome::Confirmed);
        assert_eq!(st.audit_bookings(), 1);
    }

    #[test]
    fn parked_booking_wakes_when_capacity_frees() {
        let st = Arc::new(ShardedStore::new(2, 2, 100, 1, |_| TmRuntime::new()));
        // Hold the only unit on both shards so a booker must park.
        let hold = |s: usize| {
            let shard = &st.shards[s];
            shard.rt.run(|tx| {
                tx.write(&shard.capacity, 0)?;
                tx.modify(&shard.held, |h| h + 1)
            });
        };
        hold(0);
        hold(1);
        let booker = {
            let st = Arc::clone(&st);
            std::thread::spawn(move || st.book(0, 1, Instant::now() + Duration::from_secs(10)))
        };
        // Wait until the booker is parked across both runtimes, then free
        // capacity one shard at a time.
        while st.runtime(0).retry_waiters() == 0 || st.runtime(1).retry_waiters() == 0 {
            std::thread::yield_now();
        }
        for s in [0, 1] {
            let shard = &st.shards[s];
            shard.rt.run(|tx| {
                tx.write(&shard.capacity, 1)?;
                tx.modify(&shard.held, |h| h - 1)
            });
        }
        assert_eq!(booker.join().unwrap(), BookingOutcome::Confirmed);
        assert_eq!(st.audit_bookings(), 1);
    }
}
