//! Open-loop traffic generation for the sharded service.
//!
//! The closed-loop harnesses elsewhere in this crate measure *throughput*:
//! each thread issues its next operation the instant the previous one
//! finishes, so the system is never asked for more than it can deliver and
//! latency degenerates to service time. Production traffic is not like
//! that — requests arrive on their own clock. This module models it the
//! standard way:
//!
//! * **arrival schedule** — [`build_schedule`] pre-computes every
//!   request's arrival offset before any work starts: exponential
//!   inter-arrival times ([`rand::distr::Exp`]) whose rate is modulated by
//!   a square-wave burst factor, keys drawn from a Zipfian popularity
//!   distribution ([`rand::distr::Zipf`]) over thousands of simulated
//!   clients;
//! * **open-loop service** — [`run_open_loop`] lets a bounded worker pool
//!   serve the schedule. A worker sleeps until a request's scheduled
//!   arrival, executes it, and records `completion − scheduled_arrival` as
//!   its latency. When the store falls behind, requests queue and the
//!   *queueing delay lands in the latency number* — which is exactly how
//!   overload shows up as a p99 explosion in production, and the effect a
//!   closed loop structurally cannot measure (coordinated omission).
//!
//! Determinism: the schedule (arrival times, request kinds, keys) is a
//! pure function of [`TrafficConfig::seed`]; only service interleaving
//! varies run to run.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use rand::distr::{Distribution, Exp, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::store::{BookingOutcome, ShardedStore};

/// What a scheduled request asks the store to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Lock-free read of one key.
    Read,
    /// Read-modify-write on one hot key's metadata word.
    Update,
    /// Cross-shard (or same-shard) money transfer.
    Transfer,
    /// Two-shard booking with a deadline.
    Booking,
}

impl RequestKind {
    /// All kinds, in ledger order.
    pub const ALL: [RequestKind; 4] = [
        RequestKind::Read,
        RequestKind::Update,
        RequestKind::Transfer,
        RequestKind::Booking,
    ];

    /// Stable lowercase label for ledgers and reports.
    pub fn label(self) -> &'static str {
        match self {
            RequestKind::Read => "read",
            RequestKind::Update => "update",
            RequestKind::Transfer => "transfer",
            RequestKind::Booking => "booking",
        }
    }
}

/// Request-class mix in percent; must sum to 100.
#[derive(Clone, Copy, Debug)]
pub struct RequestMix {
    /// Percent of requests that are reads.
    pub read_pct: u32,
    /// Percent of requests that are metadata updates.
    pub update_pct: u32,
    /// Percent of requests that are transfers.
    pub transfer_pct: u32,
    /// Percent of requests that are bookings.
    pub booking_pct: u32,
}

impl RequestMix {
    /// A service-shaped default: 60% reads, 25% updates, 10% transfers,
    /// 5% bookings.
    pub const DEFAULT: RequestMix = RequestMix {
        read_pct: 60,
        update_pct: 25,
        transfer_pct: 10,
        booking_pct: 5,
    };

    fn pick(&self, roll: u32) -> RequestKind {
        debug_assert_eq!(
            self.read_pct + self.update_pct + self.transfer_pct + self.booking_pct,
            100,
            "request mix must sum to 100"
        );
        if roll < self.read_pct {
            RequestKind::Read
        } else if roll < self.read_pct + self.update_pct {
            RequestKind::Update
        } else if roll < self.read_pct + self.update_pct + self.transfer_pct {
            RequestKind::Transfer
        } else {
            RequestKind::Booking
        }
    }
}

/// Shape of the offered load.
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// Number of simulated clients; each request is attributed to one.
    pub clients: usize,
    /// Worker threads serving the schedule (the service's capacity knob).
    pub workers: usize,
    /// Total requests in the schedule.
    pub requests: usize,
    /// Mean offered arrival rate, requests per second.
    pub offered_rps: f64,
    /// Zipf exponent for key popularity (0 = uniform).
    pub zipf_s: f64,
    /// Burst amplitude in `[0, 1)`: arrival rate alternates between
    /// `rps * (1 + b)` and `rps * (1 - b)` every [`Self::burst_period`].
    pub burstiness: f64,
    /// Half-period of the burst square wave (schedule time).
    pub burst_period: Duration,
    /// Request-class mix.
    pub mix: RequestMix,
    /// Per-booking deadline (relative, applied at service time).
    pub booking_deadline: Duration,
    /// Seed for the whole schedule.
    pub seed: u64,
}

impl TrafficConfig {
    /// A small smoke-test configuration.
    pub fn smoke() -> Self {
        TrafficConfig {
            clients: 64,
            workers: 4,
            requests: 400,
            offered_rps: 4000.0,
            zipf_s: 0.9,
            burstiness: 0.5,
            burst_period: Duration::from_millis(20),
            mix: RequestMix::DEFAULT,
            booking_deadline: Duration::from_millis(50),
            seed: 42,
        }
    }
}

/// One pre-scheduled request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Offset from the run's start at which this request arrives.
    pub arrival: Duration,
    /// Simulated client issuing the request.
    pub client: usize,
    /// Operation class.
    pub kind: RequestKind,
    /// Primary key.
    pub a: usize,
    /// Secondary key (transfer destination / second booking resource).
    pub b: usize,
}

/// What an open-loop run observed.
#[derive(Debug, Default)]
pub struct TrafficReport {
    /// `(kind, latency_ns)` per completed request, where latency is
    /// completion time minus **scheduled arrival** — queueing included.
    pub latencies: Vec<(RequestKind, u64)>,
    /// Bookings that confirmed.
    pub confirmed_bookings: u64,
    /// Bookings that hit their deadline and declined.
    pub declined_bookings: u64,
    /// Wall-clock time from start to last completion.
    pub wall: Duration,
}

impl TrafficReport {
    /// Latencies (ns) for one request class.
    pub fn latencies_for(&self, kind: RequestKind) -> impl Iterator<Item = u64> + '_ {
        self.latencies
            .iter()
            .filter(move |(k, _)| *k == kind)
            .map(|&(_, ns)| ns)
    }
}

/// Pre-computes the arrival schedule: a pure function of `cfg.seed` and
/// the store's key count, sorted by arrival time.
///
/// Keys are drawn Zipfian over `n_keys` (client id is drawn uniformly —
/// popularity attaches to *data*, not to who asks). Transfer destinations
/// re-roll until they differ from the source; booking pairs re-roll until
/// the two keys live on different shards (when the store has more than one
/// shard), because the two-resource itinerary is the interesting case.
pub fn build_schedule(n_keys: usize, n_shards: usize, cfg: &TrafficConfig) -> Vec<Request> {
    assert!(n_keys > 1, "need at least two keys");
    assert!(cfg.requests > 0, "empty schedule");
    assert!(
        (0.0..1.0).contains(&cfg.burstiness),
        "burstiness must be in [0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let zipf = Zipf::new(n_keys, cfg.zipf_s);
    let base_gap = Exp::new(cfg.offered_rps.max(1e-9));
    let period_ns = cfg.burst_period.as_nanos().max(1) as u64;
    let mut t_ns = 0u64;
    let mut schedule = Vec::with_capacity(cfg.requests);
    for _ in 0..cfg.requests {
        // Square-wave burst: alternate high/low arrival rate per period.
        let high = (t_ns / period_ns) % 2 == 0;
        let factor = if high {
            1.0 + cfg.burstiness
        } else {
            1.0 - cfg.burstiness
        };
        let gap_s = base_gap.sample(&mut rng) / factor;
        t_ns += (gap_s * 1e9) as u64;
        let kind = cfg.mix.pick(rng.random_range(0u32..100));
        let a = zipf.sample(&mut rng) - 1; // Zipf ranks are 1-based
        let b = match kind {
            RequestKind::Transfer => loop {
                let b = zipf.sample(&mut rng) - 1;
                if b != a {
                    break b;
                }
            },
            RequestKind::Booking if n_shards > 1 => loop {
                let b = zipf.sample(&mut rng) - 1;
                if b % n_shards != a % n_shards {
                    break b;
                }
            },
            _ => a,
        };
        schedule.push(Request {
            arrival: Duration::from_nanos(t_ns),
            client: rng.random_range(0..cfg.clients.max(1)),
            kind,
            a,
            b,
        });
    }
    schedule
}

/// Serves a pre-built schedule against `store` with `cfg.workers` threads
/// and returns per-request latencies measured from scheduled arrival.
///
/// Workers pull requests in arrival order from a shared cursor; a worker
/// that reaches a request before its arrival time sleeps until then, and
/// one that reaches it late (the store has fallen behind the offered load)
/// executes immediately — the accumulated delay stays in the latency.
pub fn run_open_loop(
    store: &ShardedStore,
    schedule: &[Request],
    cfg: &TrafficConfig,
) -> TrafficReport {
    let cursor = AtomicUsize::new(0);
    let confirmed = AtomicU64::new(0);
    let declined = AtomicU64::new(0);
    let start = Instant::now();
    let mut lanes: Vec<Vec<(RequestKind, u64)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.workers.max(1))
            .map(|_| {
                let cursor = &cursor;
                let confirmed = &confirmed;
                let declined = &declined;
                scope.spawn(move || {
                    let mut lane = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(req) = schedule.get(i) else { break };
                        let due = start + req.arrival;
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        match req.kind {
                            RequestKind::Read => {
                                std::hint::black_box(store.read_key(req.a));
                            }
                            RequestKind::Update => store.update_key(req.a),
                            RequestKind::Transfer => store.transfer(req.a, req.b, 1),
                            RequestKind::Booking => {
                                let deadline = Instant::now() + cfg.booking_deadline;
                                match store.book(req.a, req.b, deadline) {
                                    BookingOutcome::Confirmed => {
                                        confirmed.fetch_add(1, Ordering::Relaxed);
                                    }
                                    BookingOutcome::Declined => {
                                        declined.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                        let lat = Instant::now().saturating_duration_since(due);
                        lane.push((req.kind, lat.as_nanos().min(u64::MAX as u128) as u64));
                    }
                    lane
                })
            })
            .collect();
        for h in handles {
            lanes.push(h.join().expect("traffic worker panicked"));
        }
    });
    let mut latencies = Vec::with_capacity(schedule.len());
    for lane in lanes {
        latencies.extend(lane);
    }
    TrafficReport {
        latencies,
        confirmed_bookings: confirmed.load(Ordering::Relaxed),
        declined_bookings: declined.load(Ordering::Relaxed),
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ShardedStore;
    use shrink_stm::TmRuntime;

    #[test]
    fn schedule_is_deterministic_sorted_and_well_formed() {
        let cfg = TrafficConfig::smoke();
        let a = build_schedule(64, 4, &cfg);
        let b = build_schedule(64, 4, &cfg);
        assert_eq!(a.len(), cfg.requests);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.kind, y.kind);
            assert_eq!((x.a, x.b, x.client), (y.a, y.b, y.client));
        }
        let mut prev = Duration::ZERO;
        for req in &a {
            assert!(req.arrival >= prev, "arrivals must be non-decreasing");
            prev = req.arrival;
            assert!(req.a < 64 && req.b < 64 && req.client < cfg.clients);
            match req.kind {
                RequestKind::Transfer => assert_ne!(req.a, req.b),
                RequestKind::Booking => assert_ne!(req.a % 4, req.b % 4),
                _ => {}
            }
        }
        // Every class shows up in a 400-request schedule with this mix.
        for kind in RequestKind::ALL {
            assert!(
                a.iter().any(|r| r.kind == kind),
                "no {} requests scheduled",
                kind.label()
            );
        }
    }

    #[test]
    fn zipf_schedule_concentrates_on_hot_keys() {
        let cfg = TrafficConfig {
            requests: 4000,
            zipf_s: 1.0,
            ..TrafficConfig::smoke()
        };
        let schedule = build_schedule(256, 4, &cfg);
        let hot = schedule.iter().filter(|r| r.a < 8).count();
        // Under s=1 over 256 keys the top 8 keys carry ~44% of the mass;
        // uniform would give 3%. Accept anything clearly non-uniform.
        assert!(
            hot * 5 > schedule.len(),
            "hot keys got {hot}/{} draws — Zipf skew missing",
            schedule.len()
        );
    }

    #[test]
    fn open_loop_smoke_run_conserves_and_measures_queueing() {
        let store = ShardedStore::new(4, 16, 100, 4, |_| TmRuntime::new());
        let cfg = TrafficConfig::smoke();
        let schedule = build_schedule(store.n_keys(), store.n_shards(), &cfg);
        let report = run_open_loop(&store, &schedule, &cfg);
        assert_eq!(report.latencies.len(), cfg.requests);
        assert!(report.latencies.iter().all(|&(_, ns)| ns > 0));
        let bookings = schedule
            .iter()
            .filter(|r| r.kind == RequestKind::Booking)
            .count() as u64;
        assert_eq!(
            report.confirmed_bookings + report.declined_bookings,
            bookings
        );
        assert_eq!(store.audit_conservation(), store.expected_total());
        store.audit_bookings();
        assert_eq!(store.pending_transfers(), 0);
    }
}
