//! A transactional red-black tree.
//!
//! The paper's microbenchmark ("we perform our experiments on red-black
//! tree benchmark, under 20% and 70% update operations and integer set
//! range of 16384") and the table index inside the `vacation` STAMP
//! workload. Every node lives in its own [`TVar`]; lookups read the search
//! path, updates additionally write the O(1)-amortized set of nodes touched
//! by the CLRS rebalancing, so the conflict footprint matches the classic
//! STM red-black-tree benchmarks.

use rand::rngs::StdRng;
use rand::Rng;
use shrink_stm::{TVar, TmRuntime, Tx, TxRead, TxResult};

use crate::harness::TxWorkload;

/// A tree node. Child links are embedded in the value, so structural
/// changes rewrite whole nodes — the standard design for STM search trees.
#[derive(Clone, Debug)]
struct Node {
    key: u64,
    value: u64,
    red: bool,
    left: Option<NodeVar>,
    right: Option<NodeVar>,
}

/// A shared handle to a tree node.
#[derive(Clone, Debug)]
struct NodeVar(TVar<Node>);

impl NodeVar {
    fn new(node: Node) -> Self {
        NodeVar(TVar::new(node))
    }

    fn same(&self, other: &NodeVar) -> bool {
        self.0.id() == other.0.id()
    }
}

/// A concurrent ordered map from `u64` keys to `u64` values, balanced as a
/// red-black tree, with all operations running inside transactions.
///
/// # Examples
///
/// ```
/// use shrink_stm::TmRuntime;
/// use shrink_workloads::rbtree::TxRbTree;
///
/// let rt = TmRuntime::new();
/// let tree = TxRbTree::new();
/// rt.run(|tx| tree.insert(tx, 5, 50));
/// let found = rt.run(|tx| tree.get(tx, 5));
/// assert_eq!(found, Some(50));
/// ```
#[derive(Clone, Debug)]
pub struct TxRbTree {
    root: TVar<Option<NodeVar>>,
}

impl Default for TxRbTree {
    fn default() -> Self {
        Self::new()
    }
}

impl TxRbTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        TxRbTree {
            root: TVar::new(None),
        }
    }

    fn read_node(tx: &mut impl TxRead, nv: &NodeVar) -> TxResult<Node> {
        tx.read(&nv.0)
    }

    fn write_node(tx: &mut Tx<'_>, nv: &NodeVar, node: Node) -> TxResult<()> {
        tx.write(&nv.0, node)
    }

    /// Looks up `key`.
    ///
    /// Generic over [`TxRead`]: the search path is pure reads, so lookups
    /// run equally well inside a lock-free read-only transaction
    /// ([`TmRuntime::read_only`]) — the paper's 20%-update configuration
    /// spends most of its operations here without touching a single orec.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn get(&self, tx: &mut impl TxRead, key: u64) -> TxResult<Option<u64>> {
        let mut cur = tx.read(&self.root)?;
        while let Some(nv) = cur {
            let node = Self::read_node(tx, &nv)?;
            if key == node.key {
                return Ok(Some(node.value));
            }
            cur = if key < node.key {
                node.left
            } else {
                node.right
            };
        }
        Ok(None)
    }

    /// True if `key` is present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn contains(&self, tx: &mut impl TxRead, key: u64) -> TxResult<bool> {
        Ok(self.get(tx, key)?.is_some())
    }

    /// Replaces the child link pointing at `from` (under `parent`, or the
    /// root when `parent` is `None`) with `to`.
    fn replace_link(
        &self,
        tx: &mut Tx<'_>,
        parent: Option<&NodeVar>,
        from: &NodeVar,
        to: Option<NodeVar>,
    ) -> TxResult<()> {
        match parent {
            None => tx.write(&self.root, to),
            Some(p) => {
                let mut pn = Self::read_node(tx, p)?;
                if pn.left.as_ref().is_some_and(|l| l.same(from)) {
                    pn.left = to;
                } else {
                    debug_assert!(pn.right.as_ref().is_some_and(|r| r.same(from)));
                    pn.right = to;
                }
                Self::write_node(tx, p, pn)
            }
        }
    }

    /// Rotates the subtree rooted at `x` left (`true`) or right (`false`);
    /// returns the new subtree root.
    fn rotate(
        &self,
        tx: &mut Tx<'_>,
        x: &NodeVar,
        left: bool,
        parent: Option<&NodeVar>,
    ) -> TxResult<NodeVar> {
        let mut xn = Self::read_node(tx, x)?;
        let y = if left {
            xn.right.clone().expect("rotation requires a child")
        } else {
            xn.left.clone().expect("rotation requires a child")
        };
        let mut yn = Self::read_node(tx, &y)?;
        if left {
            xn.right = yn.left.take();
            yn.left = Some(x.clone());
        } else {
            xn.left = yn.right.take();
            yn.right = Some(x.clone());
        }
        Self::write_node(tx, x, xn)?;
        Self::write_node(tx, &y, yn)?;
        self.replace_link(tx, parent, x, Some(y.clone()))?;
        Ok(y)
    }

    /// Inserts `key → value`; returns the previous value if the key was
    /// already present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn insert(&self, tx: &mut Tx<'_>, key: u64, value: u64) -> TxResult<Option<u64>> {
        // Descend, recording the path.
        let mut path: Vec<NodeVar> = Vec::new();
        let mut cur = tx.read(&self.root)?;
        while let Some(nv) = cur {
            let node = Self::read_node(tx, &nv)?;
            if key == node.key {
                let old = node.value;
                Self::write_node(
                    tx,
                    &nv,
                    Node {
                        value,
                        ..node.clone()
                    },
                )?;
                return Ok(Some(old));
            }
            cur = if key < node.key {
                node.left.clone()
            } else {
                node.right.clone()
            };
            path.push(nv);
        }

        let z = NodeVar::new(Node {
            key,
            value,
            red: true,
            left: None,
            right: None,
        });
        match path.last() {
            None => tx.write(&self.root, Some(z.clone()))?,
            Some(p) => {
                let mut pn = Self::read_node(tx, p)?;
                if key < pn.key {
                    pn.left = Some(z.clone());
                } else {
                    pn.right = Some(z.clone());
                }
                Self::write_node(tx, p, pn)?;
            }
        }
        path.push(z);
        self.insert_fixup(tx, path)?;
        Ok(None)
    }

    fn insert_fixup(&self, tx: &mut Tx<'_>, mut path: Vec<NodeVar>) -> TxResult<()> {
        while path.len() >= 3 {
            let z = path[path.len() - 1].clone();
            let p = path[path.len() - 2].clone();
            let g = path[path.len() - 3].clone();
            let pn = Self::read_node(tx, &p)?;
            if !pn.red {
                break;
            }
            let gn = Self::read_node(tx, &g)?;
            let p_is_left = gn.left.as_ref().is_some_and(|l| l.same(&p));
            let uncle = if p_is_left {
                gn.right.clone()
            } else {
                gn.left.clone()
            };
            let uncle_red = match &uncle {
                Some(u) => Self::read_node(tx, u)?.red,
                None => false,
            };
            if uncle_red {
                // Case 1: red uncle — recolor and move two levels up.
                let mut pn = Self::read_node(tx, &p)?;
                pn.red = false;
                Self::write_node(tx, &p, pn)?;
                let u = uncle.expect("red uncle exists");
                let mut un = Self::read_node(tx, &u)?;
                un.red = false;
                Self::write_node(tx, &u, un)?;
                let mut gn = Self::read_node(tx, &g)?;
                gn.red = true;
                Self::write_node(tx, &g, gn)?;
                path.pop();
                path.pop();
                continue;
            }
            // Cases 2/3: black uncle — one or two rotations.
            let z_is_left = pn.left.as_ref().is_some_and(|l| l.same(&z));
            let (top, _mid) = if p_is_left == z_is_left {
                (p.clone(), z.clone())
            } else {
                // Case 2: inner child — rotate at p so the path straightens.
                self.rotate(tx, &p, p_is_left, Some(&g))?;
                (z.clone(), p.clone())
            };
            // Case 3: recolor and rotate at g. `top` takes g's place.
            let mut tn = Self::read_node(tx, &top)?;
            tn.red = false;
            Self::write_node(tx, &top, tn)?;
            let mut gn = Self::read_node(tx, &g)?;
            gn.red = true;
            Self::write_node(tx, &g, gn)?;
            let g_parent = if path.len() >= 4 {
                Some(path[path.len() - 4].clone())
            } else {
                None
            };
            self.rotate(tx, &g, !p_is_left, g_parent.as_ref())?;
            break;
        }
        // Root is always black.
        if let Some(rv) = tx.read(&self.root)? {
            let rn = Self::read_node(tx, &rv)?;
            if rn.red {
                Self::write_node(tx, &rv, Node { red: false, ..rn })?;
            }
        }
        Ok(())
    }

    /// Removes `key`; returns its value if it was present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn remove(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<Option<u64>> {
        // Descend to the node, recording the path (root .. z).
        let mut path: Vec<NodeVar> = Vec::new();
        let mut cur = tx.read(&self.root)?;
        let (z, zn) = loop {
            match cur {
                None => return Ok(None),
                Some(nv) => {
                    let node = Self::read_node(tx, &nv)?;
                    if key == node.key {
                        break (nv, node);
                    }
                    cur = if key < node.key {
                        node.left.clone()
                    } else {
                        node.right.clone()
                    };
                    path.push(nv);
                }
            }
        };
        let removed_value = zn.value;

        // If z has two children, splice its successor instead.
        let (target, target_node) = if zn.left.is_some() && zn.right.is_some() {
            path.push(z.clone());
            let mut s = zn.right.clone().expect("two children");
            loop {
                let sn = Self::read_node(tx, &s)?;
                match sn.left.clone() {
                    Some(l) => {
                        path.push(s.clone());
                        s = l;
                    }
                    None => {
                        // Move successor's payload into z, then delete s.
                        let zn_now = Self::read_node(tx, &z)?;
                        Self::write_node(
                            tx,
                            &z,
                            Node {
                                key: sn.key,
                                value: sn.value,
                                ..zn_now
                            },
                        )?;
                        break (s.clone(), sn);
                    }
                }
            }
        } else {
            (z, zn)
        };

        // Splice `target` out: it has at most one child.
        let child = target_node.left.clone().or(target_node.right.clone());
        let parent = path.last().cloned();
        let target_is_left = match &parent {
            Some(p) => Self::read_node(tx, p)?
                .left
                .as_ref()
                .is_some_and(|l| l.same(&target)),
            None => false,
        };
        self.replace_link(tx, parent.as_ref(), &target, child.clone())?;

        if !target_node.red {
            self.delete_fixup(tx, path, child, target_is_left)?;
        }
        Ok(Some(removed_value))
    }

    /// CLRS delete fixup: `x` (possibly a nil leaf) carries an extra black;
    /// `path` is root..parent-of-x; `x_is_left` locates x under the parent.
    fn delete_fixup(
        &self,
        tx: &mut Tx<'_>,
        mut path: Vec<NodeVar>,
        mut x: Option<NodeVar>,
        mut x_is_left: bool,
    ) -> TxResult<()> {
        loop {
            if let Some(xv) = &x {
                let xn = Self::read_node(tx, xv)?;
                if xn.red {
                    Self::write_node(tx, xv, Node { red: false, ..xn })?;
                    return Ok(());
                }
            }
            let p = match path.last() {
                Some(p) => p.clone(),
                None => return Ok(()), // x is the root: drop the extra black
            };
            let pn = Self::read_node(tx, &p)?;
            let w = if x_is_left {
                pn.right.clone()
            } else {
                pn.left.clone()
            }
            .expect("double-black node must have a sibling");
            let wn = Self::read_node(tx, &w)?;

            if wn.red {
                // Case 1: red sibling — rotate it up; the new sibling is
                // black. `w` becomes an ancestor, so it joins the path.
                Self::write_node(tx, &w, Node { red: false, ..wn })?;
                let pn2 = Self::read_node(tx, &p)?;
                Self::write_node(tx, &p, Node { red: true, ..pn2 })?;
                let gp = if path.len() >= 2 {
                    Some(path[path.len() - 2].clone())
                } else {
                    None
                };
                self.rotate(tx, &p, x_is_left, gp.as_ref())?;
                let last = path.len() - 1;
                path.insert(last, w);
                continue;
            }

            let near = if x_is_left {
                wn.left.clone()
            } else {
                wn.right.clone()
            };
            let far = if x_is_left {
                wn.right.clone()
            } else {
                wn.left.clone()
            };
            let near_red = match &near {
                Some(nv) => Self::read_node(tx, nv)?.red,
                None => false,
            };
            let far_red = match &far {
                Some(fv) => Self::read_node(tx, fv)?.red,
                None => false,
            };

            if !near_red && !far_red {
                // Case 2: both of w's children black — recolor w, push the
                // extra black to the parent.
                Self::write_node(tx, &w, Node { red: true, ..wn })?;
                x = Some(p.clone());
                path.pop();
                if let Some(gp) = path.last() {
                    x_is_left = Self::read_node(tx, gp)?
                        .left
                        .as_ref()
                        .is_some_and(|l| l.same(&p));
                }
                continue;
            }

            let w = if !far_red {
                // Case 3: near child red, far child black — rotate at w;
                // the near child becomes the new (black) sibling with a red
                // far child.
                let nv = near.expect("near child is red");
                let nn = Self::read_node(tx, &nv)?;
                Self::write_node(tx, &nv, Node { red: false, ..nn })?;
                let wn2 = Self::read_node(tx, &w)?;
                Self::write_node(tx, &w, Node { red: true, ..wn2 })?;
                self.rotate(tx, &w, !x_is_left, Some(&p))?
            } else {
                w
            };

            // Case 4: far child red — final rotation at p absorbs the extra
            // black.
            let wn = Self::read_node(tx, &w)?;
            let pn = Self::read_node(tx, &p)?;
            let far = if x_is_left {
                wn.right.clone()
            } else {
                wn.left.clone()
            }
            .expect("case 4 has a red far child");
            Self::write_node(tx, &w, Node { red: pn.red, ..wn })?;
            let pn = Self::read_node(tx, &p)?;
            Self::write_node(tx, &p, Node { red: false, ..pn })?;
            let fn_ = Self::read_node(tx, &far)?;
            Self::write_node(tx, &far, Node { red: false, ..fn_ })?;
            let gp = if path.len() >= 2 {
                Some(path[path.len() - 2].clone())
            } else {
                None
            };
            self.rotate(tx, &p, x_is_left, gp.as_ref())?;
            return Ok(());
        }
    }

    /// Number of keys, by full traversal.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn len(&self, tx: &mut impl TxRead) -> TxResult<usize> {
        fn count(tx: &mut impl TxRead, cur: Option<NodeVar>) -> TxResult<usize> {
            match cur {
                None => Ok(0),
                Some(nv) => {
                    let node = tx.read(&nv.0)?;
                    Ok(1 + count(tx, node.left)? + count(tx, node.right)?)
                }
            }
        }
        let root = tx.read(&self.root)?;
        count(tx, root)
    }

    /// True if the tree holds no keys.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn is_empty(&self, tx: &mut impl TxRead) -> TxResult<bool> {
        Ok(tx.read(&self.root)?.is_none())
    }

    /// All keys in ascending order (test/audit helper).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn keys(&self, tx: &mut impl TxRead) -> TxResult<Vec<u64>> {
        fn walk(tx: &mut impl TxRead, cur: Option<NodeVar>, out: &mut Vec<u64>) -> TxResult<()> {
            if let Some(nv) = cur {
                let node = tx.read(&nv.0)?;
                walk(tx, node.left, out)?;
                out.push(node.key);
                walk(tx, node.right, out)?;
            }
            Ok(())
        }
        let mut out = Vec::new();
        let root = tx.read(&self.root)?;
        walk(tx, root, &mut out)?;
        Ok(out)
    }

    /// Audits the red-black invariants; returns the key count.
    ///
    /// # Errors
    ///
    /// Returns a violation description inside `Ok(Err(..))`-free form: the
    /// outer `TxResult` carries transactional aborts, the inner `Result`
    /// carries audit failures.
    #[allow(clippy::type_complexity)]
    pub fn check_invariants(&self, tx: &mut impl TxRead) -> TxResult<Result<usize, String>> {
        // Returns (black_height, count) or an error description.
        fn audit(
            tx: &mut impl TxRead,
            cur: Option<NodeVar>,
            low: Option<u64>,
            high: Option<u64>,
            parent_red: bool,
        ) -> TxResult<Result<(usize, usize), String>> {
            let Some(nv) = cur else {
                return Ok(Ok((1, 0))); // nil leaves are black
            };
            let node = tx.read(&nv.0)?;
            if let Some(lo) = low {
                if node.key <= lo {
                    return Ok(Err(format!("BST order violated at key {}", node.key)));
                }
            }
            if let Some(hi) = high {
                if node.key >= hi {
                    return Ok(Err(format!("BST order violated at key {}", node.key)));
                }
            }
            if parent_red && node.red {
                return Ok(Err(format!("red-red violation at key {}", node.key)));
            }
            let left = audit(tx, node.left.clone(), low, Some(node.key), node.red)?;
            let right = audit(tx, node.right.clone(), Some(node.key), high, node.red)?;
            Ok(match (left, right) {
                (Ok((lb, lc)), Ok((rb, rc))) => {
                    if lb != rb {
                        Err(format!(
                            "black-height mismatch at key {}: {lb} vs {rb}",
                            node.key
                        ))
                    } else {
                        Ok((lb + usize::from(!node.red), lc + rc + 1))
                    }
                }
                (Err(e), _) | (_, Err(e)) => Err(e),
            })
        }
        let root = tx.read(&self.root)?;
        if let Some(rv) = &root {
            if tx.read(&rv.0)?.red {
                return Ok(Err("root is red".to_string()));
            }
        }
        Ok(audit(tx, root, None, None, false)?.map(|(_, count)| count))
    }
}

/// The red-black-tree microbenchmark of the paper: lookups and
/// insert/remove updates over a bounded integer key range.
#[derive(Debug)]
pub struct RbTreeWorkload {
    tree: TxRbTree,
    key_range: u64,
    update_permille: u32,
}

impl RbTreeWorkload {
    /// Creates the workload and pre-fills the tree to half occupancy using
    /// transactions on `rt`.
    ///
    /// `update_pct` is the percentage of operations that mutate (the paper
    /// evaluates 20 and 70); the rest are lookups.
    ///
    /// # Panics
    ///
    /// Panics if `update_pct > 100` or `key_range == 0`.
    pub fn new(rt: &TmRuntime, key_range: u64, update_pct: u32) -> Self {
        assert!(update_pct <= 100, "update percentage over 100");
        assert!(key_range > 0, "key range must be positive");
        let tree = TxRbTree::new();
        // Deterministic half-fill: every other key.
        for key in (0..key_range).step_by(2) {
            rt.run(|tx| tree.insert(tx, key, key));
        }
        RbTreeWorkload {
            tree,
            key_range,
            update_permille: update_pct * 10,
        }
    }

    /// The underlying tree (for audits).
    pub fn tree(&self) -> &TxRbTree {
        &self.tree
    }
}

impl TxWorkload for RbTreeWorkload {
    fn step(&self, rt: &TmRuntime, _worker: usize, rng: &mut StdRng) {
        let key = rng.random_range(0..self.key_range);
        let roll: u32 = rng.random_range(0..1000);
        if roll < self.update_permille {
            if roll % 2 == 0 {
                rt.run(|tx| self.tree.insert(tx, key, key));
            } else {
                rt.run(|tx| self.tree.remove(tx, key));
            }
        } else {
            // Lookups take the lock-free path: no orec writes, no commit
            // ticket, invisible to the scheduler.
            rt.read_only(|tx| self.tree.get(tx, key));
        }
    }

    fn verify(&self, rt: &TmRuntime) -> Result<(), String> {
        rt.read_only(|tx| self.tree.check_invariants(tx))
            .map(|_| ())
    }

    fn name(&self) -> &'static str {
        "rbtree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn audit(rt: &TmRuntime, tree: &TxRbTree) -> usize {
        rt.run(|tx| tree.check_invariants(tx))
            .unwrap_or_else(|e| panic!("invariant violated: {e}"))
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let rt = TmRuntime::new();
        let tree = TxRbTree::new();
        assert_eq!(rt.run(|tx| tree.insert(tx, 10, 100)), None);
        assert_eq!(rt.run(|tx| tree.insert(tx, 10, 200)), Some(100));
        assert_eq!(rt.run(|tx| tree.get(tx, 10)), Some(200));
        assert_eq!(rt.run(|tx| tree.remove(tx, 10)), Some(200));
        assert_eq!(rt.run(|tx| tree.get(tx, 10)), None);
        assert_eq!(rt.run(|tx| tree.remove(tx, 10)), None);
        assert!(rt.run(|tx| tree.is_empty(tx)));
    }

    #[test]
    fn ascending_inserts_stay_balanced() {
        let rt = TmRuntime::new();
        let tree = TxRbTree::new();
        for k in 0..512 {
            rt.run(|tx| tree.insert(tx, k, k));
            if k % 64 == 0 {
                audit(&rt, &tree);
            }
        }
        assert_eq!(audit(&rt, &tree), 512);
        let keys = rt.run(|tx| tree.keys(tx));
        assert_eq!(keys, (0..512).collect::<Vec<_>>());
    }

    #[test]
    fn descending_inserts_stay_balanced() {
        let rt = TmRuntime::new();
        let tree = TxRbTree::new();
        for k in (0..256).rev() {
            rt.run(|tx| tree.insert(tx, k, k));
        }
        assert_eq!(audit(&rt, &tree), 256);
    }

    #[test]
    fn random_mix_matches_model() {
        let rt = TmRuntime::new();
        let tree = TxRbTree::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(42);
        for i in 0..4000 {
            let key = rng.random_range(0..200);
            if rng.random_bool(0.5) {
                let mine = rt.run(|tx| tree.insert(tx, key, i));
                let theirs = model.insert(key, i);
                assert_eq!(mine, theirs, "insert disagreement at step {i}");
            } else {
                let mine = rt.run(|tx| tree.remove(tx, key));
                let theirs = model.remove(&key);
                assert_eq!(mine, theirs, "remove disagreement at step {i}");
            }
            if i % 500 == 0 {
                assert_eq!(audit(&rt, &tree), model.len());
            }
        }
        assert_eq!(audit(&rt, &tree), model.len());
        let keys = rt.run(|tx| tree.keys(tx));
        assert_eq!(keys, model.keys().copied().collect::<Vec<_>>());
    }

    #[test]
    fn removal_of_internal_nodes_with_two_children() {
        let rt = TmRuntime::new();
        let tree = TxRbTree::new();
        for k in [50u64, 25, 75, 12, 37, 62, 87, 6, 18, 31, 43] {
            rt.run(|tx| tree.insert(tx, k, k * 10));
        }
        // 50 and 25 are internal with two children.
        assert_eq!(rt.run(|tx| tree.remove(tx, 50)), Some(500));
        audit(&rt, &tree);
        assert_eq!(rt.run(|tx| tree.remove(tx, 25)), Some(250));
        assert_eq!(audit(&rt, &tree), 9);
        let keys = rt.run(|tx| tree.keys(tx));
        assert!(!keys.contains(&50) && !keys.contains(&25));
    }

    #[test]
    fn drain_entire_tree_in_random_order() {
        let rt = TmRuntime::new();
        let tree = TxRbTree::new();
        let mut keys: Vec<u64> = (0..300).collect();
        for &k in &keys {
            rt.run(|tx| tree.insert(tx, k, k));
        }
        // Pseudo-shuffle.
        let mut rng = StdRng::seed_from_u64(7);
        for i in (1..keys.len()).rev() {
            let j = rng.random_range(0..=i);
            keys.swap(i, j);
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(rt.run(|tx| tree.remove(tx, k)), Some(k));
            if i % 50 == 0 {
                audit(&rt, &tree);
            }
        }
        assert!(rt.run(|tx| tree.is_empty(tx)));
    }

    #[test]
    fn concurrent_updates_preserve_invariants() {
        let rt = TmRuntime::new();
        let tree = Arc::new(TxRbTree::new());
        for k in 0..128 {
            rt.run(|tx| tree.insert(tx, k * 2, k));
        }
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let rt = rt.clone();
                let tree = Arc::clone(&tree);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t);
                    for _ in 0..300 {
                        let k = rng.random_range(0..256u64);
                        if rng.random_bool(0.5) {
                            rt.run(|tx| tree.insert(tx, k, k));
                        } else {
                            rt.run(|tx| tree.remove(tx, k));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        audit(&rt, &tree);
    }

    #[test]
    fn lookups_run_lock_free_in_read_only_transactions() {
        let rt = TmRuntime::new();
        let tree = TxRbTree::new();
        for k in 0..64 {
            rt.run(|tx| tree.insert(tx, k, k + 1));
        }
        let before = rt.stats();
        assert_eq!(rt.read_only(|tx| tree.get(tx, 33)), Some(34));
        assert!(rt.read_only(|tx| tree.contains(tx, 0)));
        assert_eq!(rt.read_only(|tx| tree.keys(tx)).len(), 64);
        assert_eq!(rt.read_only(|tx| tree.len(tx)), 64);
        let after = rt.stats();
        assert_eq!(
            after.orec_acquires, before.orec_acquires,
            "tree lookups must take no locks"
        );
        assert_eq!(after.ro_commits, before.ro_commits + 4);
        assert_eq!(after.commits, before.commits, "no rw commit tickets");
    }

    #[test]
    fn workload_runs_and_verifies() {
        let rt = TmRuntime::new();
        let workload = RbTreeWorkload::new(&rt, 256, 50);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            workload.step(&rt, 0, &mut rng);
        }
        workload.verify(&rt).unwrap();
    }
}
