//! An STMBench7-like CAD benchmark.
//!
//! STMBench7 (Guerraoui, Kapałka & Vitek, EuroSys 2007) models a CAD/CAM
//! in-memory database: a module whose *complex assemblies* form a tree,
//! whose leaf *base assemblies* reference *composite parts* from a shared
//! pool; each composite part owns a *document* and a graph of *atomic
//! parts*; indexes map part ids to their composites. Operations are grouped
//! into read-only traversals/queries and structural modifications, mixed in
//! three flavours (read-dominated 90/10, read-write 60/40, write-dominated
//! 10/90). Following the paper's setup, long traversals are off.
//!
//! This port is structurally faithful but scaled (the conflict structure —
//! hot index paths, shared assembly spine, per-composite part graphs — is
//! what drives scheduling behaviour, not absolute object counts). See
//! DESIGN.md §4 for the substitution record.

mod ops;

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shrink_stm::{TVar, TmRuntime};

use crate::harness::TxWorkload;
use crate::rbtree::TxRbTree;

/// Sizing knobs for the object graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sb7Config {
    /// Depth of the complex-assembly tree (≥ 1).
    pub assembly_levels: u32,
    /// Children per complex assembly.
    pub assembly_fanout: u32,
    /// Size of the shared composite-part pool.
    pub composite_pool: u32,
    /// Composite parts referenced by each base assembly.
    pub composites_per_base: u32,
    /// Atomic parts initially in each composite part.
    pub parts_per_composite: u32,
    /// Outgoing connections per atomic part.
    pub connections_per_part: u32,
    /// Enable the long traversals (T1): whole-design read-only walks. The
    /// paper runs all figures with long traversals **off**, which is the
    /// default here; the operation is implemented for completeness.
    pub long_traversals: bool,
}

impl Default for Sb7Config {
    fn default() -> Self {
        Sb7Config {
            assembly_levels: 4,
            assembly_fanout: 3,
            composite_pool: 64,
            composites_per_base: 3,
            parts_per_composite: 16,
            connections_per_part: 3,
            long_traversals: false,
        }
    }
}

impl Sb7Config {
    /// A miniature graph for unit tests.
    pub fn tiny() -> Self {
        Sb7Config {
            assembly_levels: 2,
            assembly_fanout: 2,
            composite_pool: 4,
            composites_per_base: 2,
            parts_per_composite: 6,
            connections_per_part: 2,
            long_traversals: false,
        }
    }
}

/// The three STMBench7 operation mixes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sb7Mix {
    /// 90 % read operations, 10 % writes.
    ReadDominated,
    /// 60 % read operations, 40 % writes.
    ReadWrite,
    /// 10 % read operations, 90 % writes.
    WriteDominated,
}

impl Sb7Mix {
    /// Percentage of read-only operations in the mix.
    pub fn read_pct(self) -> u32 {
        match self {
            Sb7Mix::ReadDominated => 90,
            Sb7Mix::ReadWrite => 60,
            Sb7Mix::WriteDominated => 10,
        }
    }

    /// All three mixes, in the paper's presentation order.
    pub fn all() -> [Sb7Mix; 3] {
        [
            Sb7Mix::ReadDominated,
            Sb7Mix::ReadWrite,
            Sb7Mix::WriteDominated,
        ]
    }

    /// The label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Sb7Mix::ReadDominated => "read-dominated",
            Sb7Mix::ReadWrite => "read-write",
            Sb7Mix::WriteDominated => "write-dominated",
        }
    }
}

impl fmt::Display for Sb7Mix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An atomic part: the leaves of the CAD graph.
#[derive(Debug)]
pub(crate) struct AtomicPart {
    pub(crate) id: u64,
    pub(crate) x: TVar<i64>,
    pub(crate) y: TVar<i64>,
    pub(crate) build_date: TVar<u64>,
    /// Outgoing connections (ids of other atomic parts in the same
    /// composite).
    pub(crate) to: TVar<Vec<u64>>,
}

impl AtomicPart {
    fn new(id: u64, seed: u64) -> Arc<Self> {
        Arc::new(AtomicPart {
            id,
            x: TVar::new(seed as i64 % 1000),
            y: TVar::new((seed / 7) as i64 % 1000),
            build_date: TVar::new(seed % 4096),
            to: TVar::new(Vec::new()),
        })
    }
}

/// A composite part: a document plus a connected graph of atomic parts.
#[derive(Debug)]
pub(crate) struct CompositePart {
    pub(crate) id: u64,
    pub(crate) doc_title: String,
    pub(crate) doc_text: TVar<Arc<String>>,
    pub(crate) root_part: TVar<u64>,
    pub(crate) parts: TVar<Vec<u64>>,
}

/// A leaf assembly referencing composite parts from the shared pool.
#[derive(Debug)]
pub(crate) struct BaseAssembly {
    pub(crate) id: u64,
    pub(crate) components: TVar<Vec<u64>>,
}

/// An inner node of the assembly tree.
#[derive(Debug)]
pub(crate) struct ComplexAssembly {
    pub(crate) id: u64,
    /// Touched by every traversal through this node; bumped by structural
    /// modifications below it — the benchmark's hot shared spine.
    pub(crate) date: TVar<u64>,
    pub(crate) children: AssemblyChildren,
}

#[derive(Debug)]
pub(crate) enum AssemblyChildren {
    Complex(Vec<Arc<ComplexAssembly>>),
    Base(Vec<Arc<BaseAssembly>>),
}

/// Registry resolving atomic-part ids to handles.
///
/// Physical allocation is non-transactional (append-only, tolerating
/// orphans from aborted creations); *logical* membership is governed by the
/// transactional part index, so consistency is unaffected.
#[derive(Debug, Default)]
pub(crate) struct PartRegistry {
    parts: RwLock<HashMap<u64, Arc<AtomicPart>>>,
}

impl PartRegistry {
    pub(crate) fn get(&self, id: u64) -> Option<Arc<AtomicPart>> {
        self.parts.read().get(&id).cloned()
    }

    pub(crate) fn publish(&self, part: Arc<AtomicPart>) {
        self.parts.write().insert(part.id, part);
    }

    pub(crate) fn physical_len(&self) -> usize {
        self.parts.read().len()
    }
}

/// The benchmark: object graph, indexes and operation mix.
pub struct Sb7 {
    pub(crate) config: Sb7Config,
    pub(crate) mix: Sb7Mix,
    pub(crate) registry: PartRegistry,
    pub(crate) composites: Vec<Arc<CompositePart>>,
    pub(crate) design_root: Arc<ComplexAssembly>,
    pub(crate) base_assemblies: Vec<Arc<BaseAssembly>>,
    /// Atomic part id → owning composite id.
    pub(crate) part_index: TxRbTree,
    pub(crate) next_part_id: AtomicU64,
}

impl fmt::Debug for Sb7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sb7")
            .field("mix", &self.mix)
            .field("composites", &self.composites.len())
            .field("base_assemblies", &self.base_assemblies.len())
            .finish()
    }
}

impl Sb7 {
    /// Builds the object graph with transactions on `rt`.
    pub fn build(rt: &TmRuntime, config: Sb7Config, mix: Sb7Mix) -> Arc<Self> {
        let mut rng = StdRng::seed_from_u64(0x5B7);
        let registry = PartRegistry::default();
        let part_index = TxRbTree::new();

        // Composite pool with per-composite atomic-part graphs.
        let mut next_part_id: u64 = 1;
        let composites: Vec<Arc<CompositePart>> = (0..config.composite_pool as u64)
            .map(|cid| {
                let part_ids: Vec<u64> = (0..config.parts_per_composite as u64)
                    .map(|_| {
                        let id = next_part_id;
                        next_part_id += 1;
                        let part = AtomicPart::new(id, rng.random());
                        registry.publish(part);
                        id
                    })
                    .collect();
                // Ring + random chords: connected, bounded degree.
                for (i, &id) in part_ids.iter().enumerate() {
                    let part = registry.get(id).expect("just published");
                    let mut to = vec![part_ids[(i + 1) % part_ids.len()]];
                    for _ in 1..config.connections_per_part {
                        to.push(part_ids[rng.random_range(0..part_ids.len())]);
                    }
                    rt.run(|tx| tx.write(&part.to, to.clone()));
                }
                for &id in &part_ids {
                    rt.run(|tx| part_index.insert(tx, id, cid));
                }
                Arc::new(CompositePart {
                    id: cid,
                    doc_title: format!("composite-{cid}"),
                    doc_text: TVar::new(Arc::new(format!("specification of composite part {cid}"))),
                    root_part: TVar::new(part_ids[0]),
                    parts: TVar::new(part_ids),
                })
            })
            .collect();

        // Assembly tree.
        let mut next_assembly_id: u64 = 1;
        let mut base_assemblies = Vec::new();
        let design_root = Self::build_assembly(
            &config,
            &composites,
            &mut rng,
            &mut next_assembly_id,
            &mut base_assemblies,
            config.assembly_levels,
        );

        Arc::new(Sb7 {
            config,
            mix,
            registry,
            composites,
            design_root,
            base_assemblies,
            part_index,
            next_part_id: AtomicU64::new(next_part_id),
        })
    }

    fn build_assembly(
        config: &Sb7Config,
        composites: &[Arc<CompositePart>],
        rng: &mut StdRng,
        next_id: &mut u64,
        bases: &mut Vec<Arc<BaseAssembly>>,
        level: u32,
    ) -> Arc<ComplexAssembly> {
        let id = *next_id;
        *next_id += 1;
        let children = if level <= 1 {
            let leaves: Vec<Arc<BaseAssembly>> = (0..config.assembly_fanout)
                .map(|_| {
                    let bid = *next_id;
                    *next_id += 1;
                    let components: Vec<u64> = (0..config.composites_per_base)
                        .map(|_| composites[rng.random_range(0..composites.len())].id)
                        .collect();
                    let base = Arc::new(BaseAssembly {
                        id: bid,
                        components: TVar::new(components),
                    });
                    bases.push(Arc::clone(&base));
                    base
                })
                .collect();
            AssemblyChildren::Base(leaves)
        } else {
            AssemblyChildren::Complex(
                (0..config.assembly_fanout)
                    .map(|_| {
                        Self::build_assembly(config, composites, rng, next_id, bases, level - 1)
                    })
                    .collect(),
            )
        };
        Arc::new(ComplexAssembly {
            id,
            date: TVar::new(0),
            children,
        })
    }

    /// The operation mix of this instance.
    pub fn mix(&self) -> Sb7Mix {
        self.mix
    }

    /// The sizing configuration the graph was built with.
    pub fn config(&self) -> &Sb7Config {
        &self.config
    }

    /// Runs the workload's consistency audit.
    ///
    /// # Errors
    ///
    /// Describes the violated invariant.
    pub fn audit(&self, rt: &TmRuntime) -> Result<(), String> {
        ops::audit(self, rt)
    }
}

/// [`TxWorkload`] adapter: one operation per step, drawn from the mix.
pub struct Sb7Workload {
    bench: Arc<Sb7>,
}

impl fmt::Debug for Sb7Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sb7Workload")
            .field("bench", &self.bench)
            .finish()
    }
}

impl Sb7Workload {
    /// Builds the benchmark graph and wraps it as a workload.
    pub fn new(rt: &TmRuntime, config: Sb7Config, mix: Sb7Mix) -> Self {
        Sb7Workload {
            bench: Sb7::build(rt, config, mix),
        }
    }

    /// The underlying benchmark.
    pub fn bench(&self) -> &Arc<Sb7> {
        &self.bench
    }
}

impl TxWorkload for Sb7Workload {
    fn step(&self, rt: &TmRuntime, _worker: usize, rng: &mut StdRng) {
        ops::step(&self.bench, rt, rng);
    }

    fn verify(&self, rt: &TmRuntime) -> Result<(), String> {
        self.bench.audit(rt)
    }

    fn name(&self) -> &'static str {
        "stmbench7"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_expected_shape() {
        let rt = TmRuntime::new();
        let bench = Sb7::build(&rt, Sb7Config::tiny(), Sb7Mix::ReadWrite);
        let cfg = *bench.config();
        assert_eq!(cfg, Sb7Config::tiny());
        assert_eq!(bench.composites.len(), cfg.composite_pool as usize);
        // levels=2, fanout=2 => 2 base assemblies under 2 complex nodes.
        assert_eq!(bench.base_assemblies.len(), 4);
        let expected_parts = (cfg.composite_pool * cfg.parts_per_composite) as usize;
        assert_eq!(bench.registry.physical_len(), expected_parts);
        bench
            .audit(&rt)
            .expect("freshly built graph must audit clean");
    }

    #[test]
    fn mixes_have_documented_read_fractions() {
        assert_eq!(Sb7Mix::ReadDominated.read_pct(), 90);
        assert_eq!(Sb7Mix::ReadWrite.read_pct(), 60);
        assert_eq!(Sb7Mix::WriteDominated.read_pct(), 10);
        assert_eq!(Sb7Mix::all().len(), 3);
    }

    #[test]
    fn single_threaded_steps_keep_graph_consistent() {
        let rt = TmRuntime::new();
        let workload = Sb7Workload::new(&rt, Sb7Config::tiny(), Sb7Mix::WriteDominated);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..400 {
            workload.step(&rt, 0, &mut rng);
        }
        workload.verify(&rt).expect("graph must stay consistent");
    }

    #[test]
    fn long_traversals_run_when_enabled() {
        let rt = TmRuntime::new();
        let config = Sb7Config {
            long_traversals: true,
            ..Sb7Config::tiny()
        };
        let workload = Sb7Workload::new(&rt, config, Sb7Mix::ReadDominated);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            workload.step(&rt, 0, &mut rng);
        }
        workload.verify(&rt).expect("graph must stay consistent");
        // Read operations (T1 included) run as lock-free read-only
        // transactions; updates take the read-write path. 200 read-heavy
        // steps must complete as one or the other.
        let stats = rt.stats();
        assert!(stats.ro_commits + stats.commits >= 200);
        assert!(
            stats.ro_commits > stats.commits,
            "a read-dominated mix must mostly take the read-only path"
        );
    }

    #[test]
    fn concurrent_steps_keep_graph_consistent() {
        let rt = TmRuntime::new();
        let workload: Arc<dyn TxWorkload> =
            Arc::new(Sb7Workload::new(&rt, Sb7Config::tiny(), Sb7Mix::ReadWrite));
        crate::harness::run_fixed_steps(&rt, &workload, 4, 150, 0xAB);
        workload.verify(&rt).expect("graph must stay consistent");
    }
}
