//! STMBench7 operations: short traversals, queries and structural
//! modifications (long traversals are off, as in the paper's runs).

use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;
use shrink_stm::{TVar, TmRuntime, Tx, TxRead, TxResult};

use super::{AssemblyChildren, AtomicPart, Sb7};

/// Executes one operation drawn from the benchmark's mix.
pub(crate) fn step(bench: &Arc<Sb7>, rt: &TmRuntime, rng: &mut StdRng) {
    let read_roll: u32 = rng.random_range(0..100);
    if read_roll < bench.mix.read_pct() {
        // STMBench7 mixes one long traversal into ~20 read operations when
        // they are enabled; the paper's runs keep them off.
        if bench.config.long_traversals && rng.random_range(0..20u32) == 0 {
            t1_long_traversal(bench, rt);
            return;
        }
        match rng.random_range(0..4u32) {
            0 => st_query_part(bench, rt, rng),
            1 => st_traverse_composite(bench, rt, rng),
            2 => st_assembly_path(bench, rt, rng),
            _ => op_scan_document(bench, rt, rng),
        }
    } else {
        match rng.random_range(0..5u32) {
            0 => op_update_part(bench, rt, rng),
            1 => sm1_add_part(bench, rt, rng),
            2 => sm2_remove_part(bench, rt, rng),
            3 => op_update_document(bench, rt, rng),
            _ => sm_swap_component(bench, rt, rng),
        }
    }
}

fn random_part_id(bench: &Sb7, rng: &mut StdRng) -> u64 {
    let ceiling = bench.next_part_id.load(Ordering::Relaxed).max(2);
    rng.random_range(1..ceiling)
}

fn random_composite(bench: &Sb7, rng: &mut StdRng) -> usize {
    rng.random_range(0..bench.composites.len())
}

/// OP1-style index query: look a part up and read its payload and
/// connections. Pure reads, so it takes the lock-free read-only path —
/// as do the other `st_`/`op_scan` operations below.
fn st_query_part(bench: &Arc<Sb7>, rt: &TmRuntime, rng: &mut StdRng) {
    let id = random_part_id(bench, rng);
    rt.read_only(|tx| {
        if bench.part_index.get(tx, id)?.is_some() {
            if let Some(part) = bench.registry.get(id) {
                let _ = tx.read(&part.x)?;
                let _ = tx.read(&part.y)?;
                let _ = tx.read(&part.build_date)?;
                let _ = tx.read(&part.to)?;
            }
        }
        Ok(())
    });
}

/// T6/ST-style traversal of one composite's atomic-part graph.
fn st_traverse_composite(bench: &Arc<Sb7>, rt: &TmRuntime, rng: &mut StdRng) {
    let cid = random_composite(bench, rng);
    let composite = Arc::clone(&bench.composites[cid]);
    rt.read_only(|tx| {
        let root = tx.read(&composite.root_part)?;
        let mut visited: HashSet<u64> = HashSet::new();
        let mut frontier = vec![root];
        let mut checksum: i64 = 0;
        while let Some(id) = frontier.pop() {
            if !visited.insert(id) || visited.len() > 256 {
                continue;
            }
            if let Some(part) = bench.registry.get(id) {
                checksum = checksum.wrapping_add(tx.read(&part.x)?);
                for next in tx.read(&part.to)? {
                    if !visited.contains(&next) {
                        frontier.push(next);
                    }
                }
            }
        }
        Ok(checksum)
    });
}

/// ST1-style walk from the design root to a base assembly, then into one of
/// its composites' documents.
fn st_assembly_path(bench: &Arc<Sb7>, rt: &TmRuntime, rng: &mut StdRng) {
    let turns: u64 = rng.random();
    rt.read_only(|tx| {
        let mut node = Arc::clone(&bench.design_root);
        let mut turn = turns;
        let base = loop {
            let _ = tx.read(&node.date)?;
            match &node.children {
                AssemblyChildren::Complex(children) => {
                    let pick = (turn % children.len() as u64) as usize;
                    turn /= children.len() as u64;
                    node = Arc::clone(&children[pick]);
                }
                AssemblyChildren::Base(bases) => {
                    break Arc::clone(&bases[(turn % bases.len() as u64) as usize]);
                }
            }
        };
        let components = tx.read(&base.components)?;
        if let Some(&cid) = components.first() {
            let composite = &bench.composites[cid as usize];
            let text = tx.read(&composite.doc_text)?;
            return Ok(text.len());
        }
        Ok(0)
    });
}

/// OP-style document scan.
fn op_scan_document(bench: &Arc<Sb7>, rt: &TmRuntime, rng: &mut StdRng) {
    let cid = random_composite(bench, rng);
    let composite = Arc::clone(&bench.composites[cid]);
    rt.read_only(|tx| {
        let text = tx.read(&composite.doc_text)?;
        Ok(text.bytes().filter(|&b| b == b'c').count())
    });
}

/// T2-style short update of one atomic part.
fn op_update_part(bench: &Arc<Sb7>, rt: &TmRuntime, rng: &mut StdRng) {
    let id = random_part_id(bench, rng);
    let stamp: u64 = rng.random_range(0..4096);
    rt.run(|tx| {
        if bench.part_index.get(tx, id)?.is_some() {
            if let Some(part) = bench.registry.get(id) {
                tx.modify(&part.x, |x| x + 1)?;
                tx.modify(&part.y, |y| y - 1)?;
                tx.write(&part.build_date, stamp)?;
            }
        }
        Ok(())
    });
}

/// SM1: create an atomic part, wire it into a composite and the index, and
/// stamp the assembly spine above a random base assembly.
fn sm1_add_part(bench: &Arc<Sb7>, rt: &TmRuntime, rng: &mut StdRng) {
    let cid = random_composite(bench, rng);
    let composite = Arc::clone(&bench.composites[cid]);
    let new_id = bench.next_part_id.fetch_add(1, Ordering::Relaxed);
    // Physical allocation outside the transaction; logical insertion inside.
    let part = Arc::new(AtomicPart {
        id: new_id,
        x: TVar::new(rng.random_range(0..1000)),
        y: TVar::new(rng.random_range(0..1000)),
        build_date: TVar::new(rng.random_range(0..4096)),
        to: TVar::new(Vec::new()),
    });
    bench.registry.publish(Arc::clone(&part));
    let turns: u64 = rng.random();
    rt.run(|tx| {
        let mut parts = tx.read(&composite.parts)?;
        let anchor = parts[(turns % parts.len() as u64) as usize];
        parts.push(new_id);
        tx.write(&composite.parts, parts)?;
        tx.write(&part.to, vec![anchor])?;
        // Link the anchor back so the new part is reachable.
        if let Some(anchor_part) = bench.registry.get(anchor) {
            let mut to = tx.read(&anchor_part.to)?;
            to.push(new_id);
            tx.write(&anchor_part.to, to)?;
        }
        bench.part_index.insert(tx, new_id, cid as u64)?;
        stamp_spine(bench, tx, turns)
    });
}

/// SM2: delete a non-root atomic part from a composite.
fn sm2_remove_part(bench: &Arc<Sb7>, rt: &TmRuntime, rng: &mut StdRng) {
    let cid = random_composite(bench, rng);
    let composite = Arc::clone(&bench.composites[cid]);
    let turns: u64 = rng.random();
    rt.run(|tx| {
        let mut parts = tx.read(&composite.parts)?;
        if parts.len() <= 1 {
            return Ok(());
        }
        let root = tx.read(&composite.root_part)?;
        let pick = (turns % parts.len() as u64) as usize;
        let victim = parts[pick];
        if victim == root {
            return Ok(());
        }
        parts.remove(pick);
        tx.write(&composite.parts, parts.clone())?;
        bench.part_index.remove(tx, victim)?;
        // Unlink every reference to the victim within the composite.
        for &id in &parts {
            if let Some(part) = bench.registry.get(id) {
                let to = tx.read(&part.to)?;
                if to.contains(&victim) {
                    let pruned: Vec<u64> = to.into_iter().filter(|&t| t != victim).collect();
                    tx.write(&part.to, pruned)?;
                }
            }
        }
        stamp_spine(bench, tx, turns)
    });
}

/// OP-style document rewrite.
fn op_update_document(bench: &Arc<Sb7>, rt: &TmRuntime, rng: &mut StdRng) {
    let cid = random_composite(bench, rng);
    let composite = Arc::clone(&bench.composites[cid]);
    let revision: u64 = rng.random();
    rt.run(|tx| {
        tx.write(
            &composite.doc_text,
            Arc::new(format!(
                "specification of composite part {} rev {revision}",
                composite.id
            )),
        )
    });
}

/// SM-style swap of one base assembly's component reference.
fn sm_swap_component(bench: &Arc<Sb7>, rt: &TmRuntime, rng: &mut StdRng) {
    let base = Arc::clone(&bench.base_assemblies[rng.random_range(0..bench.base_assemblies.len())]);
    let replacement = bench.composites[random_composite(bench, rng)].id;
    let turns: u64 = rng.random();
    rt.run(|tx| {
        let mut components = tx.read(&base.components)?;
        if components.is_empty() {
            return Ok(());
        }
        let slot = (turns % components.len() as u64) as usize;
        components[slot] = replacement;
        tx.write(&base.components, components)?;
        stamp_spine(bench, tx, turns)
    });
}

/// T1: the long traversal — walk the entire assembly tree and, for every
/// composite referenced by every base assembly, count its atomic parts.
/// One enormous read-only transaction touching most of the design; the
/// paper's figures all run with this operation disabled. Running it on the
/// lock-free path means it can never abort a writer, however long it takes
/// — it restarts itself on revalidation failure instead.
fn t1_long_traversal(bench: &Arc<Sb7>, rt: &TmRuntime) {
    rt.read_only(|tx| {
        fn walk(
            bench: &Arc<Sb7>,
            tx: &mut impl TxRead,
            node: &Arc<super::ComplexAssembly>,
        ) -> TxResult<usize> {
            let _ = tx.read(&node.date)?;
            let mut parts = 0;
            match &node.children {
                AssemblyChildren::Complex(children) => {
                    for child in children {
                        parts += walk(bench, tx, child)?;
                    }
                }
                AssemblyChildren::Base(bases) => {
                    for base in bases {
                        for cid in tx.read(&base.components)? {
                            let composite = &bench.composites[cid as usize];
                            parts += tx.read(&composite.parts)?.len();
                        }
                    }
                }
            }
            Ok(parts)
        }
        walk(bench, tx, &bench.design_root)
    });
}

/// Walks one root-to-leaf spine path, *reading* every assembly date (the
/// shared traversal footprint) and bumping only the leaf complex assembly's
/// date — structural modifications contend on the `fanout^(levels-1)` leaf
/// assemblies but not on the single root.
fn stamp_spine(bench: &Arc<Sb7>, tx: &mut Tx<'_>, turns: u64) -> TxResult<()> {
    let mut node = Arc::clone(&bench.design_root);
    let mut turn = turns;
    loop {
        match &node.children {
            AssemblyChildren::Complex(children) => {
                let _ = tx.read(&node.date)?;
                let pick = (turn % children.len() as u64) as usize;
                turn /= children.len() as u64;
                node = Arc::clone(&children[pick]);
            }
            AssemblyChildren::Base(_) => {
                return tx.modify(&node.date, |d| d + 1);
            }
        }
    }
}

/// Collects assembly ids depth-first for the uniqueness audit.
fn collect_assembly_ids(node: &Arc<super::ComplexAssembly>, out: &mut Vec<u64>) {
    out.push(node.id);
    match &node.children {
        AssemblyChildren::Complex(children) => {
            for child in children {
                collect_assembly_ids(child, out);
            }
        }
        AssemblyChildren::Base(bases) => {
            for base in bases {
                out.push(base.id);
            }
        }
    }
}

/// Full-graph consistency audit (one big transaction).
pub(crate) fn audit(bench: &Sb7, rt: &TmRuntime) -> Result<(), String> {
    // Structural checks outside the transaction: assembly ids are unique,
    // documents carry their composite's title, and the physical part
    // registry covers at least the logical population.
    let mut assembly_ids = Vec::new();
    collect_assembly_ids(&bench.design_root, &mut assembly_ids);
    let unique: HashSet<u64> = assembly_ids.iter().copied().collect();
    if unique.len() != assembly_ids.len() {
        return Err("duplicate assembly ids".to_string());
    }
    for composite in &bench.composites {
        if composite.doc_title != format!("composite-{}", composite.id) {
            return Err(format!(
                "composite {} has mismatched document title {}",
                composite.id, composite.doc_title
            ));
        }
    }
    rt.run(|tx| {
        let mut indexed_parts = 0usize;
        for composite in &bench.composites {
            let parts = tx.read(&composite.parts)?;
            if parts.is_empty() {
                return Ok(Err(format!("composite {} has no parts", composite.id)));
            }
            let root = tx.read(&composite.root_part)?;
            if !parts.contains(&root) {
                return Ok(Err(format!(
                    "composite {} root {root} not in its part list",
                    composite.id
                )));
            }
            let part_set: HashSet<u64> = parts.iter().copied().collect();
            if part_set.len() != parts.len() {
                return Ok(Err(format!(
                    "composite {} part list has duplicates",
                    composite.id
                )));
            }
            for &id in &parts {
                match bench.part_index.get(tx, id)? {
                    Some(owner) if owner == composite.id => {}
                    Some(owner) => {
                        return Ok(Err(format!(
                            "part {id} indexed under composite {owner}, expected {}",
                            composite.id
                        )))
                    }
                    None => return Ok(Err(format!("part {id} missing from index"))),
                }
                let part = match bench.registry.get(id) {
                    Some(p) => p,
                    None => return Ok(Err(format!("part {id} missing from registry"))),
                };
                for target in tx.read(&part.to)? {
                    if !part_set.contains(&target) {
                        return Ok(Err(format!(
                            "part {id} connects to {target} outside composite {}",
                            composite.id
                        )));
                    }
                }
            }
            indexed_parts += parts.len();
        }
        let index_len = bench.part_index.len(tx)?;
        if index_len != indexed_parts {
            return Ok(Err(format!(
                "index holds {index_len} parts, composites hold {indexed_parts}"
            )));
        }
        if bench.registry.physical_len() < indexed_parts {
            return Ok(Err(format!(
                "registry holds {} parts, fewer than the {indexed_parts} logically alive",
                bench.registry.physical_len()
            )));
        }
        // Base assemblies reference pool composites only.
        for base in &bench.base_assemblies {
            for cid in tx.read(&base.components)? {
                if cid as usize >= bench.composites.len() {
                    return Ok(Err(format!(
                        "base assembly {} references unknown composite {cid}",
                        base.id
                    )));
                }
            }
        }
        match bench.part_index.check_invariants(tx)? {
            Ok(_) => Ok(Ok(())),
            Err(e) => Ok(Err(format!("part index corrupt: {e}"))),
        }
    })
}
