//! Blocking transactional queues: the workloads `retry`/`or_else` unlock.
//!
//! [`TxQueue`] is a bounded multi-producer/multi-consumer FIFO built
//! entirely from `TVar`s: [`push`](TxQueue::push) blocks (via
//! [`Tx::retry`]) while the queue is full, [`pop`](TxQueue::pop) while it
//! is empty, and the `try_*` variants are *compositions* —
//! `or_else(pop, return None)` — rather than separate implementations,
//! which is the point of composable blocking: one blocking primitive, every
//! polling/timeout/alternative flavour derived from it (DESIGN.md §9).
//!
//! [`QueueWorkload`] drives a producers-versus-consumers churn over one
//! queue for the throughput harness and the `bench_retry` ledger, in two
//! modes: [`QueueMode::Blocking`] (consumers park in `retry`) and
//! [`QueueMode::Spin`] (consumers poll `try_pop` and yield — the
//! abort-and-retry-blind baseline the paper's overloaded Figure 9 regime
//! punishes).
//!
//! [`Tx::retry`]: shrink_stm::Tx::retry

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use shrink_stm::{TVar, TmRuntime, Tx, TxResult, TxValue};

use crate::harness::TxWorkload;

/// A bounded, blocking, transactional MPMC FIFO queue.
///
/// All operations are transactional methods taking a [`Tx`]: they compose
/// with any other transactional work — move an item between two queues
/// atomically, pop-and-update an account in one transaction, wrap a `pop`
/// in [`Tx::or_else`] for a non-blocking variant.
///
/// # Examples
///
/// ```
/// use shrink_stm::{atomically, TmRuntime};
/// use shrink_workloads::TxQueue;
///
/// let rt = TmRuntime::new();
/// let q: TxQueue<u32> = TxQueue::new(4);
/// atomically(&rt, |tx| q.push(tx, 7));
/// let got = atomically(&rt, |tx| q.pop(tx));
/// assert_eq!(got, 7);
/// ```
pub struct TxQueue<T: TxValue> {
    slots: Vec<TVar<Option<T>>>,
    /// Index of the next element to pop (monotonic; slot = `head % cap`).
    head: TVar<u64>,
    /// Index of the next free slot to push into (monotonic).
    tail: TVar<u64>,
}

impl<T: TxValue> TxQueue<T> {
    /// Creates an empty queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity queue can never accept");
        TxQueue {
            slots: (0..capacity).map(|_| TVar::new(None)).collect(),
            head: TVar::new(0),
            tail: TVar::new(0),
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of items currently queued, within this transaction's
    /// snapshot.
    ///
    /// # Errors
    ///
    /// Aborts propagate from the underlying reads.
    pub fn len(&self, tx: &mut Tx<'_>) -> TxResult<usize> {
        let head = tx.read(&self.head)?;
        let tail = tx.read(&self.tail)?;
        Ok((tail - head) as usize)
    }

    /// True when the queue holds nothing, within this transaction's
    /// snapshot.
    ///
    /// # Errors
    ///
    /// Aborts propagate from the underlying reads.
    pub fn is_empty(&self, tx: &mut Tx<'_>) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Enqueues `item`, **blocking** (via [`Tx::retry`]) while the queue is
    /// full: the transaction parks until a consumer's commit frees a slot.
    ///
    /// # Errors
    ///
    /// [`AbortReason::Retry`](shrink_stm::AbortReason::Retry) when full
    /// (caught by an enclosing [`Tx::or_else`], or parked by the runtime);
    /// other aborts propagate from the underlying reads and writes.
    pub fn push(&self, tx: &mut Tx<'_>, item: T) -> TxResult<()> {
        let head = tx.read(&self.head)?;
        let tail = tx.read(&self.tail)?;
        if (tail - head) as usize == self.slots.len() {
            return tx.retry();
        }
        tx.write(&self.slots[tail as usize % self.slots.len()], Some(item))?;
        tx.write(&self.tail, tail + 1)
    }

    /// Dequeues the oldest item, **blocking** (via [`Tx::retry`]) while the
    /// queue is empty: the transaction parks until a producer's commit
    /// fills a slot.
    ///
    /// # Errors
    ///
    /// [`AbortReason::Retry`](shrink_stm::AbortReason::Retry) when empty;
    /// other aborts propagate from the underlying reads and writes.
    pub fn pop(&self, tx: &mut Tx<'_>) -> TxResult<T> {
        let head = tx.read(&self.head)?;
        let tail = tx.read(&self.tail)?;
        if head == tail {
            return tx.retry();
        }
        let slot = &self.slots[head as usize % self.slots.len()];
        let item = tx.read(slot)?.expect("occupied slot holds a value");
        tx.write(slot, None)?;
        tx.write(&self.head, head + 1)?;
        Ok(item)
    }

    /// Non-blocking push, derived from the blocking one by composition:
    /// `or_else(push, return false)`.
    ///
    /// # Errors
    ///
    /// Aborts propagate from the underlying operations; a full queue is
    /// `Ok(false)`, not an error.
    pub fn try_push(&self, tx: &mut Tx<'_>, item: T) -> TxResult<bool> {
        tx.or_else(
            |tx| self.push(tx, item.clone()).map(|()| true),
            |_tx| Ok(false),
        )
    }

    /// Non-blocking pop, derived from the blocking one by composition:
    /// `or_else(pop, return None)`.
    ///
    /// # Errors
    ///
    /// Aborts propagate from the underlying operations; an empty queue is
    /// `Ok(None)`, not an error.
    pub fn try_pop(&self, tx: &mut Tx<'_>) -> TxResult<Option<T>> {
        tx.or_else(|tx| self.pop(tx).map(Some), |_tx| Ok(None))
    }

    /// Pops from `self`, falling back to `other` when `self` is empty, and
    /// blocking only when **both** are — `or_else` composing two blocking
    /// pops, parked on the union of both queues' read sets.
    ///
    /// # Errors
    ///
    /// [`AbortReason::Retry`](shrink_stm::AbortReason::Retry) when both
    /// queues are empty; other aborts propagate.
    pub fn pop_either(&self, tx: &mut Tx<'_>, other: &TxQueue<T>) -> TxResult<T> {
        tx.or_else(|tx| self.pop(tx), |tx| other.pop(tx))
    }

    /// Sum of all queued items outside any transaction (single-variable
    /// atomicity only, like [`TVar::snapshot`]) — for post-run conservation
    /// audits once the workers have been joined.
    pub fn drain_snapshot(&self) -> Vec<T> {
        let head = self.head.snapshot();
        let tail = self.tail.snapshot();
        (head..tail)
            .map(|i| {
                self.slots[i as usize % self.slots.len()]
                    .snapshot()
                    .expect("occupied slot holds a value")
            })
            .collect()
    }
}

impl<T: TxValue> fmt::Debug for TxQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxQueue")
            .field("capacity", &self.slots.len())
            .finish()
    }
}

/// How [`QueueWorkload`] consumers wait on an empty queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueMode {
    /// Consumers block in [`Tx::retry`](shrink_stm::Tx::retry): parked on
    /// the queue's stripes, woken by a producer's commit.
    Blocking,
    /// Consumers poll [`TxQueue::try_pop`] and `yield_now` between misses —
    /// the spin-retry baseline `bench_retry` measures the parked path
    /// against. Every miss is a committed empty-handed transaction plus a
    /// yield, the exact overloaded-regime behaviour the paper's Figure 9
    /// punishes.
    Spin,
}

impl fmt::Display for QueueMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueMode::Blocking => f.write_str("blocking"),
            QueueMode::Spin => f.write_str("spin"),
        }
    }
}

/// A multi-producer/multi-consumer churn over one [`TxQueue`]: even-indexed
/// workers produce random values, odd-indexed workers consume them.
///
/// Progress is reported through [`items_moved`](QueueWorkload::items_moved)
/// (transfers, not commits — the [`QueueMode::Spin`] baseline also commits
/// on every empty-handed poll, so raw commit counts are not comparable
/// across modes) and audited by [`verify`](QueueWorkload::verify):
/// everything produced is either consumed or still queued, by count and by
/// value sum.
pub struct QueueWorkload {
    queue: TxQueue<u64>,
    mode: QueueMode,
    /// Attempt budget per step: bounds how long a blocked step can park so
    /// harness workers always observe the stop flag between steps.
    attempts_per_step: u64,
    produced: AtomicU64,
    produced_sum: AtomicU64,
    consumed: AtomicU64,
    consumed_sum: AtomicU64,
    /// `yield_now` calls spent by spin-mode consumers between misses.
    spin_yields: AtomicU64,
}

impl QueueWorkload {
    /// Creates the workload over a fresh queue of `capacity`.
    #[must_use]
    pub fn new(capacity: usize, mode: QueueMode) -> Self {
        QueueWorkload {
            queue: TxQueue::new(capacity),
            mode,
            attempts_per_step: 8,
            produced: AtomicU64::new(0),
            produced_sum: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
            consumed_sum: AtomicU64::new(0),
            spin_yields: AtomicU64::new(0),
        }
    }

    /// Items successfully moved through the queue (consumer side).
    pub fn items_moved(&self) -> u64 {
        self.consumed.load(Ordering::Relaxed)
    }

    /// Items produced into the queue.
    pub fn items_produced(&self) -> u64 {
        self.produced.load(Ordering::Relaxed)
    }

    /// Yields burned by spin-mode consumers (always 0 in blocking mode —
    /// the parked path has no yield loop).
    pub fn spin_yields(&self) -> u64 {
        self.spin_yields.load(Ordering::Relaxed)
    }

    /// The underlying queue, for post-run audits.
    pub fn queue(&self) -> &TxQueue<u64> {
        &self.queue
    }
}

impl fmt::Debug for QueueWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueueWorkload")
            .field("mode", &self.mode)
            .field("capacity", &self.queue.capacity())
            .field("moved", &self.items_moved())
            .finish()
    }
}

impl TxWorkload for QueueWorkload {
    fn step(&self, rt: &TmRuntime, worker: usize, rng: &mut StdRng) {
        if worker % 2 == 0 {
            // Producer: blocking push of a random value, bounded so a full
            // queue with stalled consumers cannot wedge the harness stop
            // protocol. Counters move only after the push committed.
            let v = rand::Rng::random::<u32>(rng) as u64;
            let pushed = rt
                .run_budgeted(self.attempts_per_step, |tx| self.queue.push(tx, v))
                .is_ok();
            if pushed {
                self.produced.fetch_add(1, Ordering::Relaxed);
                self.produced_sum.fetch_add(v, Ordering::Relaxed);
            }
        } else {
            match self.mode {
                QueueMode::Blocking => {
                    if let Ok(v) = rt.run_budgeted(self.attempts_per_step, |tx| self.queue.pop(tx))
                    {
                        self.consumed.fetch_add(1, Ordering::Relaxed);
                        self.consumed_sum.fetch_add(v, Ordering::Relaxed);
                    }
                }
                QueueMode::Spin => {
                    // Poll-and-yield: the blind abort-and-retry regime.
                    for _ in 0..self.attempts_per_step {
                        let got = rt.run(|tx| self.queue.try_pop(tx));
                        if let Some(v) = got {
                            self.consumed.fetch_add(1, Ordering::Relaxed);
                            self.consumed_sum.fetch_add(v, Ordering::Relaxed);
                            break;
                        }
                        self.spin_yields.fetch_add(1, Ordering::Relaxed);
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    fn verify(&self, _rt: &TmRuntime) -> Result<(), String> {
        let produced = self.produced.load(Ordering::Relaxed);
        let consumed = self.consumed.load(Ordering::Relaxed);
        let residue = self.queue.drain_snapshot();
        if consumed + residue.len() as u64 != produced {
            return Err(format!(
                "queue lost items: produced {produced}, consumed {consumed}, \
                 {} still queued",
                residue.len()
            ));
        }
        let expected_total = self.produced_sum.load(Ordering::Relaxed);
        let residue_sum: u64 = residue.iter().sum();
        let total = self.consumed_sum.load(Ordering::Relaxed) + residue_sum;
        if total != expected_total {
            return Err(format!(
                "queue transferred wrong values: sum {total} != expected {expected_total}"
            ));
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        match self.mode {
            QueueMode::Blocking => "queue-blocking",
            QueueMode::Spin => "queue-spin",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_fixed_steps;
    use shrink_stm::atomically;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let rt = TmRuntime::new();
        let q = TxQueue::new(3);
        for i in 0..3u64 {
            atomically(&rt, |tx| q.push(tx, i));
        }
        for i in 0..3u64 {
            assert_eq!(atomically(&rt, |tx| q.pop(tx)), i);
        }
    }

    #[test]
    fn try_variants_compose_from_blocking_ones() {
        let rt = TmRuntime::new();
        let q: TxQueue<u64> = TxQueue::new(1);
        assert_eq!(atomically(&rt, |tx| q.try_pop(tx)), None);
        assert!(atomically(&rt, |tx| q.try_push(tx, 1)));
        assert!(!atomically(&rt, |tx| q.try_push(tx, 2)), "full: refused");
        assert_eq!(atomically(&rt, |tx| q.try_pop(tx)), Some(1));
        assert_eq!(rt.stats().retry_waits, 0, "or_else absorbed every retry");
        assert_eq!(atomically(&rt, |tx| q.len(tx)), 0);
        assert!(atomically(&rt, |tx| q.is_empty(tx)));
    }

    #[test]
    fn a_retried_branch_leaks_no_slot_writes() {
        // The nasty checkpoint shape: a branch that *did* write the slot
        // and tail, and only then retried (here via a composed predicate).
        // The fallback must observe the queue exactly as before the branch.
        let rt = TmRuntime::new();
        let q: TxQueue<u64> = TxQueue::new(2);
        atomically(&rt, |tx| q.push(tx, 10));
        // Compose: push, then require the queue be empty (it is not) —
        // branch retries after writing, fallback sees pristine state.
        let len = rt.run(|tx| {
            tx.or_else(
                |tx| {
                    q.push(tx, 99)?;
                    tx.retry()
                },
                |tx| q.len(tx),
            )
        });
        assert_eq!(len, 1, "the retried branch's push must not leak");
        assert_eq!(atomically(&rt, |tx| q.pop(tx)), 10);
        assert_eq!(atomically(&rt, |tx| q.try_pop(tx)), None);
    }

    #[test]
    fn pop_either_prefers_first_then_falls_back() {
        let rt = TmRuntime::new();
        let a: TxQueue<u64> = TxQueue::new(2);
        let b: TxQueue<u64> = TxQueue::new(2);
        atomically(&rt, |tx| b.push(tx, 5));
        assert_eq!(atomically(&rt, |tx| a.pop_either(tx, &b)), 5);
        atomically(&rt, |tx| a.push(tx, 1));
        atomically(&rt, |tx| b.push(tx, 2));
        assert_eq!(atomically(&rt, |tx| a.pop_either(tx, &b)), 1);
    }

    #[test]
    fn blocking_pop_is_woken_by_a_push() {
        let rt = TmRuntime::new();
        let q: Arc<TxQueue<u64>> = Arc::new(TxQueue::new(4));
        let consumer = {
            let rt = rt.clone();
            let q = Arc::clone(&q);
            std::thread::spawn(move || atomically(&rt, |tx| q.pop(tx)))
        };
        while rt.retry_stats().parked_waits == 0 {
            std::thread::yield_now();
        }
        atomically(&rt, |tx| q.push(tx, 77));
        assert_eq!(consumer.join().unwrap(), 77);
        assert!(rt.retry_stats().woken >= 1, "{:?}", rt.retry_stats());
    }

    #[test]
    fn workload_conserves_items_in_both_modes() {
        for mode in [QueueMode::Blocking, QueueMode::Spin] {
            let rt = TmRuntime::builder()
                .retry_wait(std::time::Duration::from_millis(1))
                .build();
            let workload: Arc<dyn TxWorkload> = Arc::new(QueueWorkload::new(8, mode));
            run_fixed_steps(&rt, &workload, 4, 200, 42);
            workload.verify(&rt).unwrap();
        }
    }
}
