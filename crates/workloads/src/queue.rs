//! Blocking transactional queues: the workloads `retry`/`or_else` unlock.
//!
//! [`TxQueue`] is a bounded multi-producer/multi-consumer FIFO built
//! entirely from `TVar`s: [`push`](TxQueue::push) blocks (via
//! [`Tx::retry`]) while the queue is full, [`pop`](TxQueue::pop) while it
//! is empty, and the `try_*` variants are *compositions* —
//! `or_else(pop, return None)` — rather than separate implementations,
//! which is the point of composable blocking: one blocking primitive, every
//! polling/timeout/alternative flavour derived from it (DESIGN.md §9).
//!
//! [`QueueWorkload`] drives a producers-versus-consumers churn over one
//! queue for the throughput harness and the `bench_retry` ledger, in two
//! modes: [`QueueMode::Blocking`] (consumers park in `retry`) and
//! [`QueueMode::Spin`] (consumers poll `try_pop` and yield — the
//! abort-and-retry-blind baseline the paper's overloaded Figure 9 regime
//! punishes).
//!
//! [`AsyncQueueChurn`] is the same MPMC churn with **tasks instead of
//! threads**: every producer and consumer is a plain future composed from
//! [`atomically_async`], so a blocked `pop` suspends its task on the retry
//! waitlist rather than parking an OS thread. The queue type is untouched —
//! transaction bodies stay synchronous closures — which is the whole point
//! of the pluggable-parker refactor (DESIGN.md §12). The churn is
//! executor-agnostic: it hands out boxed tasks and the caller spawns them
//! (`bench_async` uses the vendored `futures::executor::ThreadPool`).
//!
//! [`Tx::retry`]: shrink_stm::Tx::retry

use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::EventCount;
use rand::rngs::StdRng;
use shrink_stm::future::atomically_async;
use shrink_stm::{TVar, TmRuntime, Tx, TxResult, TxValue};

use crate::harness::TxWorkload;

/// A bounded, blocking, transactional MPMC FIFO queue.
///
/// All operations are transactional methods taking a [`Tx`]: they compose
/// with any other transactional work — move an item between two queues
/// atomically, pop-and-update an account in one transaction, wrap a `pop`
/// in [`Tx::or_else`] for a non-blocking variant.
///
/// # Examples
///
/// ```
/// use shrink_stm::{atomically, TmRuntime};
/// use shrink_workloads::TxQueue;
///
/// let rt = TmRuntime::new();
/// let q: TxQueue<u32> = TxQueue::new(4);
/// atomically(&rt, |tx| q.push(tx, 7));
/// let got = atomically(&rt, |tx| q.pop(tx));
/// assert_eq!(got, 7);
/// ```
pub struct TxQueue<T: TxValue> {
    slots: Vec<TVar<Option<T>>>,
    /// Index of the next element to pop (monotonic; slot = `head % cap`).
    head: TVar<u64>,
    /// Index of the next free slot to push into (monotonic).
    tail: TVar<u64>,
}

impl<T: TxValue> TxQueue<T> {
    /// Creates an empty queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity queue can never accept");
        TxQueue {
            slots: (0..capacity).map(|_| TVar::new(None)).collect(),
            head: TVar::new(0),
            tail: TVar::new(0),
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of items currently queued, within this transaction's
    /// snapshot.
    ///
    /// # Errors
    ///
    /// Aborts propagate from the underlying reads.
    pub fn len(&self, tx: &mut Tx<'_>) -> TxResult<usize> {
        let head = tx.read(&self.head)?;
        let tail = tx.read(&self.tail)?;
        Ok((tail - head) as usize)
    }

    /// True when the queue holds nothing, within this transaction's
    /// snapshot.
    ///
    /// # Errors
    ///
    /// Aborts propagate from the underlying reads.
    pub fn is_empty(&self, tx: &mut Tx<'_>) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Enqueues `item`, **blocking** (via [`Tx::retry`]) while the queue is
    /// full: the transaction parks until a consumer's commit frees a slot.
    ///
    /// # Errors
    ///
    /// [`AbortReason::Retry`](shrink_stm::AbortReason::Retry) when full
    /// (caught by an enclosing [`Tx::or_else`], or parked by the runtime);
    /// other aborts propagate from the underlying reads and writes.
    pub fn push(&self, tx: &mut Tx<'_>, item: T) -> TxResult<()> {
        let head = tx.read(&self.head)?;
        let tail = tx.read(&self.tail)?;
        if (tail - head) as usize == self.slots.len() {
            return tx.retry();
        }
        tx.write(&self.slots[tail as usize % self.slots.len()], Some(item))?;
        tx.write(&self.tail, tail + 1)
    }

    /// Dequeues the oldest item, **blocking** (via [`Tx::retry`]) while the
    /// queue is empty: the transaction parks until a producer's commit
    /// fills a slot.
    ///
    /// # Errors
    ///
    /// [`AbortReason::Retry`](shrink_stm::AbortReason::Retry) when empty;
    /// other aborts propagate from the underlying reads and writes.
    pub fn pop(&self, tx: &mut Tx<'_>) -> TxResult<T> {
        let head = tx.read(&self.head)?;
        let tail = tx.read(&self.tail)?;
        if head == tail {
            return tx.retry();
        }
        let slot = &self.slots[head as usize % self.slots.len()];
        let item = tx.read(slot)?.expect("occupied slot holds a value");
        tx.write(slot, None)?;
        tx.write(&self.head, head + 1)?;
        Ok(item)
    }

    /// Non-blocking push, derived from the blocking one by composition:
    /// `or_else(push, return false)`.
    ///
    /// # Errors
    ///
    /// Aborts propagate from the underlying operations; a full queue is
    /// `Ok(false)`, not an error.
    pub fn try_push(&self, tx: &mut Tx<'_>, item: T) -> TxResult<bool> {
        tx.or_else(
            |tx| self.push(tx, item.clone()).map(|()| true),
            |_tx| Ok(false),
        )
    }

    /// Non-blocking pop, derived from the blocking one by composition:
    /// `or_else(pop, return None)`.
    ///
    /// # Errors
    ///
    /// Aborts propagate from the underlying operations; an empty queue is
    /// `Ok(None)`, not an error.
    pub fn try_pop(&self, tx: &mut Tx<'_>) -> TxResult<Option<T>> {
        tx.or_else(|tx| self.pop(tx).map(Some), |_tx| Ok(None))
    }

    /// Pops from `self`, falling back to `other` when `self` is empty, and
    /// blocking only when **both** are — `or_else` composing two blocking
    /// pops, parked on the union of both queues' read sets.
    ///
    /// # Errors
    ///
    /// [`AbortReason::Retry`](shrink_stm::AbortReason::Retry) when both
    /// queues are empty; other aborts propagate.
    pub fn pop_either(&self, tx: &mut Tx<'_>, other: &TxQueue<T>) -> TxResult<T> {
        tx.or_else(|tx| self.pop(tx), |tx| other.pop(tx))
    }

    /// Sum of all queued items outside any transaction (single-variable
    /// atomicity only, like [`TVar::snapshot`]) — for post-run conservation
    /// audits once the workers have been joined.
    pub fn drain_snapshot(&self) -> Vec<T> {
        let head = self.head.snapshot();
        let tail = self.tail.snapshot();
        (head..tail)
            .map(|i| {
                self.slots[i as usize % self.slots.len()]
                    .snapshot()
                    .expect("occupied slot holds a value")
            })
            .collect()
    }
}

impl<T: TxValue> fmt::Debug for TxQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxQueue")
            .field("capacity", &self.slots.len())
            .finish()
    }
}

/// How [`QueueWorkload`] consumers wait on an empty queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueMode {
    /// Consumers block in [`Tx::retry`](shrink_stm::Tx::retry): parked on
    /// the queue's stripes, woken by a producer's commit.
    Blocking,
    /// Consumers poll [`TxQueue::try_pop`] and `yield_now` between misses —
    /// the spin-retry baseline `bench_retry` measures the parked path
    /// against. Every miss is a committed empty-handed transaction plus a
    /// yield, the exact overloaded-regime behaviour the paper's Figure 9
    /// punishes.
    Spin,
}

impl fmt::Display for QueueMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueMode::Blocking => f.write_str("blocking"),
            QueueMode::Spin => f.write_str("spin"),
        }
    }
}

/// A multi-producer/multi-consumer churn over one [`TxQueue`]: even-indexed
/// workers produce random values, odd-indexed workers consume them.
///
/// Progress is reported through [`items_moved`](QueueWorkload::items_moved)
/// (transfers, not commits — the [`QueueMode::Spin`] baseline also commits
/// on every empty-handed poll, so raw commit counts are not comparable
/// across modes) and audited by [`verify`](QueueWorkload::verify):
/// everything produced is either consumed or still queued, by count and by
/// value sum.
pub struct QueueWorkload {
    queue: TxQueue<u64>,
    mode: QueueMode,
    /// Attempt budget per step: bounds how long a blocked step can park so
    /// harness workers always observe the stop flag between steps.
    attempts_per_step: u64,
    produced: AtomicU64,
    produced_sum: AtomicU64,
    consumed: AtomicU64,
    consumed_sum: AtomicU64,
    /// `yield_now` calls spent by spin-mode consumers between misses.
    spin_yields: AtomicU64,
}

impl QueueWorkload {
    /// Creates the workload over a fresh queue of `capacity`.
    #[must_use]
    pub fn new(capacity: usize, mode: QueueMode) -> Self {
        QueueWorkload {
            queue: TxQueue::new(capacity),
            mode,
            attempts_per_step: 8,
            produced: AtomicU64::new(0),
            produced_sum: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
            consumed_sum: AtomicU64::new(0),
            spin_yields: AtomicU64::new(0),
        }
    }

    /// Items successfully moved through the queue (consumer side).
    pub fn items_moved(&self) -> u64 {
        self.consumed.load(Ordering::Relaxed)
    }

    /// Items produced into the queue.
    pub fn items_produced(&self) -> u64 {
        self.produced.load(Ordering::Relaxed)
    }

    /// Yields burned by spin-mode consumers (always 0 in blocking mode —
    /// the parked path has no yield loop).
    pub fn spin_yields(&self) -> u64 {
        self.spin_yields.load(Ordering::Relaxed)
    }

    /// The underlying queue, for post-run audits.
    pub fn queue(&self) -> &TxQueue<u64> {
        &self.queue
    }
}

impl fmt::Debug for QueueWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueueWorkload")
            .field("mode", &self.mode)
            .field("capacity", &self.queue.capacity())
            .field("moved", &self.items_moved())
            .finish()
    }
}

impl TxWorkload for QueueWorkload {
    fn step(&self, rt: &TmRuntime, worker: usize, rng: &mut StdRng) {
        if worker % 2 == 0 {
            // Producer: blocking push of a random value, bounded so a full
            // queue with stalled consumers cannot wedge the harness stop
            // protocol. Counters move only after the push committed.
            let v = rand::Rng::random::<u32>(rng) as u64;
            let pushed = rt
                .run_budgeted(self.attempts_per_step, |tx| self.queue.push(tx, v))
                .is_ok();
            if pushed {
                self.produced.fetch_add(1, Ordering::Relaxed);
                self.produced_sum.fetch_add(v, Ordering::Relaxed);
            }
        } else {
            match self.mode {
                QueueMode::Blocking => {
                    if let Ok(v) = rt.run_budgeted(self.attempts_per_step, |tx| self.queue.pop(tx))
                    {
                        self.consumed.fetch_add(1, Ordering::Relaxed);
                        self.consumed_sum.fetch_add(v, Ordering::Relaxed);
                    }
                }
                QueueMode::Spin => {
                    // Poll-and-yield: the blind abort-and-retry regime.
                    for _ in 0..self.attempts_per_step {
                        let got = rt.run(|tx| self.queue.try_pop(tx));
                        if let Some(v) = got {
                            self.consumed.fetch_add(1, Ordering::Relaxed);
                            self.consumed_sum.fetch_add(v, Ordering::Relaxed);
                            break;
                        }
                        self.spin_yields.fetch_add(1, Ordering::Relaxed);
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    fn verify(&self, _rt: &TmRuntime) -> Result<(), String> {
        let produced = self.produced.load(Ordering::Relaxed);
        let consumed = self.consumed.load(Ordering::Relaxed);
        let residue = self.queue.drain_snapshot();
        if consumed + residue.len() as u64 != produced {
            return Err(format!(
                "queue lost items: produced {produced}, consumed {consumed}, \
                 {} still queued",
                residue.len()
            ));
        }
        let expected_total = self.produced_sum.load(Ordering::Relaxed);
        let residue_sum: u64 = residue.iter().sum();
        let total = self.consumed_sum.load(Ordering::Relaxed) + residue_sum;
        if total != expected_total {
            return Err(format!(
                "queue transferred wrong values: sum {total} != expected {expected_total}"
            ));
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        match self.mode {
            QueueMode::Blocking => "queue-blocking",
            QueueMode::Spin => "queue-spin",
        }
    }
}

/// A boxed task produced by [`AsyncQueueChurn`]: spawn it on any executor.
pub type ChurnTask = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// The MPMC queue churn as **futures**: N producer tasks push a fixed
/// number of items each, M consumer tasks pop fixed quotas summing to the
/// total, and a blocked `pop`/`push` suspends its task (no thread parks).
///
/// Logical concurrency is decoupled from OS threads: ten thousand consumer
/// tasks run fine on an 8-worker pool, because a consumer waiting on an
/// empty queue costs a registered parker, not a stack. Conservation is
/// audited by [`verify`](AsyncQueueChurn::verify) exactly like the
/// thread-based [`QueueWorkload`]: everything produced is consumed, by
/// count and by value sum (consumers drain the queue completely — quotas
/// cover the full production).
///
/// # Examples
///
/// ```
/// use futures::executor::ThreadPool;
/// use shrink_stm::TmRuntime;
/// use shrink_workloads::AsyncQueueChurn;
///
/// let rt = TmRuntime::new();
/// let pool = ThreadPool::builder().pool_size(4).create().unwrap();
/// let churn = AsyncQueueChurn::new(8, 4, 16, 100);
/// for task in churn.tasks(&rt) {
///     pool.spawn_ok(task);
/// }
/// churn.wait_finished();
/// churn.verify().unwrap();
/// ```
pub struct AsyncQueueChurn {
    queue: Arc<TxQueue<u64>>,
    producers: usize,
    consumers: usize,
    items_per_producer: u64,
    produced: AtomicU64,
    produced_sum: AtomicU64,
    consumed: AtomicU64,
    consumed_sum: AtomicU64,
    /// Tasks (producer and consumer) that ran to completion.
    finished: AtomicU64,
    /// Advanced once per task completion; [`wait_finished`] parks on it.
    ///
    /// [`wait_finished`]: AsyncQueueChurn::wait_finished
    done: EventCount,
}

impl AsyncQueueChurn {
    /// Creates a churn over a fresh queue of `capacity`: `producers` tasks
    /// pushing `items_per_producer` items each, `consumers` tasks popping
    /// quotas that exactly cover the total.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    #[must_use]
    pub fn new(
        capacity: usize,
        producers: usize,
        consumers: usize,
        items_per_producer: u64,
    ) -> Arc<Self> {
        assert!(producers > 0 && consumers > 0 && items_per_producer > 0);
        Arc::new(AsyncQueueChurn {
            queue: Arc::new(TxQueue::new(capacity)),
            producers,
            consumers,
            items_per_producer,
            produced: AtomicU64::new(0),
            produced_sum: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
            consumed_sum: AtomicU64::new(0),
            finished: AtomicU64::new(0),
            done: EventCount::new(),
        })
    }

    /// Total tasks the churn consists of.
    pub fn task_count(&self) -> u64 {
        (self.producers + self.consumers) as u64
    }

    /// Items moved end to end so far (consumer side).
    pub fn items_moved(&self) -> u64 {
        self.consumed.load(Ordering::Relaxed)
    }

    /// Builds every producer and consumer task, ready to spawn. Each task
    /// is an ordinary future: a loop of `atomically_async(..).await`
    /// transactions, suspending wherever the thread version would park.
    pub fn tasks(self: &Arc<Self>, rt: &TmRuntime) -> Vec<ChurnTask> {
        let total = self.producers as u64 * self.items_per_producer;
        let base_quota = total / self.consumers as u64;
        let remainder = total % self.consumers as u64;
        let mut tasks: Vec<ChurnTask> = Vec::with_capacity(self.producers + self.consumers);
        for p in 0..self.producers {
            tasks.push(Box::pin(Arc::clone(self).produce(rt.clone(), p as u64)));
        }
        for c in 0..self.consumers {
            // Spread the remainder over the first `remainder` consumers.
            let quota = base_quota + u64::from((c as u64) < remainder);
            tasks.push(Box::pin(Arc::clone(self).consume(rt.clone(), quota)));
        }
        tasks
    }

    async fn produce(self: Arc<Self>, rt: TmRuntime, seed: u64) {
        // Deterministic per-producer value stream (splitmix-style), so the
        // value-sum audit catches duplicated or invented items.
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        for _ in 0..self.items_per_producer {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = s >> 33;
            let queue = Arc::clone(&self.queue);
            atomically_async(&rt, move |tx| queue.push(tx, v)).await;
            self.produced.fetch_add(1, Ordering::Relaxed);
            self.produced_sum.fetch_add(v, Ordering::Relaxed);
        }
        self.finish_task();
    }

    async fn consume(self: Arc<Self>, rt: TmRuntime, quota: u64) {
        for _ in 0..quota {
            let queue = Arc::clone(&self.queue);
            let v = atomically_async(&rt, move |tx| queue.pop(tx)).await;
            self.consumed.fetch_add(1, Ordering::Relaxed);
            self.consumed_sum.fetch_add(v, Ordering::Relaxed);
        }
        self.finish_task();
    }

    fn finish_task(&self) {
        self.finished.fetch_add(1, Ordering::Release);
        self.done.advance();
    }

    /// Parks the calling thread until every task has finished. The churn
    /// deadlocks only if tasks were dropped unrun (quotas then never
    /// complete) — spawn everything [`tasks`](AsyncQueueChurn::tasks)
    /// returned before waiting.
    pub fn wait_finished(&self) {
        loop {
            let observed = self.done.version();
            if self.finished.load(Ordering::Acquire) >= self.task_count() {
                return;
            }
            self.done.wait_while_eq(observed, None);
        }
    }

    /// Post-run conservation audit: every produced item consumed (the
    /// quotas drain the queue), counts and value sums matching.
    ///
    /// # Errors
    ///
    /// A message describing the lost or invented items.
    pub fn verify(&self) -> Result<(), String> {
        let produced = self.produced.load(Ordering::Relaxed);
        let consumed = self.consumed.load(Ordering::Relaxed);
        let expected = self.producers as u64 * self.items_per_producer;
        if produced != expected || consumed != expected {
            return Err(format!(
                "async churn lost items: produced {produced}, consumed {consumed}, \
                 expected {expected}"
            ));
        }
        let produced_sum = self.produced_sum.load(Ordering::Relaxed);
        let consumed_sum = self.consumed_sum.load(Ordering::Relaxed);
        if produced_sum != consumed_sum {
            return Err(format!(
                "async churn transferred wrong values: consumed sum {consumed_sum} \
                 != produced sum {produced_sum}"
            ));
        }
        let residue = self.queue.drain_snapshot();
        if !residue.is_empty() {
            return Err(format!("{} items still queued after drain", residue.len()));
        }
        Ok(())
    }
}

impl fmt::Debug for AsyncQueueChurn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AsyncQueueChurn")
            .field("capacity", &self.queue.capacity())
            .field("producers", &self.producers)
            .field("consumers", &self.consumers)
            .field("moved", &self.items_moved())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_fixed_steps;
    use shrink_stm::atomically;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let rt = TmRuntime::new();
        let q = TxQueue::new(3);
        for i in 0..3u64 {
            atomically(&rt, |tx| q.push(tx, i));
        }
        for i in 0..3u64 {
            assert_eq!(atomically(&rt, |tx| q.pop(tx)), i);
        }
    }

    #[test]
    fn try_variants_compose_from_blocking_ones() {
        let rt = TmRuntime::new();
        let q: TxQueue<u64> = TxQueue::new(1);
        assert_eq!(atomically(&rt, |tx| q.try_pop(tx)), None);
        assert!(atomically(&rt, |tx| q.try_push(tx, 1)));
        assert!(!atomically(&rt, |tx| q.try_push(tx, 2)), "full: refused");
        assert_eq!(atomically(&rt, |tx| q.try_pop(tx)), Some(1));
        assert_eq!(rt.stats().retry_waits, 0, "or_else absorbed every retry");
        assert_eq!(atomically(&rt, |tx| q.len(tx)), 0);
        assert!(atomically(&rt, |tx| q.is_empty(tx)));
    }

    #[test]
    fn a_retried_branch_leaks_no_slot_writes() {
        // The nasty checkpoint shape: a branch that *did* write the slot
        // and tail, and only then retried (here via a composed predicate).
        // The fallback must observe the queue exactly as before the branch.
        let rt = TmRuntime::new();
        let q: TxQueue<u64> = TxQueue::new(2);
        atomically(&rt, |tx| q.push(tx, 10));
        // Compose: push, then require the queue be empty (it is not) —
        // branch retries after writing, fallback sees pristine state.
        let len = rt.run(|tx| {
            tx.or_else(
                |tx| {
                    q.push(tx, 99)?;
                    tx.retry()
                },
                |tx| q.len(tx),
            )
        });
        assert_eq!(len, 1, "the retried branch's push must not leak");
        assert_eq!(atomically(&rt, |tx| q.pop(tx)), 10);
        assert_eq!(atomically(&rt, |tx| q.try_pop(tx)), None);
    }

    #[test]
    fn pop_either_prefers_first_then_falls_back() {
        let rt = TmRuntime::new();
        let a: TxQueue<u64> = TxQueue::new(2);
        let b: TxQueue<u64> = TxQueue::new(2);
        atomically(&rt, |tx| b.push(tx, 5));
        assert_eq!(atomically(&rt, |tx| a.pop_either(tx, &b)), 5);
        atomically(&rt, |tx| a.push(tx, 1));
        atomically(&rt, |tx| b.push(tx, 2));
        assert_eq!(atomically(&rt, |tx| a.pop_either(tx, &b)), 1);
    }

    #[test]
    fn blocking_pop_is_woken_by_a_push() {
        let rt = TmRuntime::new();
        let q: Arc<TxQueue<u64>> = Arc::new(TxQueue::new(4));
        let consumer = {
            let rt = rt.clone();
            let q = Arc::clone(&q);
            std::thread::spawn(move || atomically(&rt, |tx| q.pop(tx)))
        };
        while rt.retry_stats().parked_waits == 0 {
            std::thread::yield_now();
        }
        atomically(&rt, |tx| q.push(tx, 77));
        assert_eq!(consumer.join().unwrap(), 77);
        assert!(rt.retry_stats().woken >= 1, "{:?}", rt.retry_stats());
    }

    #[test]
    fn workload_conserves_items_in_both_modes() {
        for mode in [QueueMode::Blocking, QueueMode::Spin] {
            let rt = TmRuntime::builder()
                .retry_wait(std::time::Duration::from_millis(1))
                .build();
            let workload: Arc<dyn TxWorkload> = Arc::new(QueueWorkload::new(8, mode));
            run_fixed_steps(&rt, &workload, 4, 200, 42);
            workload.verify(&rt).unwrap();
        }
    }

    #[test]
    fn async_churn_conserves_items_with_more_tasks_than_workers() {
        // 64 tasks on 4 workers: most consumers spend most of their life
        // suspended on the waitlist, which is exactly the regime the
        // pluggable parker exists for.
        let rt = TmRuntime::new();
        let pool = futures::executor::ThreadPool::builder()
            .pool_size(4)
            .create()
            .unwrap();
        let churn = AsyncQueueChurn::new(4, 32, 32, 50);
        for task in churn.tasks(&rt) {
            pool.spawn_ok(task);
        }
        churn.wait_finished();
        churn.verify().unwrap();
        let stats = rt.retry_stats();
        assert!(
            stats.async_parks >= 1,
            "a 4-slot queue under 64 tasks must have suspended someone: {stats:?}"
        );
        assert_eq!(
            stats.async_parks, stats.async_woken,
            "every suspension resumed (none cancelled): {stats:?}"
        );
        assert_eq!(rt.retry_waiters(), 0, "no parker left registered");
    }

    #[test]
    fn async_churn_runs_on_block_on_when_tasks_fit_one_thread() {
        // A single producer and consumer can interleave through one
        // blocking driver only if neither ever truly blocks — give the
        // queue enough capacity that the producer finishes first.
        let rt = TmRuntime::new();
        let churn = AsyncQueueChurn::new(64, 1, 1, 64);
        let mut tasks = churn.tasks(&rt);
        let consumer = tasks.pop().unwrap();
        let producer = tasks.pop().unwrap();
        futures::executor::block_on(producer);
        futures::executor::block_on(consumer);
        churn.wait_finished();
        churn.verify().unwrap();
    }
}
