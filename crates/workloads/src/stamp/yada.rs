//! `yada` — Delaunay mesh refinement (Ruppert's algorithm, STAMP-style).
//!
//! STAMP's yada repeatedly takes a *bad* triangle from a shared work heap,
//! gathers the surrounding cavity, re-triangulates it and pushes any newly
//! bad triangles back. Transactions combine a hot work queue, a multi-
//! element cavity read set and a multi-element write set. This port keeps
//! that exact transaction shape over a simplified mesh: triangles live in a
//! transactional registry keyed by id, cavities are the triangle's
//! neighbour ring, and refinement replaces the cavity by freshly allocated
//! triangles whose "badness" decays with subdivision depth — guaranteeing
//! termination just as Ruppert's angle bound does.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::Rng;
use shrink_stm::{TVar, TmRuntime, TxResult};

use crate::harness::TxWorkload;
use crate::rbtree::TxRbTree;

/// Configuration of the yada workload.
#[derive(Clone, Copy, Debug)]
pub struct YadaConfig {
    /// Initial number of bad triangles.
    pub initial_bad: u64,
    /// Subdivision depth at which triangles are always good.
    pub max_depth: u64,
    /// Cavity size (triangles read/replaced per refinement).
    pub cavity: usize,
}

impl Default for YadaConfig {
    fn default() -> Self {
        YadaConfig {
            initial_bad: 64,
            max_depth: 4,
            cavity: 4,
        }
    }
}

/// The yada workload.
///
/// `triangles` maps triangle id → subdivision depth (present = alive);
/// `work` is the shared bad-triangle pool.
pub struct Yada {
    config: YadaConfig,
    triangles: TxRbTree,
    work: TVar<Vec<u64>>,
    next_id: AtomicU64,
    refined: AtomicU64,
}

impl fmt::Debug for Yada {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Yada")
            .field("config", &self.config)
            .field("refined", &self.refined.load(Ordering::Relaxed))
            .finish()
    }
}

impl Yada {
    /// Builds the initial mesh with `initial_bad` bad triangles at depth 0.
    pub fn new(rt: &TmRuntime, config: YadaConfig) -> Self {
        let triangles = TxRbTree::new();
        let initial: Vec<u64> = (1..=config.initial_bad).collect();
        for &id in &initial {
            rt.run(|tx| triangles.insert(tx, id, 0));
        }
        let work = TVar::new(initial);
        Yada {
            config,
            triangles,
            work,
            next_id: AtomicU64::new(config.initial_bad + 1),
            refined: AtomicU64::new(0),
        }
    }

    /// Triangles refined so far.
    pub fn refined_count(&self) -> u64 {
        self.refined.load(Ordering::Relaxed)
    }

    /// True when no bad triangles remain.
    pub fn converged(&self, rt: &TmRuntime) -> bool {
        rt.run(|tx| Ok(tx.read(&self.work)?.is_empty()))
    }
}

impl TxWorkload for Yada {
    fn step(&self, rt: &TmRuntime, _worker: usize, rng: &mut StdRng) {
        // Pre-allocate ids for the replacement triangles outside the
        // transaction (the id counter is not transactional state).
        let replacement_ids: Vec<u64> = (0..self.config.cavity + 1)
            .map(|_| self.next_id.fetch_add(1, Ordering::Relaxed))
            .collect();
        let pick: u64 = rng.random();
        let refined = rt.run(|tx| -> TxResult<bool> {
            // Take a bad triangle from the shared pool.
            let mut work = tx.read(&self.work)?;
            if work.is_empty() {
                return Ok(false);
            }
            let slot = (pick % work.len() as u64) as usize;
            let bad = work.swap_remove(slot);

            let depth = match self.triangles.get(tx, bad)? {
                Some(d) => d,
                None => {
                    // Already consumed by a neighbouring cavity; just drop
                    // the stale work item.
                    tx.write(&self.work, work)?;
                    return Ok(false);
                }
            };

            // Gather the cavity: neighbouring alive triangles by id
            // proximity (our simplified adjacency).
            let mut cavity = vec![bad];
            let mut probe = bad;
            while cavity.len() < self.config.cavity {
                probe = probe.saturating_sub(1);
                if probe == 0 {
                    break;
                }
                if self.triangles.get(tx, probe)?.is_some() && !cavity.contains(&probe) {
                    cavity.push(probe);
                }
            }

            // Retriangulate: remove the cavity, insert replacements one
            // level deeper; deeper-than-threshold triangles are good.
            for &t in &cavity {
                self.triangles.remove(tx, t)?;
                work.retain(|&w| w != t);
            }
            let new_depth = depth + 1;
            for &id in &replacement_ids {
                self.triangles.insert(tx, id, new_depth)?;
                if new_depth < self.config.max_depth {
                    work.push(id);
                }
            }
            tx.write(&self.work, work)?;
            Ok(true)
        });
        if refined {
            self.refined.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn verify(&self, rt: &TmRuntime) -> Result<(), String> {
        rt.run(|tx| {
            // Every queued work item must reference an alive triangle with
            // refinable depth, and no alive triangle exceeds max depth.
            let work = tx.read(&self.work)?;
            for &id in &work {
                match self.triangles.get(tx, id)? {
                    None => return Ok(Err(format!("work item {id} references dead triangle"))),
                    Some(d) if d >= self.config.max_depth => {
                        return Ok(Err(format!("work item {id} at terminal depth {d}")))
                    }
                    Some(_) => {}
                }
            }
            for id in self.triangles.keys(tx)? {
                let d = self.triangles.get(tx, id)?.expect("listed key");
                if d > self.config.max_depth {
                    return Ok(Err(format!("triangle {id} beyond max depth: {d}")));
                }
            }
            match self.triangles.check_invariants(tx)? {
                Ok(_) => Ok(Ok(())),
                Err(e) => Ok(Err(format!("triangle registry corrupt: {e}"))),
            }
        })
    }

    fn name(&self) -> &'static str {
        "yada"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn refinement_terminates_at_max_depth() {
        let rt = TmRuntime::new();
        let w = Yada::new(
            &rt,
            YadaConfig {
                initial_bad: 8,
                max_depth: 3,
                cavity: 3,
            },
        );
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..5000 {
            w.step(&rt, 0, &mut rng);
            if w.converged(&rt) {
                break;
            }
        }
        assert!(w.converged(&rt), "refinement must drain the work pool");
        w.verify(&rt).unwrap();
        assert!(w.refined_count() > 0);
    }

    #[test]
    fn concurrent_refinement_stays_consistent() {
        let rt = TmRuntime::new();
        let w: Arc<dyn TxWorkload> = Arc::new(Yada::new(&rt, YadaConfig::default()));
        crate::harness::run_fixed_steps(&rt, &w, 4, 60, 17);
        w.verify(&rt).unwrap();
    }
}
