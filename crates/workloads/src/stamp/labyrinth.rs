//! `labyrinth` — parallel maze routing (Lee's algorithm, STAMP-style).
//!
//! Each transaction copies the grid (a large read set), computes a route
//! between two free endpoints, and claims the route's cells (a multi-cell
//! write set). Transactions are long, so conflicts — two routes crossing —
//! are expensive, which is the workload's defining character.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::Rng;
use shrink_stm::{TVar, TmRuntime, TxResult};

use crate::harness::TxWorkload;

/// Configuration of the labyrinth workload.
#[derive(Clone, Copy, Debug)]
pub struct LabyrinthConfig {
    /// Grid width.
    pub width: usize,
    /// Grid height.
    pub height: usize,
}

impl Default for LabyrinthConfig {
    fn default() -> Self {
        LabyrinthConfig {
            width: 24,
            height: 24,
        }
    }
}

/// The labyrinth workload: a grid of cells, 0 = free, otherwise the id of
/// the path occupying the cell.
pub struct Labyrinth {
    config: LabyrinthConfig,
    grid: Vec<TVar<u64>>,
    next_path: AtomicU64,
    routed: AtomicU64,
    failed: AtomicU64,
}

impl fmt::Debug for Labyrinth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Labyrinth")
            .field("config", &self.config)
            .field("routed", &self.routed.load(Ordering::Relaxed))
            .finish()
    }
}

impl Labyrinth {
    /// Creates an empty grid.
    pub fn new(config: LabyrinthConfig) -> Self {
        Labyrinth {
            grid: (0..config.width * config.height)
                .map(|_| TVar::new(0))
                .collect(),
            config,
            next_path: AtomicU64::new(1),
            routed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        }
    }

    fn at(&self, x: usize, y: usize) -> &TVar<u64> {
        &self.grid[y * self.config.width + x]
    }

    /// An L-shaped candidate route from `(x0,y0)` to `(x1,y1)`.
    fn l_route(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> Vec<(usize, usize)> {
        let mut cells = Vec::new();
        let mut x = x0;
        while x != x1 {
            cells.push((x, y0));
            x = if x < x1 { x + 1 } else { x - 1 };
        }
        let mut y = y0;
        while y != y1 {
            cells.push((x1, y));
            y = if y < y1 { y + 1 } else { y - 1 };
        }
        cells.push((x1, y1));
        cells
    }

    /// Successfully routed paths.
    pub fn routed_count(&self) -> u64 {
        self.routed.load(Ordering::Relaxed)
    }

    /// Routing attempts that found no free route.
    pub fn failed_count(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }
}

impl TxWorkload for Labyrinth {
    fn step(&self, rt: &TmRuntime, _worker: usize, rng: &mut StdRng) {
        let (w, h) = (self.config.width, self.config.height);
        let (x0, y0) = (rng.random_range(0..w), rng.random_range(0..h));
        let (x1, y1) = (rng.random_range(0..w), rng.random_range(0..h));
        let path_id = self.next_path.fetch_add(1, Ordering::Relaxed);
        let routed = rt.run(|tx| -> TxResult<bool> {
            // Grid copy: STAMP's labyrinth reads the whole grid into a
            // private copy before routing — the long read set is the point.
            let mut occupied = vec![false; w * h];
            for (i, cell) in self.grid.iter().enumerate() {
                occupied[i] = tx.read(cell)? != 0;
            }
            // Try the two L-shaped routes between the endpoints.
            let candidates = [self.l_route(x0, y0, x1, y1), self.l_route(x1, y1, x0, y0)];
            for route in &candidates {
                if route.iter().all(|&(x, y)| !occupied[y * w + x]) {
                    for &(x, y) in route {
                        tx.write(self.at(x, y), path_id)?;
                    }
                    return Ok(true);
                }
            }
            Ok(false)
        });
        if routed {
            self.routed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn verify(&self, rt: &TmRuntime) -> Result<(), String> {
        // Each path id must occupy a 4-connected set of cells.
        let (w, h) = (self.config.width, self.config.height);
        let cells: Vec<u64> = rt.run(|tx| {
            let mut out = Vec::with_capacity(w * h);
            for cell in &self.grid {
                out.push(tx.read(cell)?);
            }
            Ok(out)
        });
        let mut by_path: std::collections::HashMap<u64, Vec<(usize, usize)>> =
            std::collections::HashMap::new();
        for y in 0..h {
            for x in 0..w {
                let id = cells[y * w + x];
                if id != 0 {
                    by_path.entry(id).or_default().push((x, y));
                }
            }
        }
        for (id, members) in &by_path {
            // Flood fill from the first member must reach all members.
            let mut seen = std::collections::HashSet::new();
            let mut stack = vec![members[0]];
            while let Some((x, y)) = stack.pop() {
                if !seen.insert((x, y)) {
                    continue;
                }
                let neighbours = [
                    (x.wrapping_sub(1), y),
                    (x + 1, y),
                    (x, y.wrapping_sub(1)),
                    (x, y + 1),
                ];
                for &(nx, ny) in &neighbours {
                    if nx < w && ny < h && cells[ny * w + nx] == *id && !seen.contains(&(nx, ny)) {
                        stack.push((nx, ny));
                    }
                }
            }
            if seen.len() != members.len() {
                return Err(format!(
                    "path {id} is disconnected: {} of {} cells reachable",
                    seen.len(),
                    members.len()
                ));
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "labyrinth"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn routes_are_connected_and_disjoint() {
        let rt = TmRuntime::new();
        let w = Labyrinth::new(LabyrinthConfig {
            width: 12,
            height: 12,
        });
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..40 {
            w.step(&rt, 0, &mut rng);
        }
        assert!(w.routed_count() > 0, "some routes must succeed");
        w.verify(&rt).unwrap();
    }

    #[test]
    fn concurrent_routing_never_crosses_paths() {
        let rt = TmRuntime::new();
        let w: Arc<dyn TxWorkload> = Arc::new(Labyrinth::new(LabyrinthConfig {
            width: 16,
            height: 16,
        }));
        crate::harness::run_fixed_steps(&rt, &w, 4, 30, 8);
        w.verify(&rt).unwrap();
    }
}
