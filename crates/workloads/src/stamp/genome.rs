//! `genome` — gene sequencing by segment deduplication and overlap
//! matching.
//!
//! STAMP's genome reconstructs a reference string from overlapping
//! segments: phase 1 deduplicates segments into a hash set, phase 2 links
//! each segment to its unique successor. Transactions are short set/table
//! operations with moderate contention on the shared structures — exactly
//! the access pattern reproduced here: a transactional set of segment
//! keys plus a transactional link table, fed from a seeded synthetic
//! genome.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::Rng;
use shrink_stm::TmRuntime;

use crate::harness::TxWorkload;
use crate::rbtree::TxRbTree;

/// Configuration of the genome workload.
#[derive(Clone, Copy, Debug)]
pub struct GenomeConfig {
    /// Length of the synthetic reference genome.
    pub genome_len: u64,
    /// Segment length.
    pub segment_len: u64,
    /// Segments processed per transaction batch.
    pub batch: usize,
}

impl Default for GenomeConfig {
    fn default() -> Self {
        GenomeConfig {
            genome_len: 4096,
            segment_len: 16,
            batch: 4,
        }
    }
}

/// The genome workload.
pub struct Genome {
    config: GenomeConfig,
    /// Segment start offset → 1 (the dedup set).
    segments: TxRbTree,
    /// Segment start offset → successor offset (the assembled chain).
    links: TxRbTree,
    processed: AtomicUsize,
}

impl fmt::Debug for Genome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Genome")
            .field("config", &self.config)
            .field("processed", &self.processed.load(Ordering::Relaxed))
            .finish()
    }
}

impl Genome {
    /// Creates the workload (no pre-population; segments arrive as work).
    pub fn new(config: GenomeConfig) -> Self {
        Genome {
            config,
            segments: TxRbTree::new(),
            links: TxRbTree::new(),
            processed: AtomicUsize::new(0),
        }
    }

    fn segment_start(&self, rng: &mut StdRng) -> u64 {
        let max = self.config.genome_len - self.config.segment_len;
        rng.random_range(0..=max)
    }
}

impl TxWorkload for Genome {
    fn step(&self, rt: &TmRuntime, _worker: usize, rng: &mut StdRng) {
        // Phase-1 style: deduplicate a batch of sampled segments.
        let starts: Vec<u64> = (0..self.config.batch)
            .map(|_| self.segment_start(rng))
            .collect();
        rt.run(|tx| {
            for &s in &starts {
                self.segments.insert(tx, s, 1)?;
            }
            Ok(())
        });
        // Phase-2 style: link one known segment to its overlap successor if
        // both have been observed.
        let anchor = self.segment_start(rng);
        let overlap = self.config.segment_len / 2;
        rt.run(|tx| {
            if self.segments.contains(tx, anchor)? {
                let successor = anchor + overlap;
                if successor + self.config.segment_len <= self.config.genome_len
                    && self.segments.contains(tx, successor)?
                {
                    self.links.insert(tx, anchor, successor)?;
                }
            }
            Ok(())
        });
        self.processed.fetch_add(1, Ordering::Relaxed);
    }

    fn verify(&self, rt: &TmRuntime) -> Result<(), String> {
        rt.run(|tx| {
            // Every link must connect two deduplicated segments with the
            // fixed overlap.
            let overlap = self.config.segment_len / 2;
            for from in self.links.keys(tx)? {
                let to = self.links.get(tx, from)?.expect("key just listed");
                if to != from + overlap {
                    return Ok(Err(format!("link {from}->{to} has wrong overlap")));
                }
                if !self.segments.contains(tx, from)? || !self.segments.contains(tx, to)? {
                    return Ok(Err(format!("link {from}->{to} references unknown segment")));
                }
            }
            match self.segments.check_invariants(tx)? {
                Ok(_) => Ok(Ok(())),
                Err(e) => Ok(Err(format!("segment set corrupt: {e}"))),
            }
        })
    }

    fn name(&self) -> &'static str {
        "genome"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn links_respect_overlap_invariant() {
        let rt = TmRuntime::new();
        let g = Genome::new(GenomeConfig {
            genome_len: 256,
            segment_len: 8,
            batch: 4,
        });
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..300 {
            g.step(&rt, 0, &mut rng);
        }
        g.verify(&rt).unwrap();
    }

    #[test]
    fn concurrent_workers_build_consistent_tables() {
        let rt = TmRuntime::new();
        let g: Arc<dyn TxWorkload> = Arc::new(Genome::new(GenomeConfig::default()));
        crate::harness::run_fixed_steps(&rt, &g, 4, 100, 5);
        g.verify(&rt).unwrap();
    }
}
