//! `kmeans` — iterative clustering with transactional centroid updates.
//!
//! STAMP's kmeans assigns points to their nearest centroid and accumulates
//! per-centroid sums inside small transactions. Contention is set by the
//! number of clusters: the *high* configuration uses few clusters (every
//! update hits a hot centroid), *low* uses many.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shrink_stm::{TVar, TmRuntime, TxResult};

use crate::harness::TxWorkload;

const DIM: usize = 4;

/// Per-centroid transactional accumulator.
#[derive(Clone, Debug, Default, PartialEq)]
struct Centroid {
    sum: [f64; DIM],
    count: u64,
}

/// Configuration of the kmeans workload.
#[derive(Clone, Copy, Debug)]
pub struct KmeansConfig {
    /// Number of clusters (small = high contention).
    pub clusters: usize,
    /// Number of synthetic points.
    pub points: usize,
    /// Points processed per transaction.
    pub batch: usize,
}

impl KmeansConfig {
    /// STAMP's `kmeans-high` analogue: few clusters, hot centroids.
    pub fn high_contention() -> Self {
        KmeansConfig {
            clusters: 4,
            points: 2048,
            batch: 4,
        }
    }

    /// STAMP's `kmeans-low` analogue: many clusters.
    pub fn low_contention() -> Self {
        KmeansConfig {
            clusters: 64,
            points: 2048,
            batch: 4,
        }
    }
}

/// The kmeans workload.
pub struct Kmeans {
    config: KmeansConfig,
    points: Vec<[f64; DIM]>,
    centers: Vec<[f64; DIM]>,
    accumulators: Vec<TVar<Centroid>>,
    label: &'static str,
}

impl fmt::Debug for Kmeans {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kmeans")
            .field("clusters", &self.config.clusters)
            .field("points", &self.points.len())
            .finish()
    }
}

impl Kmeans {
    /// Creates the workload with seeded synthetic points.
    pub fn new(config: KmeansConfig, label: &'static str) -> Self {
        let mut rng = StdRng::seed_from_u64(0x4B17);
        let centers: Vec<[f64; DIM]> = (0..config.clusters)
            .map(|_| std::array::from_fn(|_| rng.random_range(-10.0..10.0)))
            .collect();
        // Points scatter around the centers.
        let points: Vec<[f64; DIM]> = (0..config.points)
            .map(|i| {
                let c = centers[i % centers.len()];
                std::array::from_fn(|d| c[d] + rng.random_range(-1.0..1.0))
            })
            .collect();
        Kmeans {
            config,
            points,
            centers,
            accumulators: (0..config.clusters)
                .map(|_| TVar::new(Centroid::default()))
                .collect(),
            label,
        }
    }

    fn nearest_center(&self, p: &[f64; DIM]) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, c) in self.centers.iter().enumerate() {
            let d: f64 = (0..DIM).map(|k| (p[k] - c[k]).powi(2)).sum();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Sum of per-centroid point counts.
    pub fn assigned_total(&self, rt: &TmRuntime) -> u64 {
        rt.run(|tx| {
            let mut total = 0;
            for acc in &self.accumulators {
                total += tx.read(acc)?.count;
            }
            Ok(total)
        })
    }
}

impl TxWorkload for Kmeans {
    fn step(&self, rt: &TmRuntime, _worker: usize, rng: &mut StdRng) {
        // Assign a batch of points; the distance computation runs outside
        // the transaction (it reads only immutable data), the accumulator
        // update inside — mirroring STAMP's structure.
        let picks: Vec<usize> = (0..self.config.batch)
            .map(|_| rng.random_range(0..self.points.len()))
            .collect();
        let assignments: Vec<(usize, [f64; DIM])> = picks
            .iter()
            .map(|&i| (self.nearest_center(&self.points[i]), self.points[i]))
            .collect();
        rt.run(|tx| -> TxResult<()> {
            for (cluster, p) in &assignments {
                let mut acc = tx.read(&self.accumulators[*cluster])?;
                for (s, v) in acc.sum.iter_mut().zip(p) {
                    *s += v;
                }
                acc.count += 1;
                tx.write(&self.accumulators[*cluster], acc)?;
            }
            Ok(())
        });
    }

    fn verify(&self, rt: &TmRuntime) -> Result<(), String> {
        // Counts must be non-negative and means must stay within the data
        // bounding box — accumulator corruption would break both.
        rt.run(|tx| {
            for (i, acc) in self.accumulators.iter().enumerate() {
                let c = tx.read(acc)?;
                if c.count > 0 {
                    for d in 0..DIM {
                        let mean = c.sum[d] / c.count as f64;
                        if !(-12.0..=12.0).contains(&mean) {
                            return Ok(Err(format!("centroid {i} mean {mean} out of data range")));
                        }
                    }
                }
            }
            Ok(Ok(()))
        })
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn assignments_accumulate_exactly() {
        let rt = TmRuntime::new();
        let w = Kmeans::new(KmeansConfig::high_contention(), "kmeans-high");
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            w.step(&rt, 0, &mut rng);
        }
        assert_eq!(w.assigned_total(&rt), 400, "4 points per step * 100 steps");
        w.verify(&rt).unwrap();
    }

    #[test]
    fn concurrent_accumulation_loses_nothing() {
        let rt = TmRuntime::new();
        let w = Arc::new(Kmeans::new(KmeansConfig::low_contention(), "kmeans-low"));
        let dyn_w: Arc<dyn TxWorkload> = w.clone();
        crate::harness::run_fixed_steps(&rt, &dyn_w, 4, 50, 1);
        assert_eq!(w.assigned_total(&rt), 4 * 50 * 4);
        w.verify(&rt).unwrap();
    }
}
