//! `vacation` — a travel-reservation database.
//!
//! STAMP's vacation runs an in-memory database of cars, flights and rooms
//! plus customer records, all stored in red-black trees. Client
//! transactions browse a window of items and make the cheapest available
//! reservation. Contention is governed by how broad the query window is
//! relative to the table: the *high* configuration queries a wide window of
//! a small table, *low* a narrow window of a large one.

use std::fmt;

use rand::rngs::StdRng;
use rand::Rng;
use shrink_stm::{TmRuntime, Tx, TxResult};

use crate::harness::TxWorkload;
use crate::rbtree::TxRbTree;

/// Item availability is packed into the tree's `u64` value:
/// high 32 bits = total capacity, low 32 bits = reserved count.
fn pack(total: u32, reserved: u32) -> u64 {
    ((total as u64) << 32) | reserved as u64
}

fn unpack(value: u64) -> (u32, u32) {
    ((value >> 32) as u32, value as u32)
}

/// Configuration of the vacation workload.
#[derive(Clone, Copy, Debug)]
pub struct VacationConfig {
    /// Rows per table.
    pub rows: u64,
    /// Items examined per reservation query.
    pub query_window: u64,
    /// Capacity per item.
    pub capacity: u32,
    /// Percentage of steps that only browse.
    pub browse_pct: u32,
}

impl VacationConfig {
    /// STAMP's `vacation-high` analogue.
    pub fn high_contention() -> Self {
        VacationConfig {
            rows: 64,
            query_window: 8,
            capacity: 1 << 30,
            browse_pct: 20,
        }
    }

    /// STAMP's `vacation-low` analogue.
    pub fn low_contention() -> Self {
        VacationConfig {
            rows: 1024,
            query_window: 4,
            capacity: 1 << 30,
            browse_pct: 60,
        }
    }
}

/// The three reservation tables.
const TABLES: usize = 3;

/// The vacation workload.
pub struct Vacation {
    config: VacationConfig,
    /// cars, flights, rooms: item id → packed (total, reserved).
    tables: [TxRbTree; TABLES],
    /// customer id → accumulated bill.
    customers: TxRbTree,
    label: &'static str,
}

impl fmt::Debug for Vacation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vacation")
            .field("rows", &self.config.rows)
            .field("label", &self.label)
            .finish()
    }
}

impl Vacation {
    /// Builds and populates the database.
    pub fn new(rt: &TmRuntime, config: VacationConfig, label: &'static str) -> Self {
        let tables = [TxRbTree::new(), TxRbTree::new(), TxRbTree::new()];
        for table in &tables {
            for id in 0..config.rows {
                rt.run(|tx| table.insert(tx, id, pack(config.capacity, 0)));
            }
        }
        Vacation {
            config,
            tables,
            customers: TxRbTree::new(),
            label,
        }
    }

    /// Price of an item — a fixed function of its table and id, so billing
    /// can be audited.
    fn price(table: usize, id: u64) -> u64 {
        100 + (table as u64) * 17 + id % 37
    }

    fn reserve(&self, tx: &mut Tx<'_>, customer: u64, window: &[(usize, u64)]) -> TxResult<()> {
        // Browse the window and pick the cheapest available item.
        let mut best: Option<(usize, u64, u64)> = None;
        for &(table, id) in window {
            if let Some(value) = self.tables[table].get(tx, id)? {
                let (total, reserved) = unpack(value);
                if reserved < total {
                    let price = Self::price(table, id);
                    if best.is_none_or(|(_, _, p)| price < p) {
                        best = Some((table, id, price));
                    }
                }
            }
        }
        if let Some((table, id, price)) = best {
            let value = self.tables[table].get(tx, id)?.expect("item just seen");
            let (total, reserved) = unpack(value);
            self.tables[table].insert(tx, id, pack(total, reserved + 1))?;
            let bill = self.customers.get(tx, customer)?.unwrap_or(0);
            self.customers.insert(tx, customer, bill + price)?;
        }
        Ok(())
    }

    /// Sum of all customer bills.
    pub fn total_billed(&self, rt: &TmRuntime) -> u64 {
        rt.run(|tx| {
            let mut total = 0;
            for customer in self.customers.keys(tx)? {
                total += self.customers.get(tx, customer)?.unwrap_or(0);
            }
            Ok(total)
        })
    }
}

impl TxWorkload for Vacation {
    fn step(&self, rt: &TmRuntime, worker: usize, rng: &mut StdRng) {
        let window: Vec<(usize, u64)> = (0..self.config.query_window)
            .map(|_| {
                (
                    rng.random_range(0..TABLES),
                    rng.random_range(0..self.config.rows),
                )
            })
            .collect();
        if rng.random_range(0..100) < self.config.browse_pct {
            // Browse-only: read the window, no writes.
            rt.run(|tx| {
                let mut available = 0u64;
                for &(table, id) in &window {
                    if let Some(value) = self.tables[table].get(tx, id)? {
                        let (total, reserved) = unpack(value);
                        if reserved < total {
                            available += 1;
                        }
                    }
                }
                Ok(available)
            });
        } else {
            let customer = worker as u64;
            rt.run(|tx| self.reserve(tx, customer, &window));
        }
    }

    fn verify(&self, rt: &TmRuntime) -> Result<(), String> {
        rt.run(|tx| {
            // Reservations never exceed capacity, and the billed total
            // equals the sum over items of reserved * price.
            let mut expected_billing = 0u64;
            for (t, table) in self.tables.iter().enumerate() {
                for id in table.keys(tx)? {
                    let (total, reserved) = unpack(table.get(tx, id)?.expect("listed key"));
                    if reserved > total {
                        return Ok(Err(format!(
                            "table {t} item {id}: reserved {reserved} > capacity {total}"
                        )));
                    }
                    expected_billing += reserved as u64 * Self::price(t, id);
                }
            }
            let mut billed = 0u64;
            for customer in self.customers.keys(tx)? {
                billed += self.customers.get(tx, customer)?.unwrap_or(0);
            }
            if billed != expected_billing {
                return Ok(Err(format!(
                    "billing mismatch: customers hold {billed}, reservations imply {expected_billing}"
                )));
            }
            Ok(Ok(()))
        })
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn packing_round_trips() {
        let v = pack(7, 3);
        assert_eq!(unpack(v), (7, 3));
        assert_eq!(unpack(pack(u32::MAX, 0)), (u32::MAX, 0));
    }

    #[test]
    fn reservations_bill_exactly() {
        let rt = TmRuntime::new();
        let w = Vacation::new(&rt, VacationConfig::high_contention(), "vacation-high");
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..300 {
            w.step(&rt, 0, &mut rng);
        }
        w.verify(&rt).unwrap();
        assert!(w.total_billed(&rt) > 0, "reservations must have been made");
    }

    #[test]
    fn concurrent_reservations_stay_consistent() {
        let rt = TmRuntime::new();
        let w: Arc<dyn TxWorkload> = Arc::new(Vacation::new(
            &rt,
            VacationConfig::low_contention(),
            "vacation-low",
        ));
        crate::harness::run_fixed_steps(&rt, &w, 4, 100, 13);
        w.verify(&rt).unwrap();
    }
}
