//! `bayes` — Bayesian network structure learning by hill climbing.
//!
//! STAMP's bayes learns a dependency graph over variables from sample
//! data: workers score candidate edge insertions against the data (a long
//! non-transactional computation) and then atomically apply the best one —
//! reading the affected variable's parent set, checking the acyclicity and
//! degree constraints, and updating the network plus the global score.
//! Transactions are few but heavyweight, with a hot global score variable.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shrink_stm::{TVar, TmRuntime, TxResult};

use crate::harness::TxWorkload;

/// Configuration of the bayes workload.
#[derive(Clone, Copy, Debug)]
pub struct BayesConfig {
    /// Number of network variables.
    pub variables: usize,
    /// Number of synthetic data rows scored per candidate.
    pub rows: usize,
    /// Maximum parents per variable.
    pub max_parents: usize,
}

impl Default for BayesConfig {
    fn default() -> Self {
        BayesConfig {
            variables: 16,
            rows: 256,
            max_parents: 4,
        }
    }
}

/// The bayes workload.
pub struct Bayes {
    config: BayesConfig,
    /// Synthetic observations: one bitset per row.
    data: Vec<u64>,
    /// Parent sets, one bitmask TVar per variable.
    parents: Vec<TVar<u64>>,
    /// The hot global log-score accumulator (scaled to integer millis).
    score: TVar<i64>,
}

impl fmt::Debug for Bayes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Bayes")
            .field("variables", &self.config.variables)
            .field("rows", &self.data.len())
            .finish()
    }
}

impl Bayes {
    /// Creates the workload with seeded synthetic observations.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 variables are requested (rows are bitsets).
    pub fn new(config: BayesConfig) -> Self {
        assert!(config.variables <= 64, "rows are 64-bit bitsets");
        let mut rng = StdRng::seed_from_u64(0xBA7E5);
        // Plant correlations: variable v tends to equal variable v-1.
        let data: Vec<u64> = (0..config.rows)
            .map(|_| {
                let mut row = 0u64;
                for v in 0..config.variables {
                    let bit = if v == 0 {
                        rng.random_bool(0.5)
                    } else {
                        let prev = row & (1 << (v - 1)) != 0;
                        if rng.random_bool(0.8) {
                            prev
                        } else {
                            !prev
                        }
                    };
                    if bit {
                        row |= 1 << v;
                    }
                }
                row
            })
            .collect();
        Bayes {
            parents: (0..config.variables).map(|_| TVar::new(0)).collect(),
            config,
            data,
            score: TVar::new(0),
        }
    }

    /// Mutual-information-flavoured score of `parent → child` on the data,
    /// in integer millis. Pure computation over immutable data.
    fn score_edge(&self, parent: usize, child: usize) -> i64 {
        let mut agree = 0i64;
        for &row in &self.data {
            let p = row & (1 << parent) != 0;
            let c = row & (1 << child) != 0;
            if p == c {
                agree += 1;
            }
        }
        let n = self.data.len() as i64;
        // |2 * agreement - n| is 0 for independence, n for determinism.
        ((2 * agree - n).abs() * 1000) / n
    }

    /// Whether adding `parent → child` would create a cycle, given a
    /// snapshot of all parent sets.
    fn creates_cycle(parents: &[u64], parent: usize, child: usize) -> bool {
        // DFS from `parent` upwards through its ancestors: a cycle appears
        // iff `child` is already an ancestor of `parent`.
        let mut stack = vec![parent];
        let mut seen = 0u64;
        while let Some(v) = stack.pop() {
            if v == child {
                return true;
            }
            if seen & (1 << v) != 0 {
                continue;
            }
            seen |= 1 << v;
            let mut ps = parents[v];
            while ps != 0 {
                let p = ps.trailing_zeros() as usize;
                ps &= ps - 1;
                stack.push(p);
            }
        }
        false
    }

    /// The learned network's global score.
    pub fn current_score(&self, rt: &TmRuntime) -> i64 {
        rt.run(|tx| tx.read(&self.score))
    }

    /// Total edges in the learned network.
    pub fn edge_count(&self, rt: &TmRuntime) -> u32 {
        rt.run(|tx| {
            let mut edges = 0;
            for p in &self.parents {
                edges += tx.read(p)?.count_ones();
            }
            Ok(edges)
        })
    }
}

impl TxWorkload for Bayes {
    fn step(&self, rt: &TmRuntime, _worker: usize, rng: &mut StdRng) {
        let child = rng.random_range(0..self.config.variables);
        let parent = rng.random_range(0..self.config.variables);
        if parent == child {
            return;
        }
        // Long out-of-transaction scoring pass, as in STAMP.
        let gain = self.score_edge(parent, child);
        if gain < 400 {
            return; // not worth an insertion
        }
        rt.run(|tx| -> TxResult<()> {
            let child_parents = tx.read(&self.parents[child])?;
            if child_parents & (1 << parent) != 0 {
                return Ok(()); // already present
            }
            if child_parents.count_ones() as usize >= self.config.max_parents {
                return Ok(());
            }
            // Read the whole network for the cycle check — the long read
            // set that makes bayes transactions conflict.
            let mut snapshot = vec![0u64; self.config.variables];
            for (v, pvar) in self.parents.iter().enumerate() {
                snapshot[v] = tx.read(pvar)?;
            }
            snapshot[child] |= 1 << parent;
            if Self::creates_cycle(&snapshot, parent, child) {
                return Ok(());
            }
            tx.write(&self.parents[child], snapshot[child])?;
            tx.modify(&self.score, |s| s + gain)?;
            Ok(())
        });
    }

    fn verify(&self, rt: &TmRuntime) -> Result<(), String> {
        rt.run(|tx| {
            let mut snapshot = vec![0u64; self.config.variables];
            for (v, pvar) in self.parents.iter().enumerate() {
                snapshot[v] = tx.read(pvar)?;
                if snapshot[v].count_ones() as usize > self.config.max_parents {
                    return Ok(Err(format!("variable {v} exceeds max parents")));
                }
            }
            // Global acyclicity via repeated leaf elimination.
            let mut remaining: Vec<usize> = (0..self.config.variables).collect();
            loop {
                let before = remaining.len();
                let still_in: Vec<usize> = remaining
                    .iter()
                    .copied()
                    .filter(|&v| {
                        // Keep v if it still has a parent among the remaining.
                        let mut ps = snapshot[v];
                        while ps != 0 {
                            let p = ps.trailing_zeros() as usize;
                            ps &= ps - 1;
                            if remaining.contains(&p) {
                                return true;
                            }
                        }
                        false
                    })
                    .collect();
                remaining = still_in;
                if remaining.is_empty() {
                    return Ok(Ok(()));
                }
                if remaining.len() == before {
                    return Ok(Err(format!("cycle among variables {remaining:?}")));
                }
            }
        })
    }

    fn name(&self) -> &'static str {
        "bayes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn learns_planted_chain_edges() {
        let rt = TmRuntime::new();
        let w = Bayes::new(BayesConfig::default());
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..500 {
            w.step(&rt, 0, &mut rng);
        }
        w.verify(&rt).unwrap();
        assert!(
            w.edge_count(&rt) > 0,
            "the planted chain correlations must yield edges"
        );
        assert!(w.current_score(&rt) > 0);
    }

    #[test]
    fn cycle_detection_blocks_back_edges() {
        let parents = vec![0b010, 0b100, 0b000]; // 0<-1, 1<-2
        assert!(
            Bayes::creates_cycle(&parents, 0, 2),
            "2->0 closes the cycle"
        );
        assert!(
            !Bayes::creates_cycle(&parents, 2, 0),
            "0->2 is redundant but acyclic"
        );
    }

    #[test]
    fn concurrent_learning_stays_acyclic() {
        let rt = TmRuntime::new();
        let w: Arc<dyn TxWorkload> = Arc::new(Bayes::new(BayesConfig::default()));
        crate::harness::run_fixed_steps(&rt, &w, 4, 150, 19);
        w.verify(&rt).unwrap();
    }
}
