//! STAMP-like transactional application suite.
//!
//! Rust analogues of the ten STAMP configurations the paper evaluates
//! (Figures 6 and 10): `bayes`, `genome`, `intruder`, `kmeans-high`,
//! `kmeans-low`, `labyrinth`, `ssca2`, `vacation-high`, `vacation-low` and
//! `yada`. Each port preserves the application's *transactional access
//! pattern* — the queue/table/grid/tree structures, the read/write set
//! sizes and the contention character — which is what drives scheduler
//! behaviour. Absolute input sizes are scaled for a single-machine
//! container; see DESIGN.md §4 for the substitution record.

pub mod bayes;
pub mod genome;
pub mod intruder;
pub mod kmeans;
pub mod labyrinth;
pub mod ssca2;
pub mod vacation;
pub mod yada;

use std::sync::Arc;

use shrink_stm::TmRuntime;

use crate::harness::TxWorkload;

pub use bayes::{Bayes, BayesConfig};
pub use genome::{Genome, GenomeConfig};
pub use intruder::{Intruder, IntruderConfig};
pub use kmeans::{Kmeans, KmeansConfig};
pub use labyrinth::{Labyrinth, LabyrinthConfig};
pub use ssca2::{Ssca2, Ssca2Config};
pub use vacation::{Vacation, VacationConfig};
pub use yada::{Yada, YadaConfig};

/// The ten STAMP configurations, in the paper's figure order.
pub const STAMP_NAMES: [&str; 10] = [
    "bayes",
    "genome",
    "intruder",
    "kmeans-high",
    "kmeans-low",
    "labyrinth",
    "ssca2",
    "vacation-high",
    "vacation-low",
    "yada",
];

/// Instantiates a STAMP configuration by name, building its data on `rt`.
///
/// # Panics
///
/// Panics on an unknown name; valid names are [`STAMP_NAMES`].
pub fn build(name: &str, rt: &TmRuntime) -> Arc<dyn TxWorkload> {
    match name {
        "bayes" => Arc::new(Bayes::new(BayesConfig::default())),
        "genome" => Arc::new(Genome::new(GenomeConfig::default())),
        "intruder" => Arc::new(Intruder::new(IntruderConfig::default())),
        "kmeans-high" => Arc::new(Kmeans::new(KmeansConfig::high_contention(), "kmeans-high")),
        "kmeans-low" => Arc::new(Kmeans::new(KmeansConfig::low_contention(), "kmeans-low")),
        "labyrinth" => Arc::new(Labyrinth::new(LabyrinthConfig::default())),
        "ssca2" => Arc::new(Ssca2::new(Ssca2Config::default())),
        "vacation-high" => Arc::new(Vacation::new(
            rt,
            VacationConfig::high_contention(),
            "vacation-high",
        )),
        "vacation-low" => Arc::new(Vacation::new(
            rt,
            VacationConfig::low_contention(),
            "vacation-low",
        )),
        "yada" => Arc::new(Yada::new(rt, YadaConfig::default())),
        other => panic!("unknown STAMP configuration: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_configuration_builds_steps_and_verifies() {
        for name in STAMP_NAMES {
            let rt = TmRuntime::new();
            let w = build(name, &rt);
            assert_eq!(w.name(), name, "workload must report its figure label");
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..30 {
                w.step(&rt, 0, &mut rng);
            }
            w.verify(&rt)
                .unwrap_or_else(|e| panic!("{name} failed verification: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "unknown STAMP configuration")]
    fn unknown_name_is_rejected() {
        let rt = TmRuntime::new();
        let _ = build("quicksort", &rt);
    }
}
