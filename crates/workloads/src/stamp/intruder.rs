//! `intruder` — signature-based network intrusion detection.
//!
//! STAMP's intruder pushes packet fragments through three phases: capture
//! (dequeue from a single shared queue), reassembly (a shared map of
//! per-flow fragment lists) and detection (scan the reassembled payload).
//! The defining trait — which the paper calls out when explaining Shrink's
//! win ("a high number of transactions dequeue elements from a single
//! queue") — is the hot shared queue; it is kept faithfully hot here by
//! storing the pending-fragment pool in a single `TVar`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::Rng;
use shrink_stm::{TVar, TmRuntime};

use crate::harness::TxWorkload;
use crate::rbtree::TxRbTree;

/// One packet fragment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fragment {
    /// Flow the fragment belongs to.
    pub flow: u64,
    /// Fragment index within the flow.
    pub index: u32,
    /// Total fragments in the flow.
    pub total: u32,
    /// True if this flow carries the planted attack signature.
    pub attack: bool,
}

/// Configuration of the intruder workload.
#[derive(Clone, Copy, Debug)]
pub struct IntruderConfig {
    /// Fragments per flow.
    pub fragments_per_flow: u32,
    /// One in `attack_ratio` flows carries an attack.
    pub attack_ratio: u64,
    /// Fragments injected when the queue runs dry.
    pub refill: usize,
}

impl Default for IntruderConfig {
    fn default() -> Self {
        IntruderConfig {
            fragments_per_flow: 4,
            attack_ratio: 8,
            refill: 32,
        }
    }
}

/// The intruder workload.
pub struct Intruder {
    config: IntruderConfig,
    /// The hot shared fragment queue (single TVar, as in STAMP).
    queue: TVar<Vec<Fragment>>,
    /// flow id → bitmap of received fragment indices.
    reassembly: TxRbTree,
    /// flow id → 1 for flows flagged as attacks.
    detected: TxRbTree,
    next_flow: AtomicU64,
    attacks_planted: AtomicU64,
}

impl fmt::Debug for Intruder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Intruder")
            .field("config", &self.config)
            .field("next_flow", &self.next_flow.load(Ordering::Relaxed))
            .finish()
    }
}

impl Intruder {
    /// Creates the workload with an empty queue.
    pub fn new(config: IntruderConfig) -> Self {
        Intruder {
            config,
            queue: TVar::new(Vec::new()),
            reassembly: TxRbTree::new(),
            detected: TxRbTree::new(),
            next_flow: AtomicU64::new(1),
            attacks_planted: AtomicU64::new(0),
        }
    }

    /// Generates a batch of fragments from whole flows, shuffled.
    fn generate_fragments(&self, rng: &mut StdRng) -> Vec<Fragment> {
        let mut batch = Vec::with_capacity(self.config.refill);
        while batch.len() < self.config.refill {
            let flow = self.next_flow.fetch_add(1, Ordering::Relaxed);
            let attack = flow % self.config.attack_ratio == 0;
            if attack {
                self.attacks_planted.fetch_add(1, Ordering::Relaxed);
            }
            for index in 0..self.config.fragments_per_flow {
                batch.push(Fragment {
                    flow,
                    index,
                    total: self.config.fragments_per_flow,
                    attack,
                });
            }
        }
        // Fisher–Yates shuffle so fragments arrive out of order.
        for i in (1..batch.len()).rev() {
            let j = rng.random_range(0..=i);
            batch.swap(i, j);
        }
        batch
    }

    /// Total flows flagged as attacks so far.
    pub fn detected_count(&self, rt: &TmRuntime) -> usize {
        rt.run(|tx| self.detected.len(tx))
    }
}

impl TxWorkload for Intruder {
    fn step(&self, rt: &TmRuntime, _worker: usize, rng: &mut StdRng) {
        // Capture phase: pop one fragment from the hot queue (refilling
        // outside the hot path when empty).
        let fragment = rt.run(|tx| {
            let mut q = tx.read(&self.queue)?;
            let frag = q.pop();
            tx.write(&self.queue, q)?;
            Ok(frag)
        });
        let fragment = match fragment {
            Some(f) => f,
            None => {
                let batch = self.generate_fragments(rng);
                rt.run(|tx| {
                    let mut q = tx.read(&self.queue)?;
                    q.extend_from_slice(&batch);
                    tx.write(&self.queue, q)
                });
                return;
            }
        };

        // Reassembly phase: set this fragment's bit; if the flow is
        // complete, run detection.
        rt.run(|tx| {
            let bits = self.reassembly.get(tx, fragment.flow)?.unwrap_or(0);
            let bits = bits | (1u64 << fragment.index);
            let complete = bits.count_ones() == fragment.total;
            if complete {
                self.reassembly.remove(tx, fragment.flow)?;
                // Detection phase: "scan" the payload; the signature is the
                // planted attack bit.
                if fragment.attack {
                    self.detected.insert(tx, fragment.flow, 1)?;
                }
            } else {
                self.reassembly.insert(tx, fragment.flow, bits)?;
            }
            Ok(())
        });
    }

    fn verify(&self, rt: &TmRuntime) -> Result<(), String> {
        rt.run(|tx| {
            // Every detected flow must be a planted attack flow.
            for flow in self.detected.keys(tx)? {
                if flow % self.config.attack_ratio != 0 {
                    return Ok(Err(format!("flow {flow} flagged but not an attack")));
                }
            }
            // Reassembly bitmaps never exceed the fragment count.
            for flow in self.reassembly.keys(tx)? {
                let bits = self.reassembly.get(tx, flow)?.expect("listed key");
                if bits.count_ones() >= self.config.fragments_per_flow {
                    return Ok(Err(format!("flow {flow} complete but still in reassembly")));
                }
            }
            Ok(Ok(()))
        })
    }

    fn name(&self) -> &'static str {
        "intruder"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn drains_flows_and_detects_only_planted_attacks() {
        let rt = TmRuntime::new();
        let w = Intruder::new(IntruderConfig::default());
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..2000 {
            w.step(&rt, 0, &mut rng);
        }
        w.verify(&rt).unwrap();
        assert!(
            w.detected_count(&rt) > 0,
            "some planted attacks must be detected after 2000 steps"
        );
    }

    #[test]
    fn concurrent_capture_is_consistent() {
        let rt = TmRuntime::new();
        let w: Arc<dyn TxWorkload> = Arc::new(Intruder::new(IntruderConfig::default()));
        crate::harness::run_fixed_steps(&rt, &w, 4, 200, 3);
        w.verify(&rt).unwrap();
    }
}
