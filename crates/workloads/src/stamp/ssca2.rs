//! `ssca2` — scalable graph kernel 1: parallel graph construction.
//!
//! STAMP's ssca2 inserts edges into per-node adjacency arrays inside tiny
//! transactions. With many nodes the probability of two threads touching
//! the same node is low, so the workload is short-transaction /
//! low-contention — the configuration in which schedulers must stay out of
//! the way.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::Rng;
use shrink_stm::{TVar, TmRuntime, TxResult};

use crate::harness::TxWorkload;

/// Configuration of the ssca2 workload.
#[derive(Clone, Copy, Debug)]
pub struct Ssca2Config {
    /// Number of graph nodes.
    pub nodes: usize,
    /// Edges inserted per transaction.
    pub batch: usize,
}

impl Default for Ssca2Config {
    fn default() -> Self {
        Ssca2Config {
            nodes: 1024,
            batch: 4,
        }
    }
}

/// The ssca2 workload: an undirected multigraph under concurrent
/// construction.
pub struct Ssca2 {
    config: Ssca2Config,
    adjacency: Vec<TVar<Vec<u64>>>,
    edges_added: AtomicU64,
}

impl fmt::Debug for Ssca2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ssca2")
            .field("nodes", &self.config.nodes)
            .field("edges_added", &self.edges_added.load(Ordering::Relaxed))
            .finish()
    }
}

impl Ssca2 {
    /// Creates an edgeless graph.
    pub fn new(config: Ssca2Config) -> Self {
        Ssca2 {
            adjacency: (0..config.nodes).map(|_| TVar::new(Vec::new())).collect(),
            config,
            edges_added: AtomicU64::new(0),
        }
    }

    /// Number of successfully added edges.
    pub fn edges_added(&self) -> u64 {
        self.edges_added.load(Ordering::Relaxed)
    }
}

impl TxWorkload for Ssca2 {
    fn step(&self, rt: &TmRuntime, _worker: usize, rng: &mut StdRng) {
        let pairs: Vec<(usize, usize)> = (0..self.config.batch)
            .map(|_| {
                let u = rng.random_range(0..self.config.nodes);
                let v = rng.random_range(0..self.config.nodes);
                (u, v)
            })
            .filter(|(u, v)| u != v)
            .collect();
        let added = pairs.len() as u64;
        rt.run(|tx| -> TxResult<()> {
            for &(u, v) in &pairs {
                let mut adj_u = tx.read(&self.adjacency[u])?;
                adj_u.push(v as u64);
                tx.write(&self.adjacency[u], adj_u)?;
                let mut adj_v = tx.read(&self.adjacency[v])?;
                adj_v.push(u as u64);
                tx.write(&self.adjacency[v], adj_v)?;
            }
            Ok(())
        });
        self.edges_added.fetch_add(added, Ordering::Relaxed);
    }

    fn verify(&self, rt: &TmRuntime) -> Result<(), String> {
        // The graph must be symmetric and contain exactly the number of
        // added edges.
        let adjacency: Vec<Vec<u64>> = rt.run(|tx| {
            let mut out = Vec::with_capacity(self.config.nodes);
            for adj in &self.adjacency {
                out.push(tx.read(adj)?);
            }
            Ok(out)
        });
        let half_edges: usize = adjacency.iter().map(|a| a.len()).sum();
        let expected = self.edges_added() as usize * 2;
        if half_edges != expected {
            return Err(format!(
                "adjacency holds {half_edges} half-edges, expected {expected}"
            ));
        }
        // Symmetry: count(u→v) == count(v→u).
        let mut counts: std::collections::HashMap<(u64, u64), i64> =
            std::collections::HashMap::new();
        for (u, adj) in adjacency.iter().enumerate() {
            for &v in adj {
                let key = if (u as u64) < v {
                    (u as u64, v)
                } else {
                    (v, u as u64)
                };
                let delta = if (u as u64) < v { 1 } else { -1 };
                *counts.entry(key).or_insert(0) += delta;
            }
        }
        if let Some((&(u, v), &c)) = counts.iter().find(|(_, &c)| c != 0) {
            return Err(format!("asymmetric edge {u}–{v} (imbalance {c})"));
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "ssca2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn edges_are_symmetric_and_counted() {
        let rt = TmRuntime::new();
        let w = Ssca2::new(Ssca2Config {
            nodes: 64,
            batch: 4,
        });
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..200 {
            w.step(&rt, 0, &mut rng);
        }
        w.verify(&rt).unwrap();
        assert!(w.edges_added() > 0);
    }

    #[test]
    fn concurrent_construction_is_consistent() {
        let rt = TmRuntime::new();
        let w: Arc<dyn TxWorkload> = Arc::new(Ssca2::new(Ssca2Config::default()));
        crate::harness::run_fixed_steps(&rt, &w, 4, 200, 2);
        w.verify(&rt).unwrap();
    }
}
