//! # shrink-workloads — the paper's benchmarks, ported
//!
//! Rust ports of the workloads the paper evaluates Shrink on, all running
//! against the [`shrink-stm`](shrink_stm) runtime:
//!
//! * [`rbtree`] — the red-black-tree microbenchmark (integer range 16384,
//!   20 % / 70 % updates);
//! * [`stmbench7`] — a structurally faithful, scaled STMBench7: the CAD
//!   object graph with traversal / operation / structural-modification
//!   mixes in read-dominated, read-write and write-dominated flavours;
//! * [`stamp`] — analogues of all ten STAMP configurations (bayes, genome,
//!   intruder, kmeans ×2, labyrinth, ssca2, vacation ×2, yada) preserving
//!   each application's transactional access pattern;
//! * [`queue`] — blocking bounded queues and the MPMC channel churn built
//!   on the composable `retry`/`or_else` API (DESIGN.md §9), including the
//!   spin-retry baseline `bench_retry` measures against;
//! * [`harness`] — the time-boxed committed-tx/s measurement used by every
//!   figure;
//! * [`service`] — the production-shaped scenario: a sharded transactional
//!   KV/booking store (one runtime per shard, four-phase escrow transfers
//!   with exact cross-shard conservation, cross-runtime booking selects)
//!   under an open-loop Zipfian/bursty traffic generator that measures
//!   latency from scheduled arrival (DESIGN.md §13).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod harness;
pub mod queue;
pub mod rbtree;
pub mod service;
pub mod stamp;
pub mod stmbench7;

pub use harness::{run_fixed_steps, run_throughput, RunConfig, RunOutcome, TxWorkload};
pub use queue::{AsyncQueueChurn, ChurnTask, QueueMode, QueueWorkload, TxQueue};
pub use rbtree::{RbTreeWorkload, TxRbTree};
pub use service::{
    build_schedule, run_open_loop, BookingOutcome, Request, RequestKind, RequestMix, ShardedStore,
    TrafficConfig, TrafficReport, TransferEntry,
};
