//! Adaptive Transaction Scheduling (ATS), after Yoo & Lee (SPAA 2008).
//!
//! ATS measures each thread's *contention intensity* as an exponential
//! moving average over transaction outcomes: `ci = α·ci + (1−α)` on abort,
//! `ci = α·ci` on commit. When the intensity exceeds a threshold the thread
//! is dispatched through a global serialization queue; when it falls back
//! below, the thread runs freely again.
//!
//! The paper uses ATS as the representative of coarse serializing schedulers
//! (CAR-STM, Steal-on-abort): it reacts to *how often* a thread aborts, not
//! to *what* it is about to access, which is why it keeps serializing even
//! when the cause of past conflicts has gone away (Theorem 1 builds the
//! O(n) lower-bound family from exactly this behaviour).

use std::fmt;

use parking_lot::Mutex;
use shrink_stm::{Abort, SchedCtx, ThreadId, TxScheduler, VarId};

use crate::serial_lock::SerialLock;
use crate::slots::ThreadSlots;

/// Tuning parameters of [`Ats`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AtsConfig {
    /// Smoothing factor of the contention-intensity moving average.
    pub alpha: f64,
    /// Intensity above which a thread serializes.
    pub threshold: f64,
}

impl Default for AtsConfig {
    fn default() -> Self {
        // Yoo & Lee report 0.3–0.5 as robust thresholds; α = 0.75 weights
        // recent outcomes heavily, matching their reference implementation.
        AtsConfig {
            alpha: 0.75,
            threshold: 0.5,
        }
    }
}

#[derive(Debug)]
struct ThreadState {
    contention_intensity: f64,
}

/// The ATS scheduler.
///
/// # Examples
///
/// ```
/// use shrink_core::{Ats, AtsConfig};
/// use shrink_stm::TmRuntime;
///
/// let rt = TmRuntime::builder()
///     .scheduler(Ats::new(AtsConfig::default()))
///     .build();
/// assert_eq!(rt.scheduler_name(), "ats");
/// ```
pub struct Ats {
    config: AtsConfig,
    lock: SerialLock,
    threads: ThreadSlots<Mutex<ThreadState>>,
}

impl Ats {
    /// Creates an ATS scheduler.
    pub fn new(config: AtsConfig) -> Self {
        Ats {
            config,
            lock: SerialLock::new(),
            threads: ThreadSlots::new(|| {
                Mutex::new(ThreadState {
                    contention_intensity: 0.0,
                })
            }),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &AtsConfig {
        &self.config
    }

    /// The current contention intensity of `thread`, if it has state.
    pub fn contention_intensity(&self, thread: ThreadId) -> Option<f64> {
        self.threads
            .try_get(thread)
            .map(|s| s.lock().contention_intensity)
    }

    /// Number of threads currently serialized.
    pub fn wait_count(&self) -> u32 {
        self.lock.wait_count()
    }
}

impl fmt::Debug for Ats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ats").field("config", &self.config).finish()
    }
}

impl TxScheduler for Ats {
    fn before_start(&self, ctx: &SchedCtx<'_>) {
        // Read-only transactions cannot conflict, so they never serialize —
        // and they must not create thread state, or a pure reader would show
        // up in the intensity table.
        if ctx.kind.is_read_only() {
            return;
        }
        let slot = self.threads.get(ctx.thread);
        let serialized = slot.lock().contention_intensity > self.config.threshold;
        if serialized {
            self.lock.acquire(ctx.thread);
        }
    }

    fn on_commit(&self, ctx: &SchedCtx<'_>, _reads: &[VarId], _writes: &[VarId]) {
        // A read-only completion carries no contention signal: decaying the
        // intensity here would let a reader launder a writer's abort history.
        if ctx.kind.is_read_only() {
            return;
        }
        let slot = self.threads.get(ctx.thread);
        {
            let mut s = slot.lock();
            s.contention_intensity *= self.config.alpha;
        }
        self.lock.release_if_held(ctx.thread);
    }

    fn on_retry_wait(&self, ctx: &SchedCtx<'_>, _reads: &[VarId], _writes: &[VarId]) {
        // Deliberate blocking is not contention: the intensity average is
        // left alone (neither the abort bump nor the commit decay applies);
        // only a held serialization slot is handed back.
        self.lock.release_if_held(ctx.thread);
    }

    fn on_abort(&self, ctx: &SchedCtx<'_>, _abort: &Abort, _reads: &[VarId], _writes: &[VarId]) {
        let slot = self.threads.get(ctx.thread);
        {
            let mut s = slot.lock();
            s.contention_intensity =
                self.config.alpha * s.contention_intensity + (1.0 - self.config.alpha);
        }
        self.lock.release_if_held(ctx.thread);
    }

    fn on_reset(&self, ctx: &SchedCtx<'_>) {
        // Abandoned attempt: the contention-intensity average is left
        // untouched (an unwinding panic is neither a commit nor a
        // conflict); only a held serialization slot is handed back.
        self.lock.release_if_held(ctx.thread);
    }

    fn name(&self) -> &str {
        "ats"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrink_stm::{AbortReason, NoEpochs, StaticWrites, TxnKind};

    fn ctx<'a>(thread: u16, oracle: &'a StaticWrites) -> SchedCtx<'a> {
        SchedCtx {
            thread: ThreadId::from_u16(thread),
            visible: oracle,
            epochs: &NoEpochs,
            kind: TxnKind::ReadWrite,
        }
    }

    fn ro_ctx<'a>(thread: u16, oracle: &'a StaticWrites) -> SchedCtx<'a> {
        SchedCtx {
            kind: TxnKind::ReadOnly,
            ..ctx(thread, oracle)
        }
    }

    #[test]
    fn intensity_rises_on_abort_and_decays_on_commit() {
        let ats = Ats::new(AtsConfig::default());
        let oracle = StaticWrites::new();
        let c = ctx(1, &oracle);
        let t = ThreadId::from_u16(1);
        ats.before_start(&c);
        ats.on_abort(&c, &Abort::new(AbortReason::WriteConflict), &[], &[]);
        assert!((ats.contention_intensity(t).unwrap() - 0.25).abs() < 1e-12);
        ats.before_start(&c);
        ats.on_abort(&c, &Abort::new(AbortReason::WriteConflict), &[], &[]);
        let after_two = ats.contention_intensity(t).unwrap();
        assert!(after_two > 0.4);
        ats.before_start(&c);
        ats.on_commit(&c, &[], &[]);
        assert!(ats.contention_intensity(t).unwrap() < after_two);
    }

    #[test]
    fn serializes_once_over_threshold_and_releases() {
        let ats = Ats::new(AtsConfig {
            alpha: 0.5,
            threshold: 0.4,
        });
        let oracle = StaticWrites::new();
        let c = ctx(1, &oracle);
        // Two aborts with alpha 0.5: ci = 0.5, over threshold.
        for _ in 0..2 {
            ats.before_start(&c);
            ats.on_abort(&c, &Abort::new(AbortReason::WriteConflict), &[], &[]);
        }
        assert_eq!(ats.wait_count(), 0);
        ats.before_start(&c);
        assert_eq!(ats.wait_count(), 1, "high intensity must serialize");
        ats.on_commit(&c, &[], &[]);
        assert_eq!(ats.wait_count(), 0, "commit releases the queue");
    }

    #[test]
    fn retry_wait_leaves_intensity_alone_and_releases_the_queue() {
        let ats = Ats::new(AtsConfig {
            alpha: 0.5,
            threshold: 0.4,
        });
        let oracle = StaticWrites::new();
        let c = ctx(1, &oracle);
        let t = ThreadId::from_u16(1);
        for _ in 0..2 {
            ats.before_start(&c);
            ats.on_abort(&c, &Abort::new(AbortReason::WriteConflict), &[], &[]);
        }
        let intensity = ats.contention_intensity(t).unwrap();
        assert!(intensity > 0.4);
        // The serialized thread blocks in Tx::retry: the slot is released
        // and the intensity neither bumps (abort) nor decays (commit).
        ats.before_start(&c);
        assert_eq!(ats.wait_count(), 1);
        ats.on_retry_wait(&c, &[], &[]);
        assert_eq!(ats.wait_count(), 0, "retry wait releases the queue");
        assert_eq!(ats.contention_intensity(t), Some(intensity));
    }

    #[test]
    fn read_only_transactions_are_invisible() {
        let ats = Ats::new(AtsConfig::default());
        let oracle = StaticWrites::new();
        let c = ro_ctx(1, &oracle);
        for _ in 0..20 {
            ats.before_start(&c);
            ats.on_commit(&c, &[], &[]);
        }
        assert_eq!(
            ats.contention_intensity(ThreadId::from_u16(1)),
            None,
            "a pure reader must not even create intensity state"
        );
        assert_eq!(ats.wait_count(), 0);
    }

    #[test]
    fn read_only_commits_do_not_decay_a_writers_intensity() {
        let ats = Ats::new(AtsConfig::default());
        let oracle = StaticWrites::new();
        let rw = ctx(1, &oracle);
        let ro = ro_ctx(1, &oracle);
        let t = ThreadId::from_u16(1);
        ats.before_start(&rw);
        ats.on_abort(&rw, &Abort::new(AbortReason::WriteConflict), &[], &[]);
        let intensity = ats.contention_intensity(t).unwrap();
        assert!(intensity > 0.0);
        for _ in 0..8 {
            ats.before_start(&ro);
            ats.on_commit(&ro, &[], &[]);
        }
        assert_eq!(
            ats.contention_intensity(t),
            Some(intensity),
            "read-only completions must not launder abort history"
        );
    }

    #[test]
    fn repeated_commits_keep_thread_free() {
        let ats = Ats::new(AtsConfig::default());
        let oracle = StaticWrites::new();
        let c = ctx(1, &oracle);
        for _ in 0..20 {
            ats.before_start(&c);
            assert_eq!(ats.wait_count(), 0);
            ats.on_commit(&c, &[], &[]);
        }
    }
}
