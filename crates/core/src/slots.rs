//! Per-thread state storage for schedulers.
//!
//! Scheduler hooks receive only a [`ThreadId`]; this container maps ids to
//! lazily created per-thread state. Lookup is a shared lock plus an index,
//! growth happens at most once per thread.

use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;
use shrink_stm::ThreadId;

/// Lazily grown, thread-id-indexed storage.
///
/// `S` is created by the factory on first access from each thread. State is
/// shared (`Arc`), so concurrent readers (e.g. a contention manager peeking
/// at another thread) are allowed; interior mutability is `S`'s business.
pub struct ThreadSlots<S> {
    slots: RwLock<Vec<Arc<S>>>,
    factory: Box<dyn Fn() -> S + Send + Sync>,
}

impl<S: Send + Sync> ThreadSlots<S> {
    /// Creates empty storage with a state factory.
    pub fn new(factory: impl Fn() -> S + Send + Sync + 'static) -> Self {
        ThreadSlots {
            slots: RwLock::new(Vec::new()),
            factory: Box::new(factory),
        }
    }

    /// Returns the state of `thread`, creating it (and any missing slots
    /// below it) on first use.
    ///
    /// # Panics
    ///
    /// Panics on [`ThreadId::NONE`].
    pub fn get(&self, thread: ThreadId) -> Arc<S> {
        let index = thread.index();
        {
            let read = self.slots.read();
            if let Some(slot) = read.get(index) {
                return Arc::clone(slot);
            }
        }
        let mut write = self.slots.write();
        while write.len() <= index {
            write.push(Arc::new((self.factory)()));
        }
        Arc::clone(&write[index])
    }

    /// Returns the state of `thread` if it was ever created.
    pub fn try_get(&self, thread: ThreadId) -> Option<Arc<S>> {
        if thread == ThreadId::NONE {
            return None;
        }
        self.slots.read().get(thread.index()).cloned()
    }

    /// Snapshot of every created slot, in thread-id order.
    pub fn snapshot(&self) -> Vec<Arc<S>> {
        self.slots.read().clone()
    }

    /// Number of created slots.
    pub fn len(&self) -> usize {
        self.slots.read().len()
    }

    /// True if no thread has registered state yet.
    pub fn is_empty(&self) -> bool {
        self.slots.read().is_empty()
    }
}

impl<S> fmt::Debug for ThreadSlots<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadSlots")
            .field("len", &self.slots.read().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tid(raw: u16) -> ThreadId {
        ThreadId::from_u16(raw)
    }

    #[test]
    fn get_creates_and_reuses_state() {
        let slots = ThreadSlots::new(|| AtomicU64::new(0));
        let a = slots.get(tid(1));
        a.store(7, Ordering::Relaxed);
        let again = slots.get(tid(1));
        assert_eq!(again.load(Ordering::Relaxed), 7);
        assert_eq!(slots.len(), 1);
    }

    #[test]
    fn sparse_registration_fills_gaps() {
        let slots = ThreadSlots::new(|| AtomicU64::new(0));
        let _ = slots.get(tid(5));
        assert_eq!(slots.len(), 5);
        let early = slots.get(tid(2));
        early.store(3, Ordering::Relaxed);
        assert_eq!(slots.get(tid(2)).load(Ordering::Relaxed), 3);
    }

    #[test]
    fn try_get_does_not_create() {
        let slots = ThreadSlots::new(|| AtomicU64::new(0));
        assert!(slots.try_get(tid(1)).is_none());
        let _ = slots.get(tid(1));
        assert!(slots.try_get(tid(1)).is_some());
        assert!(slots.try_get(ThreadId::NONE).is_none());
    }

    #[test]
    fn snapshot_lists_all_slots() {
        let slots = ThreadSlots::new(|| AtomicU64::new(9));
        let _ = slots.get(tid(3));
        let snap = slots.snapshot();
        assert_eq!(snap.len(), 3);
        assert!(snap.iter().all(|s| s.load(Ordering::Relaxed) == 9));
    }
}
