//! Value-level scheduler selection, for benchmark harnesses and CLIs.

use std::fmt;
use std::sync::Arc;

use shrink_stm::{NoopScheduler, TxScheduler};

use crate::ats::{Ats, AtsConfig};
use crate::pool::Pool;
use crate::serializer::{Serializer, SerializerConfig};
use crate::shrink::{Shrink, ShrinkConfig};

/// A scheduler choice plus its configuration, as a plain value.
///
/// # Examples
///
/// ```
/// use shrink_core::SchedulerKind;
/// use shrink_stm::TmRuntime;
///
/// let rt = TmRuntime::builder()
///     .scheduler_arc(SchedulerKind::Pool.build())
///     .build();
/// assert_eq!(rt.scheduler_name(), "pool");
/// ```
#[derive(Clone, Debug, Default)]
pub enum SchedulerKind {
    /// No scheduling policy — the base TM.
    #[default]
    Noop,
    /// The Shrink prediction-based scheduler.
    Shrink(ShrinkConfig),
    /// Adaptive transaction scheduling.
    Ats(AtsConfig),
    /// Serialize every contended thread.
    Pool,
    /// CAR-STM-style schedule-after-conflict.
    Serializer(SerializerConfig),
}

impl SchedulerKind {
    /// Shrink with default (paper) parameters.
    pub fn shrink_default() -> Self {
        SchedulerKind::Shrink(ShrinkConfig::default())
    }

    /// ATS with default parameters.
    pub fn ats_default() -> Self {
        SchedulerKind::Ats(AtsConfig::default())
    }

    /// Instantiates the scheduler.
    pub fn build(&self) -> Arc<dyn TxScheduler> {
        match self {
            SchedulerKind::Noop => Arc::new(NoopScheduler),
            SchedulerKind::Shrink(cfg) => Arc::new(Shrink::new(cfg.clone())),
            SchedulerKind::Ats(cfg) => Arc::new(Ats::new(*cfg)),
            SchedulerKind::Pool => Arc::new(Pool::new()),
            SchedulerKind::Serializer(cfg) => Arc::new(Serializer::new(*cfg)),
        }
    }

    /// The stable label used in benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::Noop => "base",
            SchedulerKind::Shrink(_) => "shrink",
            SchedulerKind::Ats(_) => "ats",
            SchedulerKind::Pool => "pool",
            SchedulerKind::Serializer(_) => "serializer",
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_its_named_scheduler() {
        let cases = [
            (SchedulerKind::Noop, "noop"),
            (SchedulerKind::shrink_default(), "shrink"),
            (SchedulerKind::ats_default(), "ats"),
            (SchedulerKind::Pool, "pool"),
            (
                SchedulerKind::Serializer(SerializerConfig::default()),
                "serializer",
            ),
        ];
        for (kind, expected) in cases {
            assert_eq!(kind.build().name(), expected);
        }
    }

    #[test]
    fn labels_are_bench_friendly() {
        assert_eq!(SchedulerKind::Noop.label(), "base");
        assert_eq!(SchedulerKind::Pool.to_string(), "pool");
    }
}
