//! The **Shrink** scheduler — the paper's primary contribution.
//!
//! Shrink prevents conflicts instead of curing them. Per thread it
//! maintains:
//!
//! * a *success rate* (exponential moving average: `(s + success)/2` on
//!   commit, `s/2` on abort) — prediction only activates once the rate falls
//!   below `succ_threshold`;
//! * a ring of Bloom filters over the read sets of the last
//!   `locality_window` transactions; an address read now that was also read
//!   in recent transactions (confidence `Σ cᵢ ≥ confidence_threshold`)
//!   enters the **predicted read set** (temporal locality);
//! * the write set of the immediately previous *aborted* attempt as the
//!   **predicted write set** (repeated transactions mimic their aborted
//!   predecessor);
//! * the **serialization affinity** heuristic: the prediction/serialization
//!   machinery runs with probability proportional to the number of threads
//!   currently serialized (`wait_count`), so Shrink stays out of the way in
//!   low-contention and underloaded runs.
//!
//! On transaction start, if prediction is active and some predicted address
//! is currently being written by another thread (checked through the host
//! TM's *visible writes*), the transaction is serialized through the global
//! lock.
//!
//! ## Deviation from the paper's listing
//!
//! Algorithm 1 guards the prediction scheme with `r < wait_count` for a
//! random `r ∈ [1, 32]`, and `wait_count` starts at zero — taken literally,
//! the scheme can never bootstrap (nothing ever serializes, so `wait_count`
//! never rises). We add a configurable floor, [`ShrinkConfig::affinity_bias`]
//! (default 1), i.e. the gate is `r ≤ wait_count + bias`: a thread whose
//! success rate has collapsed checks its prediction at least once in 32
//! starts even when nobody is serialized yet. Setting `affinity_bias = 0`
//! recovers the literal listing.

use std::collections::HashSet;
use std::fmt;

use parking_lot::Mutex;
use shrink_stm::{Abort, SchedCtx, ThreadId, TxScheduler, VarId};

use crate::bloom::BloomRing;
use crate::serial_lock::SerialLock;
use crate::slots::ThreadSlots;

/// Tuning parameters of [`Shrink`].
///
/// Defaults are the constants of the paper's §4: `success = 1`,
/// `succ_threshold = 0.5`, `locality_window = 4`, `confidence_threshold = 3`,
/// `c = [3, 2, 1]`, affinity modulus 32.
#[derive(Clone, Debug, PartialEq)]
pub struct ShrinkConfig {
    /// Value mixed into the success-rate average on commit.
    pub success: f64,
    /// Success rate below which prediction and serialization activate.
    pub succ_threshold: f64,
    /// How many past transactions the Bloom-filter ring remembers
    /// (`locality_window`; includes the in-progress transaction's filter).
    pub locality_window: usize,
    /// Per-age confidence weights `c₁, c₂, …` for filters 1, 2, … steps in
    /// the past.
    pub confidence_weights: Vec<u32>,
    /// Confidence at or above which an address joins the predicted read set.
    pub confidence_threshold: u32,
    /// Bits per Bloom filter.
    pub bloom_bits: usize,
    /// Hash probes per Bloom filter.
    pub bloom_probes: u32,
    /// Modulus of the serialization-affinity lottery (the paper's 32).
    pub affinity_modulus: u32,
    /// Bootstrap floor added to `wait_count` in the affinity gate; see the
    /// module documentation. 0 reproduces the paper's listing literally.
    pub affinity_bias: u32,
    /// Cap on the size of each predicted set.
    pub max_pred_set: usize,
    /// Whether to record prediction-accuracy counters (Figure 3).
    pub track_accuracy: bool,
}

impl Default for ShrinkConfig {
    fn default() -> Self {
        ShrinkConfig {
            success: 1.0,
            succ_threshold: 0.5,
            locality_window: 4,
            confidence_weights: vec![3, 2, 1],
            confidence_threshold: 3,
            bloom_bits: 8192,
            bloom_probes: 2,
            affinity_modulus: 32,
            affinity_bias: 1,
            max_pred_set: 512,
            track_accuracy: true,
        }
    }
}

/// Aggregate prediction-accuracy counters (the measurements behind the
/// paper's Figure 3).
///
/// "Predicted" counts address-level predictions that were in force when a
/// transaction committed; "correct" counts the subset that the transaction
/// actually accessed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredictionStats {
    /// Total predicted-read addresses across committed transactions.
    pub read_predicted: u64,
    /// Predicted-read addresses that were actually read.
    pub read_correct: u64,
    /// Total predicted-write addresses across committed transactions.
    pub write_predicted: u64,
    /// Predicted-write addresses that were actually written.
    pub write_correct: u64,
    /// Transactions serialized through the global lock.
    pub serialized: u64,
    /// Transaction starts for which prediction was consulted.
    pub prediction_checks: u64,
}

impl PredictionStats {
    /// Fraction of predicted reads that were correct, if any were made.
    pub fn read_accuracy(&self) -> Option<f64> {
        (self.read_predicted > 0).then(|| self.read_correct as f64 / self.read_predicted as f64)
    }

    /// Fraction of predicted writes that were correct, if any were made.
    pub fn write_accuracy(&self) -> Option<f64> {
        (self.write_predicted > 0).then(|| self.write_correct as f64 / self.write_predicted as f64)
    }
}

/// Per-thread Shrink state. Only the owning thread takes the mutex on the
/// hot path, so it is effectively uncontended.
struct ThreadState {
    succ_rate: f64,
    ring: BloomRing,
    pred_reads: HashSet<VarId>,
    pred_writes: Vec<VarId>,
    /// Snapshot of the predictions that were in force for the running
    /// attempt, for accuracy accounting.
    active_pred_reads: Vec<VarId>,
    active_pred_writes: Vec<VarId>,
    last_committed: bool,
    rng: u64,
    stats: PredictionStats,
}

impl ThreadState {
    fn new(config: &ShrinkConfig, seed: u64) -> Self {
        ThreadState {
            succ_rate: 1.0,
            ring: BloomRing::new(
                config.locality_window,
                config.bloom_bits,
                config.bloom_probes,
            ),
            pred_reads: HashSet::new(),
            pred_writes: Vec::new(),
            active_pred_reads: Vec::new(),
            active_pred_writes: Vec::new(),
            last_committed: true,
            rng: seed | 1,
            stats: PredictionStats::default(),
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*: cheap, no external RNG on the transaction hot path.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// The Shrink prediction-based transaction scheduler.
///
/// # Examples
///
/// ```
/// use shrink_core::{Shrink, ShrinkConfig};
/// use shrink_stm::TmRuntime;
/// use std::sync::Arc;
///
/// let shrink = Arc::new(Shrink::new(ShrinkConfig::default()));
/// let rt = TmRuntime::builder().scheduler_arc(shrink.clone()).build();
/// let v = shrink_stm::TVar::new(0u32);
/// rt.run(|tx| tx.modify(&v, |x| x + 1));
/// assert_eq!(v.snapshot(), 1);
/// // The typed handle stays available for accuracy reporting:
/// let _stats = shrink.prediction_stats();
/// ```
pub struct Shrink {
    config: ShrinkConfig,
    lock: SerialLock,
    threads: ThreadSlots<Mutex<ThreadState>>,
    /// Process-unique id keying the thread-local state cache (addresses can
    /// be reused after a scheduler is dropped; ids cannot).
    instance_id: u64,
}

/// One state-cache entry: (scheduler identity, thread id, shared state).
type CachedState = (usize, u16, std::sync::Arc<Mutex<ThreadState>>);

thread_local! {
    /// Per-OS-thread cache of `(scheduler identity, thread id) → state`,
    /// bypassing the slot registry's lock on the per-read hot path.
    static STATE_CACHE: std::cell::RefCell<Vec<CachedState>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl Shrink {
    /// Runs `f` against this thread's state, resolved through the
    /// thread-local cache (no refcount traffic on the hot path).
    fn with_state<R>(&self, thread: ThreadId, f: impl FnOnce(&Mutex<ThreadState>) -> R) -> R {
        let key = self.instance_id as usize;
        STATE_CACHE.with(|cache| {
            {
                let cache = cache.borrow();
                for (k, t, state) in cache.iter() {
                    if *k == key && *t == thread.as_u16() {
                        return f(state);
                    }
                }
            }
            let state = self.threads.get(thread);
            cache
                .borrow_mut()
                .push((key, thread.as_u16(), std::sync::Arc::clone(&state)));
            f(&state)
        })
    }

    /// Creates a Shrink scheduler with the given configuration.
    pub fn new(config: ShrinkConfig) -> Self {
        let factory_config = config.clone();
        let counter = std::sync::atomic::AtomicU64::new(0x5EED);
        static INSTANCE_IDS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        Shrink {
            config,
            lock: SerialLock::new(),
            threads: ThreadSlots::new(move || {
                let seed = counter.fetch_add(0x9E37_79B9, std::sync::atomic::Ordering::Relaxed);
                Mutex::new(ThreadState::new(&factory_config, seed))
            }),
            instance_id: INSTANCE_IDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ShrinkConfig {
        &self.config
    }

    /// Number of threads currently serialized (the affinity signal).
    pub fn wait_count(&self) -> u32 {
        self.lock.wait_count()
    }

    /// Aggregated prediction statistics across all threads.
    pub fn prediction_stats(&self) -> PredictionStats {
        let mut total = PredictionStats::default();
        for slot in self.threads.snapshot() {
            let s = slot.lock();
            total.read_predicted += s.stats.read_predicted;
            total.read_correct += s.stats.read_correct;
            total.write_predicted += s.stats.write_predicted;
            total.write_correct += s.stats.write_correct;
            total.serialized += s.stats.serialized;
            total.prediction_checks += s.stats.prediction_checks;
        }
        total
    }

    /// The success rate of `thread`, if it has state.
    pub fn success_rate(&self, thread: ThreadId) -> Option<f64> {
        self.threads.try_get(thread).map(|s| s.lock().succ_rate)
    }
}

impl fmt::Debug for Shrink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shrink")
            .field("config", &self.config)
            .field("wait_count", &self.lock.wait_count())
            .finish()
    }
}

impl TxScheduler for Shrink {
    fn before_start(&self, ctx: &SchedCtx<'_>) {
        if ctx.kind.is_read_only() {
            // A read-only transaction can neither cause nor lose a conflict:
            // no prediction, no serialization, and no per-thread state is
            // created or touched for it (the success-rate EMA must only ever
            // see read-write attempts).
            return;
        }
        self.with_state(ctx.thread, |slot| {
            let mut s = slot.lock();

            if s.succ_rate < self.config.succ_threshold {
                // Serialization affinity: consult the prediction with probability
                // proportional to the number of already-serialized threads.
                let r = (s.next_rand() % self.config.affinity_modulus as u64) as u32 + 1;
                let gate = self.lock.wait_count() + self.config.affinity_bias;
                if r <= gate {
                    s.stats.prediction_checks += 1;
                    let me = ctx.thread;
                    let predicted_conflict = s
                        .pred_reads
                        .iter()
                        .any(|&v| ctx.visible.is_written_by_other(v, me))
                        || s.pred_writes
                            .iter()
                            .any(|&v| ctx.visible.is_written_by_other(v, me));
                    if predicted_conflict {
                        s.stats.serialized += 1;
                        // Blocks until the global lock is ours; the wait itself
                        // is what prevents the predicted conflict.
                        self.lock.acquire(me);
                    }
                }
            }

            // Record which predictions are in force for this attempt, then reset
            // per Algorithm 1: the read prediction survives aborts (the retry
            // reads similar addresses), the write prediction is consumed every
            // start.
            if self.config.track_accuracy {
                s.active_pred_reads = s.pred_reads.iter().copied().collect();
                s.active_pred_writes = s.pred_writes.clone();
            }
            if s.last_committed {
                s.pred_reads.clear();
            }
            s.pred_writes.clear();
        });
    }

    fn on_read(&self, ctx: &SchedCtx<'_>, var: VarId) {
        self.with_state(ctx.thread, |slot| {
            let mut s = slot.lock();
            if s.ring.current_mut().insert_if_absent(var) {
                // The Bloom history above is always maintained; the predicted
                // read set is only worth computing once the thread's success
                // rate has dropped into the range where `before_start` will
                // consult it (the filters are already warm at that point, so
                // predictions are available from the first struggling
                // transaction).
                if s.succ_rate < self.config.succ_threshold {
                    let confidence = s.ring.confidence(var, &self.config.confidence_weights);
                    if confidence >= self.config.confidence_threshold
                        && s.pred_reads.len() < self.config.max_pred_set
                    {
                        s.pred_reads.insert(var);
                    }
                }
            }
        });
    }

    fn on_commit(&self, ctx: &SchedCtx<'_>, reads: &[VarId], writes: &[VarId]) {
        if ctx.kind.is_read_only() {
            // Completion of a read-only transaction: no lock was acquired in
            // `before_start`, and folding it into the success rate or
            // rotating the locality ring would dilute the read-write history
            // the predictions are built from.
            return;
        }
        self.with_state(ctx.thread, |slot| {
            let mut s = slot.lock();
            s.succ_rate = (s.succ_rate + self.config.success) / 2.0;
            s.last_committed = true;
            s.ring.rotate();
            if self.config.track_accuracy {
                if !s.active_pred_reads.is_empty() {
                    let actual: HashSet<VarId> = reads.iter().copied().collect();
                    s.stats.read_predicted += s.active_pred_reads.len() as u64;
                    s.stats.read_correct += s
                        .active_pred_reads
                        .iter()
                        .filter(|v| actual.contains(v))
                        .count() as u64;
                }
                if !s.active_pred_writes.is_empty() {
                    let actual: HashSet<VarId> = writes.iter().copied().collect();
                    s.stats.write_predicted += s.active_pred_writes.len() as u64;
                    s.stats.write_correct += s
                        .active_pred_writes
                        .iter()
                        .filter(|v| actual.contains(v))
                        .count() as u64;
                }
                s.active_pred_reads.clear();
                s.active_pred_writes.clear();
            }
        });
        self.lock.release_if_held(ctx.thread);
    }

    fn on_retry_wait(&self, ctx: &SchedCtx<'_>, _reads: &[VarId], _writes: &[VarId]) {
        // A deliberate `Tx::retry` wait is not a conflict: the success rate,
        // predicted sets and locality ring stay untouched (the re-run after
        // the wake re-reads the same addresses into the current filter).
        // Only the serialization lock, if this start acquired it, is
        // released — the waiting thread must not serialize everybody else.
        self.lock.release_if_held(ctx.thread);
    }

    fn on_abort(&self, ctx: &SchedCtx<'_>, _abort: &Abort, _reads: &[VarId], writes: &[VarId]) {
        self.with_state(ctx.thread, |slot| {
            let mut s = slot.lock();
            s.succ_rate /= 2.0;
            s.last_committed = false;
            // "copy write set of transaction into pred_write_set": the retry is
            // expected to mimic the aborted attempt's writes.
            s.pred_writes.clear();
            s.pred_writes.extend_from_slice(writes);
            if s.pred_writes.len() > self.config.max_pred_set {
                s.pred_writes.truncate(self.config.max_pred_set);
            }
            // Temporal locality spans committed *and* aborted transactions.
            s.ring.rotate();
        });
        self.lock.release_if_held(ctx.thread);
    }

    fn on_reset(&self, ctx: &SchedCtx<'_>) {
        // Abandoned attempt (panic unwind, or a non-retryable error): the
        // attempt never completed, so neither success-rate nor prediction
        // accuracy can be judged. Drop its active predictions unscored and
        // hand back the serialization lock if this start took it.
        self.with_state(ctx.thread, |slot| {
            let mut s = slot.lock();
            s.active_pred_reads.clear();
            s.active_pred_writes.clear();
        });
        self.lock.release_if_held(ctx.thread);
    }

    fn name(&self) -> &str {
        "shrink"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrink_stm::{AbortReason, NoEpochs, StaticWrites, TxnKind};

    fn ctx<'a>(thread: u16, oracle: &'a StaticWrites) -> SchedCtx<'a> {
        SchedCtx {
            thread: ThreadId::from_u16(thread),
            visible: oracle,
            epochs: &NoEpochs,
            kind: TxnKind::ReadWrite,
        }
    }

    fn commit_empty(s: &Shrink, c: &SchedCtx<'_>) {
        s.on_commit(c, &[], &[]);
    }

    #[test]
    fn success_rate_tracks_commits_and_aborts() {
        let s = Shrink::new(ShrinkConfig::default());
        let oracle = StaticWrites::new();
        let c = ctx(1, &oracle);
        let t = ThreadId::from_u16(1);
        s.before_start(&c);
        commit_empty(&s, &c);
        assert_eq!(s.success_rate(t), Some(1.0));
        s.before_start(&c);
        s.on_abort(&c, &Abort::new(AbortReason::WriteConflict), &[], &[]);
        assert_eq!(s.success_rate(t), Some(0.5));
        s.before_start(&c);
        s.on_abort(&c, &Abort::new(AbortReason::WriteConflict), &[], &[]);
        assert_eq!(s.success_rate(t), Some(0.25));
        s.before_start(&c);
        commit_empty(&s, &c);
        assert_eq!(s.success_rate(t), Some(0.625));
    }

    #[test]
    fn repeated_reads_build_read_prediction() {
        // Default confidence: an address read in the immediately previous
        // transaction has confidence 3 >= threshold 3, so the next
        // transaction predicts it — once the thread is struggling enough
        // (success rate below threshold) for prediction to be maintained.
        let s = Shrink::new(ShrinkConfig::default());
        let oracle = StaticWrites::new();
        let c = ctx(1, &oracle);
        let addr = VarId::from_u64(99);

        // Two aborted attempts reading `addr`: the first seeds the history,
        // the second (success rate now 0.5 -> 0.25 territory) predicts.
        for _ in 0..3 {
            s.before_start(&c);
            s.on_read(&c, addr);
            s.on_abort(&c, &Abort::new(AbortReason::ReadValidation), &[addr], &[]);
        }
        {
            let slot = s.threads.get(ThreadId::from_u16(1));
            let st = slot.lock();
            assert!(st.pred_reads.contains(&addr), "confidence 3 must predict");
        }
    }

    #[test]
    fn healthy_threads_skip_prediction_maintenance() {
        let s = Shrink::new(ShrinkConfig::default());
        let oracle = StaticWrites::new();
        let c = ctx(1, &oracle);
        let addr = VarId::from_u64(99);
        for _ in 0..5 {
            s.before_start(&c);
            s.on_read(&c, addr);
            commit_empty(&s, &c);
        }
        let slot = s.threads.get(ThreadId::from_u16(1));
        assert!(
            slot.lock().pred_reads.is_empty(),
            "a thread that always commits never pays for predicted sets"
        );
    }

    #[test]
    fn serializes_on_predicted_conflict_when_unlucky_thread_checks() {
        // Force prediction on: affinity gate always passes.
        let config = ShrinkConfig {
            affinity_bias: 32,
            ..ShrinkConfig::default()
        };
        let s = Shrink::new(config);
        let addr = VarId::from_u64(5);
        let enemy = ThreadId::from_u16(9);
        let oracle = StaticWrites::new().with_writer(addr, enemy);
        let c = ctx(1, &oracle);
        let t = ThreadId::from_u16(1);

        // Build up a read prediction for `addr` and drive the rate down.
        s.before_start(&c);
        s.on_read(&c, addr);
        commit_empty(&s, &c);
        for _ in 0..3 {
            s.before_start(&c);
            s.on_read(&c, addr);
            s.on_abort(&c, &Abort::new(AbortReason::WriteConflict), &[addr], &[]);
        }
        assert!(s.success_rate(t).unwrap() < 0.5);

        s.before_start(&c);
        assert_eq!(s.wait_count(), 1, "thread must be serialized");
        let stats = s.prediction_stats();
        assert!(stats.serialized >= 1);
        s.on_read(&c, addr);
        commit_empty(&s, &c);
        assert_eq!(s.wait_count(), 0, "commit releases the global lock");
    }

    #[test]
    fn retry_wait_is_not_a_conflict_for_the_success_rate() {
        let s = Shrink::new(ShrinkConfig::default());
        let oracle = StaticWrites::new();
        let c = ctx(1, &oracle);
        let t = ThreadId::from_u16(1);
        s.before_start(&c);
        commit_empty(&s, &c);
        assert_eq!(s.success_rate(t), Some(1.0));
        // Ten deliberate waits in a row: the rate must not decay — a
        // blocked consumer is not a struggling transaction.
        for _ in 0..10 {
            s.before_start(&c);
            s.on_retry_wait(&c, &[VarId::from_u64(1)], &[]);
        }
        assert_eq!(s.success_rate(t), Some(1.0));
        assert_eq!(s.wait_count(), 0, "no serialization slot leaks");
    }

    #[test]
    fn retry_wait_releases_a_held_serialization_lock() {
        // Same setup that serializes in `before_start`, but the body then
        // retries: on_retry_wait must hand the global lock back.
        let config = ShrinkConfig {
            affinity_bias: 32,
            ..ShrinkConfig::default()
        };
        let s = Shrink::new(config);
        let addr = VarId::from_u64(5);
        let enemy = ThreadId::from_u16(9);
        let oracle = StaticWrites::new().with_writer(addr, enemy);
        let c = ctx(1, &oracle);
        s.before_start(&c);
        s.on_read(&c, addr);
        commit_empty(&s, &c);
        for _ in 0..3 {
            s.before_start(&c);
            s.on_read(&c, addr);
            s.on_abort(&c, &Abort::new(AbortReason::WriteConflict), &[addr], &[]);
        }
        s.before_start(&c);
        assert_eq!(s.wait_count(), 1, "thread must be serialized");
        s.on_retry_wait(&c, &[addr], &[]);
        assert_eq!(s.wait_count(), 0, "retry wait releases the global lock");
    }

    #[test]
    fn healthy_threads_never_consult_prediction() {
        let s = Shrink::new(ShrinkConfig::default());
        let oracle = StaticWrites::new();
        let c = ctx(1, &oracle);
        for _ in 0..50 {
            s.before_start(&c);
            commit_empty(&s, &c);
        }
        assert_eq!(s.prediction_stats().prediction_checks, 0);
    }

    #[test]
    fn write_prediction_comes_from_aborted_write_set() {
        let s = Shrink::new(ShrinkConfig::default());
        let oracle = StaticWrites::new();
        let c = ctx(1, &oracle);
        let w = VarId::from_u64(44);
        s.before_start(&c);
        s.on_abort(&c, &Abort::new(AbortReason::WriteConflict), &[], &[w]);
        {
            let slot = s.threads.get(ThreadId::from_u16(1));
            let st = slot.lock();
            assert_eq!(st.pred_writes, vec![w]);
        }
        // The next start consumes it.
        s.before_start(&c);
        {
            let slot = s.threads.get(ThreadId::from_u16(1));
            let st = slot.lock();
            assert!(st.pred_writes.is_empty(), "write prediction is one-shot");
        }
    }

    #[test]
    fn accuracy_counters_reflect_hits_and_misses() {
        // succ_threshold above 1.0 keeps prediction maintenance always on,
        // the configuration the Figure 3 accuracy harness uses.
        let config = ShrinkConfig {
            affinity_bias: 32,
            succ_threshold: 1.1,
            ..ShrinkConfig::default()
        };
        let s = Shrink::new(config);
        let oracle = StaticWrites::new();
        let c = ctx(1, &oracle);
        let hit = VarId::from_u64(1);
        let miss = VarId::from_u64(2);

        // Two transactions reading {hit, miss} to build predictions.
        for _ in 0..2 {
            s.before_start(&c);
            s.on_read(&c, hit);
            s.on_read(&c, miss);
            commit_empty(&s, &c);
        }
        // Third transaction reads only `hit`; both were predicted.
        s.before_start(&c);
        s.on_read(&c, hit);
        s.on_commit(&c, &[hit], &[]);

        let stats = s.prediction_stats();
        assert_eq!(stats.read_predicted, 2);
        assert_eq!(stats.read_correct, 1);
        assert_eq!(stats.read_accuracy(), Some(0.5));
    }

    #[test]
    fn read_only_transactions_are_invisible() {
        let s = Shrink::new(ShrinkConfig::default());
        let oracle = StaticWrites::new();
        let mut c = ctx(1, &oracle);
        c.kind = TxnKind::ReadOnly;
        for _ in 0..20 {
            s.before_start(&c);
            s.on_commit(&c, &[], &[]);
        }
        // No per-thread state was even created: the success-rate EMA, the
        // locality ring and the prediction counters never saw the reader.
        assert_eq!(s.success_rate(ThreadId::from_u16(1)), None);
        assert_eq!(s.prediction_stats(), PredictionStats::default());
        assert_eq!(s.wait_count(), 0);
    }

    #[test]
    fn read_only_completion_does_not_disturb_a_struggling_thread() {
        // A thread mixing read-write aborts with read-only scans: the scans
        // must leave the decayed success rate exactly where it was.
        let s = Shrink::new(ShrinkConfig::default());
        let oracle = StaticWrites::new();
        let c = ctx(1, &oracle);
        let t = ThreadId::from_u16(1);
        s.before_start(&c);
        s.on_abort(&c, &Abort::new(AbortReason::WriteConflict), &[], &[]);
        assert_eq!(s.success_rate(t), Some(0.5));
        let mut ro = ctx(1, &oracle);
        ro.kind = TxnKind::ReadOnly;
        for _ in 0..8 {
            s.before_start(&ro);
            s.on_commit(&ro, &[], &[]);
        }
        assert_eq!(s.success_rate(t), Some(0.5), "scans must not heal the EMA");
    }

    #[test]
    fn read_prediction_survives_aborts_but_not_commits() {
        let s = Shrink::new(ShrinkConfig {
            succ_threshold: 1.1,
            ..ShrinkConfig::default()
        });
        let oracle = StaticWrites::new();
        let c = ctx(1, &oracle);
        let addr = VarId::from_u64(7);
        let t = ThreadId::from_u16(1);

        s.before_start(&c);
        s.on_read(&c, addr);
        commit_empty(&s, &c);
        s.before_start(&c);
        s.on_read(&c, addr); // predicted now
        s.on_abort(&c, &Abort::new(AbortReason::ReadValidation), &[addr], &[]);

        // After an abort the prediction must survive the next start.
        s.before_start(&c);
        {
            let slot = s.threads.get(t);
            assert!(slot.lock().pred_reads.contains(&addr));
        }
        s.on_read(&c, addr);
        commit_empty(&s, &c);

        // After a commit the next start clears it.
        s.before_start(&c);
        {
            let slot = s.threads.get(t);
            assert!(slot.lock().pred_reads.is_empty());
        }
        commit_empty(&s, &c);
    }
}
