//! # shrink-core — prediction-based transaction scheduling
//!
//! This crate implements the scheduling contribution of *"Preventing versus
//! Curing: Avoiding Conflicts in Transactional Memories"* (PODC 2009) on top
//! of the [`shrink-stm`](shrink_stm) substrate:
//!
//! * [`Shrink`] — the paper's scheduler: Bloom-filter temporal-locality
//!   read-set prediction, aborted-write-set write prediction, per-thread
//!   success rates, and the *serialization affinity* heuristic;
//! * [`Ats`] — adaptive transaction scheduling (Yoo & Lee), the paper's
//!   representative of coarse reactive serialization;
//! * [`Pool`] — serialize every contended thread, the paper's measurement
//!   baseline for the cost/benefit of serialization;
//! * [`Serializer`] — CAR-STM-style schedule-after-conflict.
//!
//! All schedulers plug into any [`TmRuntime`](shrink_stm::TmRuntime) via
//! [`TmBuilder::scheduler`](shrink_stm::runtime::TmBuilder::scheduler); pick
//! one dynamically with [`SchedulerKind`].
//!
//! ```
//! use shrink_core::{Shrink, ShrinkConfig};
//! use shrink_stm::{TmRuntime, TVar};
//! use std::sync::Arc;
//!
//! let shrink = Arc::new(Shrink::new(ShrinkConfig::default()));
//! let rt = TmRuntime::builder().scheduler_arc(shrink.clone()).build();
//!
//! let v = TVar::new(0u64);
//! rt.run(|tx| tx.modify(&v, |x| x + 1));
//!
//! println!("prediction stats: {:?}", shrink.prediction_stats());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ats;
pub mod bloom;
pub mod kind;
pub mod pool;
pub mod serial_lock;
pub mod serializer;
pub mod shrink;
pub mod slots;

pub use ats::{Ats, AtsConfig};
pub use bloom::{BloomFilter, BloomRing};
pub use kind::SchedulerKind;
pub use pool::Pool;
pub use serial_lock::{SerialLock, SerialWait};
pub use serializer::{Serializer, SerializerConfig, SerializerWaitStats};
pub use shrink::{PredictionStats, Shrink, ShrinkConfig};
pub use slots::ThreadSlots;
