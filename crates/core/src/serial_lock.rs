//! The global serialization lock shared by scheduler policies.
//!
//! All serializing schedulers in the paper funnel "dangerous" transactions
//! through one process-wide mutex (the paper implements it with a pthread
//! mutex). This wrapper adds the piece Shrink needs on top: a counter of
//! threads currently serialized (waiting for or holding the lock), which is
//! the *serialization affinity* signal, and per-thread ownership tracking so
//! `on_commit`/`on_abort` can release exactly when the paper's Algorithm 1
//! says "if own global lock then unlock".
//!
//! Since the parking rewrite the default backing is the futex-parked
//! [`RawMutex`]: a queued transaction sleeps in the kernel instead of
//! burning its core, which is precisely the regime (more threads than
//! cores, everything serialized) where the paper's Figures 7/9 live. The
//! old spin-then-yield behaviour survives behind
//! [`SerialWait::SpinYield`] so benchmarks can quantify the difference
//! (`bench_locks`, DESIGN.md §8).

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

use parking_lot::lock_api::RawMutex as _;
use parking_lot::{RawMutex, SpinRawMutex};
use shrink_stm::ThreadId;

use crate::slots::ThreadSlots;

/// How a [`SerialLock`] waits when contended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SerialWait {
    /// Park in the kernel (futex wait; portable parker elsewhere). Queued
    /// threads release their core — the default.
    #[default]
    Parked,
    /// Spin briefly, then `yield_now` in a loop. Retained as the benchmark
    /// baseline; every queued thread keeps burning a scheduling quantum.
    SpinYield,
}

impl fmt::Display for SerialWait {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerialWait::Parked => f.write_str("parked"),
            SerialWait::SpinYield => f.write_str("spin-yield"),
        }
    }
}

/// The raw mutex actually backing the lock.
enum RawImpl {
    Parked(RawMutex),
    SpinYield(SpinRawMutex),
}

impl RawImpl {
    fn lock(&self) {
        match self {
            RawImpl::Parked(raw) => raw.lock(),
            RawImpl::SpinYield(raw) => raw.lock(),
        }
    }

    /// # Safety
    ///
    /// The calling thread must hold the lock.
    unsafe fn unlock(&self) {
        match self {
            // SAFETY: forwarded contract.
            RawImpl::Parked(raw) => unsafe { raw.unlock() },
            // SAFETY: forwarded contract.
            RawImpl::SpinYield(raw) => unsafe { raw.unlock() },
        }
    }
}

/// A global mutex with a serialized-thread counter and per-thread ownership
/// bookkeeping.
pub struct SerialLock {
    raw: RawImpl,
    /// Exact count of threads between `acquire`'s entry and
    /// `release_if_held`'s exit — i.e. blocked on or holding the lock.
    ///
    /// Ordering: the increment/decrement are `SeqCst` RMWs and the read is
    /// a `SeqCst` load, so every observer sees the transitions in one total
    /// order consistent with the park/unpark they bracket. A thread is
    /// counted *before* it can possibly block (increment precedes the raw
    /// `lock()`) and stays counted until *after* the lock is released
    /// (decrement follows the raw `unlock()`), so the signal can neither
    /// transiently under-count a parked thread nor drop below the number of
    /// holders — `wait_count` is exact, never an estimate, across the
    /// futex park/unpark boundary.
    waiting: AtomicU32,
    holds: ThreadSlots<AtomicU32>,
}

impl SerialLock {
    /// Creates an unheld, futex-parked lock.
    pub fn new() -> Self {
        Self::with_wait(SerialWait::Parked)
    }

    /// Creates an unheld lock with an explicit waiting strategy.
    pub fn with_wait(wait: SerialWait) -> Self {
        SerialLock {
            raw: match wait {
                SerialWait::Parked => RawImpl::Parked(RawMutex::INIT),
                SerialWait::SpinYield => RawImpl::SpinYield(SpinRawMutex::INIT),
            },
            waiting: AtomicU32::new(0),
            holds: ThreadSlots::new(|| AtomicU32::new(0)),
        }
    }

    /// Number of threads currently serialized: blocked on or holding the
    /// lock. This is the paper's `wait_count`, and it is exact (see the
    /// field docs on `waiting`).
    pub fn wait_count(&self) -> u32 {
        self.waiting.load(Ordering::SeqCst)
    }

    /// Serializes the calling thread: counts it as waiting, then blocks
    /// (parked, by default) until the lock is acquired. No-op if the thread
    /// already holds it.
    pub fn acquire(&self, me: ThreadId) {
        let held = self.holds.get(me);
        if held.load(Ordering::Relaxed) != 0 {
            return;
        }
        // Count first, block second: a parked thread is always visible in
        // the affinity signal.
        self.waiting.fetch_add(1, Ordering::SeqCst);
        self.raw.lock();
        held.store(1, Ordering::Relaxed);
    }

    /// Releases the lock if the calling thread holds it; returns whether a
    /// release happened.
    pub fn release_if_held(&self, me: ThreadId) -> bool {
        let held = self.holds.get(me);
        if held.load(Ordering::Relaxed) == 0 {
            return false;
        }
        held.store(0, Ordering::Relaxed);
        // SAFETY: this thread holds the raw mutex (tracked by `holds`, which
        // is written only by the owning thread between acquire/release).
        unsafe {
            self.raw.unlock();
        }
        // Uncount last: the thread stays in the signal until the lock is
        // actually free for the next waiter.
        self.waiting.fetch_sub(1, Ordering::SeqCst);
        true
    }

    /// True if `me` currently holds the lock.
    pub fn is_held_by(&self, me: ThreadId) -> bool {
        self.holds
            .try_get(me)
            .is_some_and(|h| h.load(Ordering::Relaxed) != 0)
    }
}

impl Default for SerialLock {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SerialLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SerialLock")
            .field("wait_count", &self.wait_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn tid(raw: u16) -> ThreadId {
        ThreadId::from_u16(raw)
    }

    #[test]
    fn acquire_release_round_trip() {
        for wait in [SerialWait::Parked, SerialWait::SpinYield] {
            let lock = SerialLock::with_wait(wait);
            let me = tid(1);
            assert_eq!(lock.wait_count(), 0);
            lock.acquire(me);
            assert!(lock.is_held_by(me));
            assert_eq!(lock.wait_count(), 1);
            assert!(lock.release_if_held(me));
            assert!(!lock.is_held_by(me));
            assert_eq!(lock.wait_count(), 0);
            assert!(!lock.release_if_held(me), "double release is a no-op");
        }
    }

    #[test]
    fn reacquire_while_held_is_noop() {
        let lock = SerialLock::new();
        let me = tid(1);
        lock.acquire(me);
        lock.acquire(me);
        assert_eq!(lock.wait_count(), 1);
        assert!(lock.release_if_held(me));
        assert_eq!(lock.wait_count(), 0);
    }

    #[test]
    fn contending_threads_serialize() {
        for wait in [SerialWait::Parked, SerialWait::SpinYield] {
            let lock = Arc::new(SerialLock::with_wait(wait));
            let shared = Arc::new(AtomicU32::new(0));
            let handles: Vec<_> = (1..=4u16)
                .map(|raw| {
                    let lock = Arc::clone(&lock);
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || {
                        let me = tid(raw);
                        for _ in 0..100 {
                            lock.acquire(me);
                            // Critical section: non-atomic-looking increment.
                            let v = shared.load(Ordering::Relaxed);
                            std::hint::spin_loop();
                            shared.store(v + 1, Ordering::Relaxed);
                            assert!(lock.release_if_held(me));
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(shared.load(Ordering::Relaxed), 400);
            assert_eq!(lock.wait_count(), 0);
        }
    }

    #[test]
    fn wait_count_observes_blocked_threads() {
        let lock = Arc::new(SerialLock::new());
        lock.acquire(tid(1));
        let waiter = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                lock.acquire(tid(2));
                lock.release_if_held(tid(2));
            })
        };
        // Wait until the second thread is counted; along the way the signal
        // must never over-count (exactness: only two threads exist, so any
        // reading above 2 would be a counting bug across park/unpark).
        let mut tries = 0;
        loop {
            let count = lock.wait_count();
            assert!(count <= 2, "wait_count {count} over-counts two threads");
            if count == 2 || tries >= 1000 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
            tries += 1;
        }
        assert_eq!(lock.wait_count(), 2, "holder + parked waiter");
        lock.release_if_held(tid(1));
        waiter.join().unwrap();
        // Quiescent: the counter must return exactly to zero — the paper's
        // affinity gate reads it raw, a residual ±1 would skew every
        // serialization decision from here on.
        assert_eq!(lock.wait_count(), 0);
    }
}
