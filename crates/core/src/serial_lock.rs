//! The global serialization lock shared by scheduler policies.
//!
//! All serializing schedulers in the paper funnel "dangerous" transactions
//! through one process-wide mutex (the paper implements it with a pthread
//! mutex). This wrapper adds the piece Shrink needs on top: a counter of
//! threads currently serialized (waiting for or holding the lock), which is
//! the *serialization affinity* signal, and per-thread ownership tracking so
//! `on_commit`/`on_abort` can release exactly when the paper's Algorithm 1
//! says "if own global lock then unlock".

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

use parking_lot::lock_api::RawMutex as _;
use parking_lot::RawMutex;
use shrink_stm::ThreadId;

use crate::slots::ThreadSlots;

/// A global mutex with a serialized-thread counter and per-thread ownership
/// bookkeeping.
pub struct SerialLock {
    raw: RawMutex,
    waiting: AtomicU32,
    holds: ThreadSlots<AtomicU32>,
}

impl SerialLock {
    /// Creates an unheld lock.
    pub fn new() -> Self {
        SerialLock {
            raw: RawMutex::INIT,
            waiting: AtomicU32::new(0),
            holds: ThreadSlots::new(|| AtomicU32::new(0)),
        }
    }

    /// Number of threads currently serialized: blocked on or holding the
    /// lock. This is the paper's `wait_count`.
    pub fn wait_count(&self) -> u32 {
        self.waiting.load(Ordering::Acquire)
    }

    /// Serializes the calling thread: counts it as waiting, then blocks
    /// until the lock is acquired. No-op if the thread already holds it.
    pub fn acquire(&self, me: ThreadId) {
        let held = self.holds.get(me);
        if held.load(Ordering::Relaxed) != 0 {
            return;
        }
        self.waiting.fetch_add(1, Ordering::AcqRel);
        self.raw.lock();
        held.store(1, Ordering::Relaxed);
    }

    /// Releases the lock if the calling thread holds it; returns whether a
    /// release happened.
    pub fn release_if_held(&self, me: ThreadId) -> bool {
        let held = self.holds.get(me);
        if held.load(Ordering::Relaxed) == 0 {
            return false;
        }
        held.store(0, Ordering::Relaxed);
        // SAFETY: this thread holds the raw mutex (tracked by `holds`, which
        // is written only by the owning thread between acquire/release).
        unsafe {
            self.raw.unlock();
        }
        self.waiting.fetch_sub(1, Ordering::AcqRel);
        true
    }

    /// True if `me` currently holds the lock.
    pub fn is_held_by(&self, me: ThreadId) -> bool {
        self.holds
            .try_get(me)
            .is_some_and(|h| h.load(Ordering::Relaxed) != 0)
    }
}

impl Default for SerialLock {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SerialLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SerialLock")
            .field("wait_count", &self.wait_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn tid(raw: u16) -> ThreadId {
        ThreadId::from_u16(raw)
    }

    #[test]
    fn acquire_release_round_trip() {
        let lock = SerialLock::new();
        let me = tid(1);
        assert_eq!(lock.wait_count(), 0);
        lock.acquire(me);
        assert!(lock.is_held_by(me));
        assert_eq!(lock.wait_count(), 1);
        assert!(lock.release_if_held(me));
        assert!(!lock.is_held_by(me));
        assert_eq!(lock.wait_count(), 0);
        assert!(!lock.release_if_held(me), "double release is a no-op");
    }

    #[test]
    fn reacquire_while_held_is_noop() {
        let lock = SerialLock::new();
        let me = tid(1);
        lock.acquire(me);
        lock.acquire(me);
        assert_eq!(lock.wait_count(), 1);
        assert!(lock.release_if_held(me));
        assert_eq!(lock.wait_count(), 0);
    }

    #[test]
    fn contending_threads_serialize() {
        let lock = Arc::new(SerialLock::new());
        let shared = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (1..=4u16)
            .map(|raw| {
                let lock = Arc::clone(&lock);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let me = tid(raw);
                    for _ in 0..100 {
                        lock.acquire(me);
                        // Critical section: non-atomic-looking increment.
                        let v = shared.load(Ordering::Relaxed);
                        std::hint::spin_loop();
                        shared.store(v + 1, Ordering::Relaxed);
                        assert!(lock.release_if_held(me));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.load(Ordering::Relaxed), 400);
        assert_eq!(lock.wait_count(), 0);
    }

    #[test]
    fn wait_count_observes_blocked_threads() {
        let lock = Arc::new(SerialLock::new());
        lock.acquire(tid(1));
        let waiter = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                lock.acquire(tid(2));
                lock.release_if_held(tid(2));
            })
        };
        // Wait until the second thread is counted.
        let mut tries = 0;
        while lock.wait_count() < 2 && tries < 1000 {
            std::thread::sleep(Duration::from_millis(1));
            tries += 1;
        }
        assert_eq!(lock.wait_count(), 2, "holder + waiter");
        lock.release_if_held(tid(1));
        waiter.join().unwrap();
        assert_eq!(lock.wait_count(), 0);
    }
}
