//! Bloom filters over variable identifiers.
//!
//! Shrink "maintains the read set of past few committed transactions of each
//! thread in a set of Bloom filters", which "provide a fast means to insert
//! addresses, and to check the membership of an address". This module is
//! that representation: a fixed-size bit array with `k` indices derived from
//! one 64-bit mix of the [`VarId`].

use std::fmt;

use shrink_stm::VarId;

/// A fixed-size Bloom filter of [`VarId`]s.
///
/// No false negatives; false-positive rate is governed by the bit size and
/// the number of inserted elements. The default geometry (8192 bits, 2
/// probes) keeps the rate below ~2 % for the read-set sizes of the paper's
/// benchmarks.
///
/// # Examples
///
/// ```
/// use shrink_core::bloom::BloomFilter;
/// use shrink_stm::VarId;
///
/// let mut bf = BloomFilter::with_bits(1024, 2);
/// let v = VarId::from_u64(42);
/// assert!(!bf.contains(v));
/// bf.insert(v);
/// assert!(bf.contains(v));
/// ```
#[derive(Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    mask: u64,
    probes: u32,
    inserted: usize,
}

impl BloomFilter {
    /// Creates a filter with `bits` bits (rounded up to a power of two,
    /// minimum 64) and `probes` hash probes (clamped to 1..=8).
    pub fn with_bits(bits: usize, probes: u32) -> Self {
        let bits = bits.next_power_of_two().max(64);
        BloomFilter {
            bits: vec![0; bits / 64],
            mask: (bits - 1) as u64,
            probes: probes.clamp(1, 8),
            inserted: 0,
        }
    }

    /// The number of bits in the filter.
    pub fn bit_len(&self) -> usize {
        self.bits.len() * 64
    }

    /// How many insertions the filter has absorbed (not distinct elements).
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Computes the probe positions into a stack buffer (no allocation —
    /// this sits on the per-read hot path of the Shrink scheduler).
    #[inline]
    fn probe_positions(&self, var: VarId) -> ([u64; 8], usize) {
        // Two independent 64-bit mixes combined Kirsch-Mitzenmacher style.
        let x = var.as_u64();
        let h1 = splitmix64(x);
        let h2 = splitmix64(x ^ 0x9E37_79B9_7F4A_7C15) | 1;
        let mut out = [0u64; 8];
        for (i, slot) in out.iter_mut().take(self.probes as usize).enumerate() {
            *slot = h1.wrapping_add((i as u64).wrapping_mul(h2)) & self.mask;
        }
        (out, self.probes as usize)
    }

    /// Inserts `var`.
    pub fn insert(&mut self, var: VarId) {
        let (positions, n) = self.probe_positions(var);
        for &pos in &positions[..n] {
            self.bits[(pos / 64) as usize] |= 1 << (pos % 64);
        }
        self.inserted += 1;
    }

    /// Inserts `var`, returning `true` if it was (probably) absent —
    /// one probe-position computation for the combined test-and-set.
    pub fn insert_if_absent(&mut self, var: VarId) -> bool {
        let (positions, n) = self.probe_positions(var);
        let mut was_present = true;
        for &pos in &positions[..n] {
            let word = &mut self.bits[(pos / 64) as usize];
            let bit = 1 << (pos % 64);
            if *word & bit == 0 {
                was_present = false;
                *word |= bit;
            }
        }
        if !was_present {
            self.inserted += 1;
        }
        !was_present
    }

    /// True if `var` may have been inserted (no false negatives).
    pub fn contains(&self, var: VarId) -> bool {
        let (positions, n) = self.probe_positions(var);
        positions[..n]
            .iter()
            .all(|&pos| self.bits[(pos / 64) as usize] & (1 << (pos % 64)) != 0)
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.inserted = 0;
    }

    /// Fraction of set bits, a cheap saturation indicator.
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / self.bit_len() as f64
    }
}

impl fmt::Debug for BloomFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BloomFilter")
            .field("bits", &self.bit_len())
            .field("probes", &self.probes)
            .field("inserted", &self.inserted)
            .finish()
    }
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A ring of Bloom filters covering the last `window` transactions of a
/// thread, with per-age confidence weights — Shrink's read-set predictor
/// memory.
///
/// `filters()[0]` is the current transaction's filter (`bf0` in the paper's
/// Algorithm 1); index `i` is the transaction `i` completions ago.
#[derive(Clone, Debug)]
pub struct BloomRing {
    filters: Vec<BloomFilter>,
    bits: usize,
    probes: u32,
}

impl BloomRing {
    /// Creates a ring of `window` filters of identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize, bits: usize, probes: u32) -> Self {
        assert!(window > 0, "locality window must be at least 1");
        BloomRing {
            filters: (0..window)
                .map(|_| BloomFilter::with_bits(bits, probes))
                .collect(),
            bits,
            probes,
        }
    }

    /// The locality window (number of remembered transactions).
    pub fn window(&self) -> usize {
        self.filters.len()
    }

    /// The current transaction's filter.
    pub fn current(&self) -> &BloomFilter {
        &self.filters[0]
    }

    /// Mutable access to the current transaction's filter.
    pub fn current_mut(&mut self) -> &mut BloomFilter {
        &mut self.filters[0]
    }

    /// The filter of the transaction `age` completions ago (`age` ≥ 1).
    pub fn past(&self, age: usize) -> &BloomFilter {
        &self.filters[age]
    }

    /// Sums the confidence weights `weights[age-1]` of every past filter
    /// containing `var` — the paper's per-address confidence.
    pub fn confidence(&self, var: VarId, weights: &[u32]) -> u32 {
        let mut confidence = 0;
        for (age, filter) in self.filters.iter().enumerate().skip(1) {
            if filter.contains(var) {
                confidence += weights.get(age - 1).copied().unwrap_or(0);
            }
        }
        confidence
    }

    /// Finishes the current transaction: ages every filter by one and
    /// installs a fresh `bf0`.
    pub fn rotate(&mut self) {
        let mut recycled = self.filters.pop().expect("window >= 1");
        recycled.clear();
        self.filters.insert(0, recycled);
        debug_assert_eq!(
            self.bits.next_power_of_two().max(64),
            self.filters[0].bit_len()
        );
        debug_assert_eq!(self.probes.clamp(1, 8), self.filters[0].probes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(raw: u64) -> VarId {
        VarId::from_u64(raw)
    }

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::with_bits(4096, 2);
        for i in 0..500 {
            bf.insert(v(i));
        }
        for i in 0..500 {
            assert!(bf.contains(v(i)), "inserted element {i} must be present");
        }
    }

    #[test]
    fn false_positive_rate_is_low_at_design_load() {
        let mut bf = BloomFilter::with_bits(8192, 2);
        for i in 0..500 {
            bf.insert(v(i));
        }
        let false_positives = (10_000..20_000).filter(|&i| bf.contains(v(i))).count();
        let rate = false_positives as f64 / 10_000.0;
        assert!(rate < 0.05, "false positive rate too high: {rate}");
    }

    #[test]
    fn clear_empties_the_filter() {
        let mut bf = BloomFilter::with_bits(1024, 2);
        bf.insert(v(1));
        assert!(bf.fill_ratio() > 0.0);
        bf.clear();
        assert!(!bf.contains(v(1)));
        assert_eq!(bf.inserted(), 0);
        assert_eq!(bf.fill_ratio(), 0.0);
    }

    #[test]
    fn geometry_is_normalized() {
        let bf = BloomFilter::with_bits(1000, 20);
        assert_eq!(bf.bit_len(), 1024);
        let bf = BloomFilter::with_bits(0, 0);
        assert_eq!(bf.bit_len(), 64);
    }

    #[test]
    fn ring_confidence_weights_by_age() {
        // Paper constants: window 4, weights c1=3, c2=2, c3=1, threshold 3.
        let mut ring = BloomRing::new(4, 1024, 2);
        let weights = [3, 2, 1];
        let addr = v(77);

        // Read in the current tx only: no past evidence.
        ring.current_mut().insert(addr);
        assert_eq!(ring.confidence(addr, &weights), 0);

        // One rotation: the read is now "one tx ago" => confidence 3.
        ring.rotate();
        assert_eq!(ring.confidence(addr, &weights), 3);

        // Two more rotations: "three tx ago" => confidence 1.
        ring.rotate();
        ring.rotate();
        assert_eq!(ring.confidence(addr, &weights), 1);

        // Fourth rotation: evidence falls out of the window.
        ring.rotate();
        assert_eq!(ring.confidence(addr, &weights), 0);
    }

    #[test]
    fn ring_accumulates_across_adjacent_transactions() {
        let mut ring = BloomRing::new(4, 1024, 2);
        let weights = [3, 2, 1];
        let addr = v(5);
        // Read in two consecutive transactions.
        ring.current_mut().insert(addr);
        ring.rotate();
        ring.current_mut().insert(addr);
        ring.rotate();
        // Present 1 tx ago (3) and 2 tx ago (2).
        assert_eq!(ring.confidence(addr, &weights), 5);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_window_is_rejected() {
        let _ = BloomRing::new(0, 64, 1);
    }
}
