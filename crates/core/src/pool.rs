//! The Pool scheduler: serialize every transaction that faces contention.
//!
//! The paper builds Pool as a measurement instrument: "to understand the
//! performance tradeoff associated with serialization, we built a simple TM
//! scheduler that serializes all threads that face contention". A thread
//! that aborts runs its retry through the global lock; a commit sets it free
//! again. Comparing Pool against base and Shrink variants (Figure 5) is what
//! motivates the serialization-affinity heuristic.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

use shrink_stm::{Abort, SchedCtx, TxScheduler, VarId};

use crate::serial_lock::{SerialLock, SerialWait};
use crate::slots::ThreadSlots;

/// The Pool scheduler.
///
/// # Examples
///
/// ```
/// use shrink_core::Pool;
/// use shrink_stm::TmRuntime;
///
/// let rt = TmRuntime::builder().scheduler(Pool::new()).build();
/// assert_eq!(rt.scheduler_name(), "pool");
/// ```
pub struct Pool {
    lock: SerialLock,
    contended: ThreadSlots<AtomicBool>,
}

impl Pool {
    /// Creates a Pool scheduler (parked serialization lock).
    pub fn new() -> Self {
        Self::with_wait(SerialWait::Parked)
    }

    /// Creates a Pool scheduler with an explicit serialization waiting
    /// strategy — `SerialWait::SpinYield` reproduces the pre-parking
    /// behaviour for baseline measurements (`bench_locks`).
    pub fn with_wait(wait: SerialWait) -> Self {
        Pool {
            lock: SerialLock::with_wait(wait),
            contended: ThreadSlots::new(|| AtomicBool::new(false)),
        }
    }

    /// Number of threads currently serialized.
    pub fn wait_count(&self) -> u32 {
        self.lock.wait_count()
    }
}

impl Default for Pool {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Pool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pool")
            .field("wait_count", &self.wait_count())
            .finish()
    }
}

impl TxScheduler for Pool {
    fn before_start(&self, ctx: &SchedCtx<'_>) {
        // Read-only transactions take no locks and cannot face contention;
        // even a contended thread runs its reads outside the queue.
        if ctx.kind.is_read_only() {
            return;
        }
        if self.contended.get(ctx.thread).load(Ordering::Relaxed) {
            self.lock.acquire(ctx.thread);
        }
    }

    fn on_commit(&self, ctx: &SchedCtx<'_>, _reads: &[VarId], _writes: &[VarId]) {
        // A read-only completion must not clear the contended flag — the
        // thread's next read-write attempt still owes the queue a pass.
        if ctx.kind.is_read_only() {
            return;
        }
        self.contended
            .get(ctx.thread)
            .store(false, Ordering::Relaxed);
        self.lock.release_if_held(ctx.thread);
    }

    fn on_retry_wait(&self, ctx: &SchedCtx<'_>, _reads: &[VarId], _writes: &[VarId]) {
        // A retry is not "facing contention": the contended flag keeps
        // whatever value the last real outcome gave it; only a held
        // serialization slot is handed back.
        self.lock.release_if_held(ctx.thread);
    }

    fn on_abort(&self, ctx: &SchedCtx<'_>, _abort: &Abort, _reads: &[VarId], _writes: &[VarId]) {
        self.contended
            .get(ctx.thread)
            .store(true, Ordering::Relaxed);
        self.lock.release_if_held(ctx.thread);
    }

    fn on_reset(&self, ctx: &SchedCtx<'_>) {
        // Abandoned attempt: the contended flag keeps its last real value
        // (a panic says nothing about contention); only a held
        // serialization slot is handed back.
        self.lock.release_if_held(ctx.thread);
    }

    fn name(&self) -> &str {
        "pool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrink_stm::{AbortReason, NoEpochs, StaticWrites, ThreadId, TxnKind};

    fn ctx<'a>(thread: u16, oracle: &'a StaticWrites) -> SchedCtx<'a> {
        SchedCtx {
            thread: ThreadId::from_u16(thread),
            visible: oracle,
            epochs: &NoEpochs,
            kind: TxnKind::ReadWrite,
        }
    }

    fn ro_ctx<'a>(thread: u16, oracle: &'a StaticWrites) -> SchedCtx<'a> {
        SchedCtx {
            kind: TxnKind::ReadOnly,
            ..ctx(thread, oracle)
        }
    }

    #[test]
    fn first_attempt_is_free_retry_is_serialized() {
        let pool = Pool::new();
        let oracle = StaticWrites::new();
        let c = ctx(1, &oracle);
        pool.before_start(&c);
        assert_eq!(pool.wait_count(), 0);
        pool.on_abort(&c, &Abort::new(AbortReason::WriteConflict), &[], &[]);
        pool.before_start(&c);
        assert_eq!(pool.wait_count(), 1, "contended thread serializes");
        pool.on_commit(&c, &[], &[]);
        assert_eq!(pool.wait_count(), 0);
        // After the commit the flag is clear again.
        pool.before_start(&c);
        assert_eq!(pool.wait_count(), 0);
        pool.on_commit(&c, &[], &[]);
    }

    #[test]
    fn retry_wait_releases_the_lock_without_flagging_contention() {
        let pool = Pool::new();
        let oracle = StaticWrites::new();
        let c = ctx(1, &oracle);
        pool.before_start(&c);
        pool.on_retry_wait(&c, &[], &[]);
        // A retry is not contention: the next start runs free.
        pool.before_start(&c);
        assert_eq!(pool.wait_count(), 0);
        pool.on_commit(&c, &[], &[]);

        // And a contended thread that retries releases the slot it held,
        // while staying contended for its next real attempt.
        pool.before_start(&c);
        pool.on_abort(&c, &Abort::new(AbortReason::WriteConflict), &[], &[]);
        pool.before_start(&c);
        assert_eq!(pool.wait_count(), 1);
        pool.on_retry_wait(&c, &[], &[]);
        assert_eq!(pool.wait_count(), 0, "slot released while parked");
        pool.before_start(&c);
        assert_eq!(pool.wait_count(), 1, "contended flag survives the wait");
        pool.on_commit(&c, &[], &[]);
    }

    #[test]
    fn read_only_transactions_bypass_the_queue_and_keep_the_flag() {
        let pool = Pool::new();
        let oracle = StaticWrites::new();
        let rw = ctx(1, &oracle);
        let ro = ro_ctx(1, &oracle);
        // Mark the thread contended with a real abort.
        pool.before_start(&rw);
        pool.on_abort(&rw, &Abort::new(AbortReason::WriteConflict), &[], &[]);
        // Read-only brackets run free even while the thread is contended...
        for _ in 0..5 {
            pool.before_start(&ro);
            assert_eq!(pool.wait_count(), 0, "readers never serialize");
            pool.on_commit(&ro, &[], &[]);
        }
        // ...and do not clear the flag: the next read-write attempt still
        // pays the serialization toll.
        pool.before_start(&rw);
        assert_eq!(pool.wait_count(), 1, "contended flag survives ro commits");
        pool.on_commit(&rw, &[], &[]);
        assert_eq!(pool.wait_count(), 0);
    }

    #[test]
    fn abort_while_serialized_keeps_thread_serialized() {
        let pool = Pool::new();
        let oracle = StaticWrites::new();
        let c = ctx(1, &oracle);
        pool.before_start(&c);
        pool.on_abort(&c, &Abort::new(AbortReason::WriteConflict), &[], &[]);
        pool.before_start(&c);
        assert_eq!(pool.wait_count(), 1);
        pool.on_abort(&c, &Abort::new(AbortReason::ReadValidation), &[], &[]);
        assert_eq!(pool.wait_count(), 0, "abort releases the lock");
        pool.before_start(&c);
        assert_eq!(pool.wait_count(), 1, "but the retry serializes again");
        pool.on_commit(&c, &[], &[]);
    }
}
