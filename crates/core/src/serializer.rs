//! The Serializer scheduler, after CAR-STM (Dolev, Hendler & Suissa,
//! PODC 2008).
//!
//! "Upon a conflict between two transactions T₁ and T₂, one of the
//! transactions is scheduled after another": when an attempt aborts against
//! an identified enemy thread, the retry is postponed until that enemy
//! finishes its current transaction, guaranteeing the same pair never
//! conflicts on the same transactions twice.
//!
//! CAR-STM implements this by physically moving the transaction to the
//! enemy's per-core queue. Our runtime binds transactions to their threads,
//! so we keep the schedule-after ordering instead: the aborted thread waits
//! (bounded, yielding) for the enemy's attempt epoch to advance. The bound
//! protects against enemies that have gone idle, which the queue-based
//! formulation resolves trivially but a wait-based one must time out on.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use shrink_stm::{Abort, SchedCtx, ThreadId, TxScheduler, VarId};

use crate::slots::ThreadSlots;

/// Tuning parameters of [`Serializer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SerializerConfig {
    /// Maximum yields spent waiting for the enemy to finish before running
    /// anyway.
    pub max_wait_yields: u32,
}

impl Default for SerializerConfig {
    fn default() -> Self {
        SerializerConfig {
            max_wait_yields: 1 << 14,
        }
    }
}

#[derive(Debug)]
struct ThreadState {
    /// Incremented whenever this thread finishes an attempt (commit or
    /// abort).
    epoch: AtomicU64,
    /// Set by `on_abort`: who to wait for, and the epoch observed then.
    pending: Mutex<Option<(ThreadId, u64)>>,
}

/// The CAR-STM-style Serializer scheduler.
///
/// # Examples
///
/// ```
/// use shrink_core::{Serializer, SerializerConfig};
/// use shrink_stm::TmRuntime;
///
/// let rt = TmRuntime::builder()
///     .scheduler(Serializer::new(SerializerConfig::default()))
///     .build();
/// assert_eq!(rt.scheduler_name(), "serializer");
/// ```
pub struct Serializer {
    config: SerializerConfig,
    threads: ThreadSlots<ThreadState>,
}

impl Serializer {
    /// Creates a Serializer scheduler.
    pub fn new(config: SerializerConfig) -> Self {
        Serializer {
            config,
            threads: ThreadSlots::new(|| ThreadState {
                epoch: AtomicU64::new(0),
                pending: Mutex::new(None),
            }),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SerializerConfig {
        &self.config
    }

    fn epoch_of(&self, thread: ThreadId) -> u64 {
        self.threads
            .try_get(thread)
            .map(|s| s.epoch.load(Ordering::Acquire))
            .unwrap_or(0)
    }
}

impl fmt::Debug for Serializer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Serializer")
            .field("config", &self.config)
            .finish()
    }
}

impl TxScheduler for Serializer {
    fn before_start(&self, ctx: &SchedCtx<'_>) {
        let slot = self.threads.get(ctx.thread);
        let pending = slot.pending.lock().take();
        if let Some((enemy, observed_epoch)) = pending {
            let mut yields = 0;
            while self.epoch_of(enemy) == observed_epoch && yields < self.config.max_wait_yields {
                std::thread::yield_now();
                yields += 1;
            }
        }
    }

    fn on_commit(&self, ctx: &SchedCtx<'_>, _reads: &[VarId], _writes: &[VarId]) {
        self.threads
            .get(ctx.thread)
            .epoch
            .fetch_add(1, Ordering::AcqRel);
    }

    fn on_abort(&self, ctx: &SchedCtx<'_>, abort: &Abort, _reads: &[VarId], _writes: &[VarId]) {
        let slot = self.threads.get(ctx.thread);
        slot.epoch.fetch_add(1, Ordering::AcqRel);
        if let Some(enemy) = abort.enemy() {
            if enemy != ctx.thread && enemy != ThreadId::NONE {
                *slot.pending.lock() = Some((enemy, self.epoch_of(enemy)));
            }
        }
    }

    fn name(&self) -> &str {
        "serializer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrink_stm::{AbortReason, StaticWrites, VarId};
    use std::sync::Arc;

    fn ctx<'a>(thread: u16, oracle: &'a StaticWrites) -> SchedCtx<'a> {
        SchedCtx {
            thread: ThreadId::from_u16(thread),
            visible: oracle,
        }
    }

    #[test]
    fn abort_without_enemy_does_not_wait() {
        let s = Serializer::new(SerializerConfig::default());
        let oracle = StaticWrites::new();
        let c = ctx(1, &oracle);
        s.before_start(&c);
        s.on_abort(&c, &Abort::new(AbortReason::ReadValidation), &[], &[]);
        // Must return immediately (no pending enemy).
        s.before_start(&c);
        s.on_commit(&c, &[], &[]);
    }

    #[test]
    fn waits_until_enemy_finishes() {
        let s = Arc::new(Serializer::new(SerializerConfig {
            max_wait_yields: u32::MAX,
        }));
        let oracle = StaticWrites::new();
        let me = ctx(1, &oracle);
        let enemy_id = ThreadId::from_u16(2);

        // Touch the enemy slot so the epoch is observable, then record a
        // conflict against it.
        let _ = s.threads.get(enemy_id);
        s.before_start(&me);
        let abort = Abort::on_conflict(AbortReason::WriteConflict, VarId::from_u64(1), enemy_id);
        s.on_abort(&me, &abort, &[], &[]);

        let waiter = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let oracle = StaticWrites::new();
                let me = ctx(1, &oracle);
                // Blocks until the enemy's epoch advances.
                s.before_start(&me);
            })
        };
        // Give the waiter a moment to start spinning, then finish the
        // enemy's transaction.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!waiter.is_finished(), "waiter must be blocked on the enemy");
        let enemy_ctx = ctx(2, &oracle);
        s.on_commit(&enemy_ctx, &[], &[]);
        waiter.join().unwrap();
    }

    #[test]
    fn bounded_wait_times_out_on_idle_enemy() {
        let s = Serializer::new(SerializerConfig { max_wait_yields: 8 });
        let oracle = StaticWrites::new();
        let me = ctx(1, &oracle);
        let enemy_id = ThreadId::from_u16(2);
        let _ = s.threads.get(enemy_id);
        s.before_start(&me);
        let abort = Abort::on_conflict(AbortReason::WriteConflict, VarId::from_u64(1), enemy_id);
        s.on_abort(&me, &abort, &[], &[]);
        // The enemy never runs again; before_start must still return.
        s.before_start(&me);
        s.on_commit(&me, &[], &[]);
    }
}
