//! The Serializer scheduler, after CAR-STM (Dolev, Hendler & Suissa,
//! PODC 2008).
//!
//! "Upon a conflict between two transactions T₁ and T₂, one of the
//! transactions is scheduled after another": when an attempt aborts against
//! an identified enemy thread, the retry is postponed until that enemy
//! finishes its current transaction, guaranteeing the same pair never
//! conflicts on the same transactions twice.
//!
//! CAR-STM implements this by physically moving the transaction to the
//! enemy's per-core queue. Our runtime binds transactions to their threads,
//! so we keep the schedule-after ordering instead: the aborted thread waits
//! for the enemy's *attempt epoch* to advance past the value observed while
//! the conflict was live.
//!
//! Two properties make the wait correct and cheap (DESIGN.md §8.5):
//!
//! * **The epoch is sampled at conflict-detection time**, in the STM's
//!   conflict path, and carried inside the [`Abort`]. Sampling it any later
//!   (this scheduler's `on_abort` runs after rollback and log extraction)
//!   races a fast enemy: the enemy may already have committed the
//!   conflicting transaction, so a late sample would make the victim
//!   serialize behind the enemy's *next* transaction — the mis-prediction
//!   cost that makes waiting lose to restarting. An abort whose conflict
//!   was already over at detection time carries no epoch, and no wait
//!   happens at all.
//! * **The wait parks on an epoch futex** ([`EventCount`] per thread,
//!   advanced bump-and-wake by the runtime when an attempt finishes, or
//!   when the thread exits). The victim sleeps in the kernel and is woken
//!   by the enemy's commit/abort; the previous bounded `yield_now` poll
//!   loop survives only as the [`SerialWait::SpinYield`] benchmark
//!   baseline (`bench_sched`, `BENCH_sched.json`). The deadline bound
//!   against enemies that have gone idle is a wall-clock duration
//!   ([`SerializerConfig::max_wait`]), not a yield count, and an enemy
//!   whose epoch slot is absent (never registered, or its thread exited)
//!   is skipped outright instead of being waited on in vain.
//!
//! [`EventCount`]: parking_lot::EventCount

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use shrink_stm::{Abort, EpochWaitOutcome, SchedCtx, ThreadId, TxScheduler, VarId};

use crate::serial_lock::SerialWait;
use crate::slots::ThreadSlots;

/// Tuning parameters of [`Serializer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SerializerConfig {
    /// How the victim waits for its enemy to finish: parked on the epoch
    /// futex (default), or the legacy bounded yield-poll loop kept as the
    /// benchmark baseline.
    pub wait: SerialWait,
    /// Longest a [`SerialWait::Parked`] victim sleeps before running anyway
    /// — the bound against enemies that have gone idle.
    pub max_wait: Duration,
    /// Maximum yields of the [`SerialWait::SpinYield`] baseline before
    /// running anyway.
    pub max_wait_yields: u32,
}

impl Default for SerializerConfig {
    fn default() -> Self {
        SerializerConfig {
            wait: SerialWait::Parked,
            // Generous against real transactions (µs of work) while keeping
            // the idle-enemy stall far below the old yield bound's
            // worst case on a loaded box.
            max_wait: Duration::from_millis(2),
            max_wait_yields: 1 << 14,
        }
    }
}

/// Wait-op counters of a [`Serializer`] — how `before_start` actually
/// waited. The acceptance bar for the epoch futex lives here: on the parked
/// path `yield_polls` stays 0 no matter how long victims wait.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SerializerWaitStats {
    /// Parked epoch waits issued (each may sleep up to `max_wait`).
    pub parked_waits: u64,
    /// Waits that ended because the enemy's epoch advanced (including
    /// instantly, when the conflicting attempt was already over).
    pub advanced: u64,
    /// Waits that hit the idle-enemy bound (deadline or yield budget).
    pub timed_out: u64,
    /// Waits skipped because the enemy had no live epoch slot (never
    /// registered, or its thread exited).
    pub absent_skips: u64,
    /// `yield_now` calls spent polling — only the `SpinYield` baseline ever
    /// increments this.
    pub yield_polls: u64,
}

#[derive(Debug, Default)]
struct WaitCounters {
    parked_waits: AtomicU64,
    advanced: AtomicU64,
    timed_out: AtomicU64,
    absent_skips: AtomicU64,
    yield_polls: AtomicU64,
}

#[derive(Debug)]
struct ThreadState {
    /// Set by `on_abort`: who to wait for, and the enemy's attempt epoch
    /// observed *at conflict time* (carried by the [`Abort`]).
    pending: Mutex<Option<(ThreadId, u32)>>,
}

/// The CAR-STM-style Serializer scheduler.
///
/// # Examples
///
/// ```
/// use shrink_core::{Serializer, SerializerConfig};
/// use shrink_stm::TmRuntime;
///
/// let rt = TmRuntime::builder()
///     .scheduler(Serializer::new(SerializerConfig::default()))
///     .build();
/// assert_eq!(rt.scheduler_name(), "serializer");
/// ```
pub struct Serializer {
    config: SerializerConfig,
    threads: ThreadSlots<ThreadState>,
    counters: WaitCounters,
}

impl Serializer {
    /// Creates a Serializer scheduler.
    pub fn new(config: SerializerConfig) -> Self {
        Serializer {
            config,
            threads: ThreadSlots::new(|| ThreadState {
                pending: Mutex::new(None),
            }),
            counters: WaitCounters::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SerializerConfig {
        &self.config
    }

    /// Aggregate wait-op counters across all threads.
    pub fn wait_stats(&self) -> SerializerWaitStats {
        SerializerWaitStats {
            parked_waits: self.counters.parked_waits.load(Ordering::Relaxed),
            advanced: self.counters.advanced.load(Ordering::Relaxed),
            timed_out: self.counters.timed_out.load(Ordering::Relaxed),
            absent_skips: self.counters.absent_skips.load(Ordering::Relaxed),
            yield_polls: self.counters.yield_polls.load(Ordering::Relaxed),
        }
    }

    fn wait_parked(&self, ctx: &SchedCtx<'_>, enemy: ThreadId, observed: u32) {
        let deadline = Instant::now() + self.config.max_wait;
        match ctx.epochs.wait_epoch_change(enemy, observed, deadline) {
            EpochWaitOutcome::Advanced => {
                self.counters.parked_waits.fetch_add(1, Ordering::Relaxed);
                self.counters.advanced.fetch_add(1, Ordering::Relaxed);
            }
            EpochWaitOutcome::TimedOut => {
                self.counters.parked_waits.fetch_add(1, Ordering::Relaxed);
                self.counters.timed_out.fetch_add(1, Ordering::Relaxed);
            }
            // Not a wait op: the slot was dead on arrival, matching what
            // the SpinYield path counts for the same situation.
            EpochWaitOutcome::Absent => {
                self.counters.absent_skips.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn wait_yield_poll(&self, ctx: &SchedCtx<'_>, enemy: ThreadId, observed: u32) {
        let mut yields: u64 = 0;
        let counter = loop {
            match ctx.epochs.epoch_of(enemy) {
                None => break &self.counters.absent_skips,
                Some(e) if e != observed => break &self.counters.advanced,
                Some(_) if yields >= self.config.max_wait_yields as u64 => {
                    break &self.counters.timed_out;
                }
                Some(_) => {
                    std::thread::yield_now();
                    yields += 1;
                }
            }
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.counters
            .yield_polls
            .fetch_add(yields, Ordering::Relaxed);
    }
}

impl fmt::Debug for Serializer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Serializer")
            .field("config", &self.config)
            .field("wait_stats", &self.wait_stats())
            .finish()
    }
}

impl TxScheduler for Serializer {
    fn before_start(&self, ctx: &SchedCtx<'_>) {
        // A read-only transaction takes no locks and can have no enemy, so
        // it never waits — and it must not *consume* a pending
        // schedule-after either: that wait belongs to the thread's next
        // read-write attempt.
        if ctx.kind.is_read_only() {
            return;
        }
        let slot = self.threads.get(ctx.thread);
        let pending = slot.pending.lock().take();
        if let Some((enemy, observed)) = pending {
            match self.config.wait {
                SerialWait::Parked => self.wait_parked(ctx, enemy, observed),
                SerialWait::SpinYield => self.wait_yield_poll(ctx, enemy, observed),
            }
        }
    }

    fn on_retry_wait(&self, _ctx: &SchedCtx<'_>, _reads: &[VarId], _writes: &[VarId]) {
        // A deliberate retry has no enemy to schedule after: no pending
        // wait is recorded, and the runtime parks the thread on its read
        // set's commit events instead. Nothing to release — before_start
        // holds no lock.
    }

    fn on_abort(&self, ctx: &SchedCtx<'_>, abort: &Abort, _reads: &[VarId], _writes: &[VarId]) {
        // Schedule-after only when the conflict was *live* at detection
        // time: the Abort then carries the enemy's attempt epoch sampled at
        // that moment. An unstamped abort means the enemy had already
        // finished the conflicting attempt (or was never identified) —
        // there is nothing to wait for, and recording a later-sampled epoch
        // would serialize the victim behind the enemy's next transaction.
        if let (Some(enemy), Some(observed)) = (abort.enemy(), abort.enemy_epoch()) {
            if enemy != ctx.thread && enemy != ThreadId::NONE {
                *self.threads.get(ctx.thread).pending.lock() = Some((enemy, observed));
            }
        }
    }

    fn on_reset(&self, ctx: &SchedCtx<'_>) {
        // Abandoned attempt: drop any pending schedule-after target. The
        // abandoned attempt's conflict evidence is stale — serializing the
        // thread's *next* transaction behind it would be a spurious stall,
        // and (unlike the lock-based policies) this is the only per-thread
        // state before_start consumes. No lock is ever held here.
        *self.threads.get(ctx.thread).pending.lock() = None;
    }

    fn name(&self) -> &str {
        "serializer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrink_stm::{AbortReason, AttemptEpochs, EpochTable, StaticWrites, VarId};
    use std::sync::Arc;

    fn ctx<'a>(thread: u16, oracle: &'a StaticWrites, epochs: &'a EpochTable) -> SchedCtx<'a> {
        SchedCtx {
            thread: ThreadId::from_u16(thread),
            visible: oracle,
            epochs,
            kind: shrink_stm::TxnKind::ReadWrite,
        }
    }

    /// An abort against `enemy`, stamped with its current epoch (i.e. the
    /// conflict is live right now).
    fn live_conflict(epochs: &EpochTable, enemy: ThreadId) -> Abort {
        Abort::on_conflict(AbortReason::WriteConflict, VarId::from_u64(1), enemy)
            .with_enemy_epoch(epochs.epoch_of(enemy).expect("enemy registered"))
    }

    #[test]
    fn abort_without_enemy_does_not_wait() {
        let s = Serializer::new(SerializerConfig::default());
        let oracle = StaticWrites::new();
        let epochs = EpochTable::new();
        let c = ctx(1, &oracle, &epochs);
        s.before_start(&c);
        s.on_abort(&c, &Abort::new(AbortReason::ReadValidation), &[], &[]);
        // Must return immediately (no pending enemy).
        s.before_start(&c);
        s.on_commit(&c, &[], &[]);
        assert_eq!(s.wait_stats(), SerializerWaitStats::default());
    }

    #[test]
    fn unstamped_conflict_does_not_wait() {
        // The enemy is known but the Abort carries no conflict-time epoch:
        // the conflicting attempt was already over, so waiting would target
        // the enemy's *next* transaction. No pending wait may be recorded.
        let s = Serializer::new(SerializerConfig {
            // A wrongly recorded wait would stall the full bound and fail
            // the elapsed assertion below.
            max_wait: Duration::from_secs(60),
            ..SerializerConfig::default()
        });
        let oracle = StaticWrites::new();
        let epochs = EpochTable::new();
        let enemy = ThreadId::from_u16(2);
        epochs.ensure(enemy);
        let c = ctx(1, &oracle, &epochs);
        s.before_start(&c);
        let abort = Abort::on_conflict(AbortReason::WriteConflict, VarId::from_u64(1), enemy);
        s.on_abort(&c, &abort, &[], &[]);
        let start = Instant::now();
        s.before_start(&c);
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_eq!(s.wait_stats().parked_waits, 0, "no wait op at all");
    }

    #[test]
    fn retry_wait_records_no_schedule_after() {
        let s = Serializer::new(SerializerConfig {
            max_wait: Duration::from_secs(60),
            ..SerializerConfig::default()
        });
        let oracle = StaticWrites::new();
        let epochs = EpochTable::new();
        let c = ctx(1, &oracle, &epochs);
        s.before_start(&c);
        s.on_retry_wait(&c, &[VarId::from_u64(1)], &[]);
        // No pending enemy: the next start must return instantly.
        let start = Instant::now();
        s.before_start(&c);
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_eq!(s.wait_stats(), SerializerWaitStats::default());
    }

    #[test]
    fn waits_parked_until_enemy_finishes() {
        let s = Arc::new(Serializer::new(SerializerConfig {
            max_wait: Duration::from_secs(60),
            ..SerializerConfig::default()
        }));
        let oracle = StaticWrites::new();
        let epochs = Arc::new(EpochTable::new());
        let enemy = ThreadId::from_u16(2);
        epochs.ensure(enemy);

        let me = ctx(1, &oracle, &epochs);
        s.before_start(&me);
        s.on_abort(&me, &live_conflict(&epochs, enemy), &[], &[]);

        let waiter = {
            let s = Arc::clone(&s);
            let epochs = Arc::clone(&epochs);
            std::thread::spawn(move || {
                let oracle = StaticWrites::new();
                let me = ctx(1, &oracle, &epochs);
                // Parks until the enemy's epoch advances.
                s.before_start(&me);
            })
        };
        // Deterministic handshake: the waiter is provably parked on the
        // enemy's epoch before we let the enemy finish — no sleep races.
        while epochs.waiters_on(enemy) == 0 {
            std::thread::yield_now();
        }
        assert!(!waiter.is_finished(), "waiter must be parked on the enemy");
        epochs.bump(enemy);
        waiter.join().unwrap();

        let stats = s.wait_stats();
        assert_eq!(stats.parked_waits, 1);
        assert_eq!(stats.advanced, 1);
        assert_eq!(stats.timed_out, 0);
        // The acceptance bar: the parked path never yield-polls.
        assert_eq!(stats.yield_polls, 0, "parked wait must not yield-poll");
    }

    #[test]
    fn fast_committing_enemy_is_not_waited_for() {
        // Regression (stale-enemy-epoch bug): the enemy finishes the
        // conflicting attempt *between* conflict detection and the victim's
        // on_abort. The conflict-time epoch carried by the Abort is already
        // stale by then, so before_start must return instantly instead of
        // serializing the victim behind the enemy's next transaction.
        let s = Serializer::new(SerializerConfig {
            max_wait: Duration::from_secs(60),
            ..SerializerConfig::default()
        });
        let oracle = StaticWrites::new();
        let epochs = EpochTable::new();
        let enemy = ThreadId::from_u16(2);
        epochs.ensure(enemy);

        let me = ctx(1, &oracle, &epochs);
        s.before_start(&me);
        let abort = live_conflict(&epochs, enemy);
        // The fast enemy commits before the victim's abort bookkeeping runs.
        epochs.bump(enemy);
        s.on_abort(&me, &abort, &[], &[]);

        let start = Instant::now();
        s.before_start(&me);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "victim must not wait behind the enemy's next transaction"
        );
        let stats = s.wait_stats();
        assert_eq!(stats.advanced, 1, "wait satisfied without sleeping");
        assert_eq!(stats.yield_polls, 0);
    }

    #[test]
    fn absent_enemy_is_skipped_not_stalled() {
        // Regression (unregistered-enemy stall): an enemy with no live
        // epoch slot will never advance; the old code recorded epoch 0 for
        // it and burned the whole wait bound.
        let s = Serializer::new(SerializerConfig {
            max_wait: Duration::from_secs(60),
            ..SerializerConfig::default()
        });
        let oracle = StaticWrites::new();
        let epochs = EpochTable::new();
        let ghost = ThreadId::from_u16(7); // never registered
        let c = ctx(1, &oracle, &epochs);
        s.before_start(&c);
        let abort = Abort::on_conflict(AbortReason::WriteConflict, VarId::from_u64(1), ghost)
            .with_enemy_epoch(0);
        s.on_abort(&c, &abort, &[], &[]);
        let start = Instant::now();
        s.before_start(&c);
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_eq!(s.wait_stats().absent_skips, 1);
    }

    #[test]
    fn read_only_brackets_neither_wait_nor_consume_a_pending_schedule_after() {
        let s = Serializer::new(SerializerConfig {
            max_wait: Duration::from_millis(20),
            ..SerializerConfig::default()
        });
        let oracle = StaticWrites::new();
        let epochs = EpochTable::new();
        let enemy = ThreadId::from_u16(2);
        epochs.ensure(enemy);
        let rw = ctx(1, &oracle, &epochs);
        let ro = SchedCtx {
            kind: shrink_stm::TxnKind::ReadOnly,
            ..ctx(1, &oracle, &epochs)
        };

        s.before_start(&rw);
        s.on_abort(&rw, &live_conflict(&epochs, enemy), &[], &[]);

        // Read-only brackets in between return instantly and leave the
        // pending schedule-after alone.
        for _ in 0..3 {
            let start = Instant::now();
            s.before_start(&ro);
            assert!(start.elapsed() < Duration::from_millis(5));
            s.on_commit(&ro, &[], &[]);
        }
        assert_eq!(s.wait_stats().parked_waits, 0, "readers never wait");

        // The next read-write attempt still pays the wait (idle enemy, so
        // it times out — proving the pending entry survived).
        s.before_start(&rw);
        assert_eq!(
            s.wait_stats().timed_out,
            1,
            "the schedule-after belonged to the read-write attempt"
        );
        s.on_commit(&rw, &[], &[]);
    }

    #[test]
    fn bounded_wait_times_out_on_idle_enemy() {
        let max_wait = Duration::from_millis(20);
        let s = Serializer::new(SerializerConfig {
            max_wait,
            ..SerializerConfig::default()
        });
        let oracle = StaticWrites::new();
        let epochs = EpochTable::new();
        let enemy = ThreadId::from_u16(2);
        epochs.ensure(enemy);
        let me = ctx(1, &oracle, &epochs);
        s.before_start(&me);
        s.on_abort(&me, &live_conflict(&epochs, enemy), &[], &[]);
        // The enemy never runs again; before_start must still return, and
        // not before the deadline.
        let start = Instant::now();
        s.before_start(&me);
        assert!(start.elapsed() >= max_wait, "deadline must be honoured");
        s.on_commit(&me, &[], &[]);
        let stats = s.wait_stats();
        assert_eq!(stats.timed_out, 1);
        assert_eq!(stats.yield_polls, 0);
    }

    #[test]
    fn yield_poll_baseline_still_waits_and_counts_its_yields() {
        let s = Serializer::new(SerializerConfig {
            wait: SerialWait::SpinYield,
            max_wait_yields: 8,
            ..SerializerConfig::default()
        });
        let oracle = StaticWrites::new();
        let epochs = EpochTable::new();
        let enemy = ThreadId::from_u16(2);
        epochs.ensure(enemy);
        let me = ctx(1, &oracle, &epochs);
        s.before_start(&me);
        s.on_abort(&me, &live_conflict(&epochs, enemy), &[], &[]);
        // Idle enemy: the baseline burns its yield budget, visibly.
        s.before_start(&me);
        let stats = s.wait_stats();
        assert_eq!(stats.timed_out, 1);
        assert_eq!(stats.yield_polls, 8, "baseline yields are accounted");
        assert_eq!(stats.parked_waits, 0);

        // And an absent enemy is skipped on the baseline path too.
        let ghost = ThreadId::from_u16(9);
        let abort = Abort::on_conflict(AbortReason::WriteConflict, VarId::from_u64(1), ghost)
            .with_enemy_epoch(0);
        s.on_abort(&me, &abort, &[], &[]);
        s.before_start(&me);
        assert_eq!(s.wait_stats().absent_skips, 1);
    }
}
