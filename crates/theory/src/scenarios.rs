//! Instance families from the paper, with their closed-form optima.

use crate::job::{ConflictGraph, Instance, Job};

/// Figure 2(a): the Serializer lower-bound family.
///
/// * `T₁`, `T₂` released at time 0, `T₃ … Tₙ` at time 1, all unit length;
/// * `T₂` conflicts with every other transaction; no other pair conflicts.
///
/// The offline optimum runs `T₂` first and everything else in parallel
/// afterwards: OPT = 2. Serializer piles every transaction behind `T₂`:
/// makespan `n`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn serializer_star(n: usize) -> Instance {
    assert!(n >= 3, "the star family needs at least 3 transactions");
    let mut jobs = vec![Job::new(0, 1), Job::new(0, 1)];
    jobs.extend((2..n).map(|_| Job::new(1, 1)));
    let mut g = ConflictGraph::new(n);
    for other in (0..n).filter(|&o| o != 1) {
        g.add_conflict(1, other);
    }
    Instance::new(jobs, g).with_known_opt(2)
}

/// Figure 2(b): the ATS lower-bound family.
///
/// * all transactions released at 0;
/// * `T₁` has execution time `k`, the rest are unit;
/// * every transaction conflicts with `T₁` only.
///
/// The offline optimum runs the `n − 1` unit transactions in one parallel
/// wave and then `T₁`: OPT = k + 1. ATS (with threshold `k`) pushes all of
/// them into the serial queue: makespan `k + n − 1`.
///
/// # Panics
///
/// Panics if `n < 2` or `k == 0`.
pub fn ats_hub(n: usize, k: u64) -> Instance {
    assert!(n >= 2, "the hub family needs at least 2 transactions");
    assert!(k > 0, "the hub execution time must be positive");
    let mut jobs = vec![Job::new(0, k)];
    jobs.extend((1..n).map(|_| Job::new(0, 1)));
    let mut g = ConflictGraph::new(n);
    for other in 1..n {
        g.add_conflict(0, other);
    }
    Instance::new(jobs, g).with_known_opt(k + 1)
}

/// Theorem 3's lower-bound family: `n` truly independent unit transactions.
///
/// OPT = 1. Paired with [`inaccurate_belief`], which predicts that every
/// transaction also touches resource `R₁` (a complete conflict graph),
/// Inaccurate serializes everything: makespan `n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn independent_unit(n: usize) -> Instance {
    assert!(n > 0, "need at least one transaction");
    Instance::new(vec![Job::new(0, 1); n], ConflictGraph::new(n)).with_known_opt(1)
}

/// The mistaken conflict relation of Theorem 3: every transaction is
/// believed to also access `R₁`, so all pairs are predicted to conflict.
pub fn inaccurate_belief(n: usize) -> ConflictGraph {
    let mut g = ConflictGraph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            g.add_conflict(a, b);
        }
    }
    g
}

/// A seeded random instance: `n` jobs, simultaneous release, execution
/// times in `1..=max_exec`, each pair conflicting with probability
/// `density` (in 1/256ths).
///
/// Deterministic in `seed`; used by property tests and the theorem sweeps.
pub fn random_instance(n: usize, max_exec: u64, density_256: u32, seed: u64) -> Instance {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let jobs: Vec<Job> = (0..n)
        .map(|_| Job::new(0, (next() % max_exec.max(1)) + 1))
        .collect();
    let mut g = ConflictGraph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            if (next() % 256) < density_256 as u64 {
                g.add_conflict(a, b);
            }
        }
    }
    Instance::new(jobs, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::{batch_optimal, opt_lower_bound};

    #[test]
    fn star_structure_matches_figure_2a() {
        let inst = serializer_star(6);
        assert_eq!(inst.len(), 6);
        assert_eq!(inst.job(0).release, 0);
        assert_eq!(inst.job(1).release, 0);
        assert_eq!(inst.job(2).release, 1);
        let g = inst.conflicts();
        assert!(g.conflicts(1, 0));
        assert!(g.conflicts(1, 5));
        assert!(!g.conflicts(2, 3));
        assert_eq!(inst.known_opt(), Some(2));
    }

    #[test]
    fn star_known_opt_is_achievable() {
        // Sanity: schedule T2 at [0,1], everything else at [1,2].
        let inst = serializer_star(8);
        assert!(opt_lower_bound(&inst) <= 2);
    }

    #[test]
    fn hub_structure_matches_figure_2b() {
        let inst = ats_hub(5, 3);
        assert_eq!(inst.job(0).exec, 3);
        assert!(inst.jobs()[1..].iter().all(|j| j.exec == 1));
        let g = inst.conflicts();
        assert!(g.conflicts(0, 4));
        assert!(!g.conflicts(1, 2));
        assert_eq!(inst.known_opt(), Some(4));
    }

    #[test]
    fn hub_known_opt_matches_exact_solver() {
        let inst = ats_hub(6, 4);
        let ids: Vec<usize> = inst.ids().collect();
        assert_eq!(batch_optimal(&ids, &inst).makespan, 5);
    }

    #[test]
    fn independent_family_and_belief() {
        let inst = independent_unit(7);
        assert_eq!(inst.conflicts().edge_count(), 0);
        let belief = inaccurate_belief(7);
        assert_eq!(belief.edge_count(), 21);
    }

    #[test]
    fn random_instances_are_deterministic_in_seed() {
        let a = random_instance(10, 5, 64, 42);
        let b = random_instance(10, 5, 64, 42);
        assert_eq!(a.jobs(), b.jobs());
        assert_eq!(a.conflicts().edge_count(), b.conflicts().edge_count());
        let c = random_instance(10, 5, 64, 43);
        // Overwhelmingly likely to differ.
        assert!(a.jobs() != c.jobs() || a.conflicts() != c.conflicts());
    }
}
