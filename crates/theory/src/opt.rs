//! The offline optimum and its bounds.
//!
//! The offline optimal scheduler "has complete information (conflict
//! relations, execution times, and release times) of all transactions,
//! including those which will appear in the future". Computing it exactly is
//! NP-hard in general (unit jobs reduce to graph colouring), so this module
//! provides:
//!
//! * [`batch_optimal`] — exact minimum makespan over *batch* schedules
//!   (sequences of independent sets, each running for the duration of its
//!   longest member) via subset dynamic programming. For unit execution
//!   times and simultaneous release this equals the true optimum (it is
//!   graph colouring); the paper's lower-bound families are all of this
//!   shape.
//! * [`chromatic_number`] — the unit-job special case.
//! * [`opt_lower_bound`] — the universal bounds `OPT ≥ R_max`,
//!   `OPT ≥ E_max`, and `OPT ≥` the weight of any conflict clique (pairwise
//!   conflicting jobs may never overlap).

use crate::job::{ConflictGraph, Instance, JobId};

/// Maximum number of jobs accepted by the exact subset DP.
///
/// The DP visits all 3ⁿ (subset, sub-subset) pairs; 18 jobs keep this in
/// hundreds of millions of cheap word operations.
pub const MAX_EXACT_JOBS: usize = 18;

/// An optimal batch schedule: waves of pairwise conflict-free jobs and the
/// resulting makespan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchSchedule {
    /// Waves in execution order.
    pub waves: Vec<Vec<JobId>>,
    /// Total makespan (sum over waves of the longest member).
    pub makespan: u64,
}

fn wave_cost(mask: u32, execs: &[u64]) -> u64 {
    let mut m = mask;
    let mut cost = 0;
    while m != 0 {
        let j = m.trailing_zeros() as usize;
        cost = cost.max(execs[j]);
        m &= m - 1;
    }
    cost
}

fn independent_mask(mask: u32, adj: &[u32]) -> bool {
    let mut m = mask;
    while m != 0 {
        let j = m.trailing_zeros() as usize;
        if adj[j] & mask != 0 {
            return false;
        }
        m &= m - 1;
    }
    true
}

/// Computes the exact minimum-makespan batch schedule of `ids`, ignoring
/// release times (all jobs assumed available).
///
/// # Panics
///
/// Panics if more than [`MAX_EXACT_JOBS`] jobs are given.
pub fn batch_optimal(ids: &[JobId], instance: &Instance) -> BatchSchedule {
    let n = ids.len();
    assert!(
        n <= MAX_EXACT_JOBS,
        "exact optimum limited to {MAX_EXACT_JOBS} jobs, got {n}"
    );
    if n == 0 {
        return BatchSchedule {
            waves: Vec::new(),
            makespan: 0,
        };
    }
    let execs: Vec<u64> = ids.iter().map(|&id| instance.job(id).exec).collect();
    // Local adjacency in the compressed id space.
    let graph = instance.conflicts();
    let adj: Vec<u32> = (0..n)
        .map(|i| {
            let mut bits = 0u32;
            for (j, &jid) in ids.iter().enumerate() {
                if j != i && graph.conflicts(ids[i], jid) {
                    bits |= 1 << j;
                }
            }
            bits
        })
        .collect();

    let full: u32 = if n == 32 { u32::MAX } else { (1 << n) - 1 };
    let mut best: Vec<u64> = vec![u64::MAX; (full as usize) + 1];
    let mut choice: Vec<u32> = vec![0; (full as usize) + 1];
    best[0] = 0;
    for mask in 1..=full {
        // Enumerate non-empty sub-subsets of `mask`; anchor the lowest bit
        // into every candidate wave to avoid symmetric duplicates.
        let low = mask & mask.wrapping_neg();
        let rest = mask ^ low;
        let mut sub = rest;
        loop {
            let wave = sub | low;
            if independent_mask(wave, &adj) {
                let remainder = mask ^ wave;
                if best[remainder as usize] != u64::MAX {
                    let cost = wave_cost(wave, &execs) + best[remainder as usize];
                    if cost < best[mask as usize] {
                        best[mask as usize] = cost;
                        choice[mask as usize] = wave;
                    }
                }
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & rest;
        }
    }

    let mut waves = Vec::new();
    let mut mask = full;
    while mask != 0 {
        let wave = choice[mask as usize];
        let members: Vec<JobId> = (0..n)
            .filter(|&j| wave & (1 << j) != 0)
            .map(|j| ids[j])
            .collect();
        waves.push(members);
        mask ^= wave;
    }
    BatchSchedule {
        waves,
        makespan: best[full as usize],
    }
}

/// A greedy batch schedule: jobs sorted by decreasing execution time are
/// packed first-fit into independent waves (largest-first colouring).
///
/// Not optimal in general, but optimal on the paper's star/hub families and
/// any other graph where largest-first colouring is exact; used by the
/// Restart simulator when an instance exceeds [`MAX_EXACT_JOBS`].
pub fn batch_greedy(ids: &[JobId], instance: &Instance) -> BatchSchedule {
    let graph = instance.conflicts();
    let mut order: Vec<JobId> = ids.to_vec();
    order.sort_by_key(|&id| (std::cmp::Reverse(instance.job(id).exec), id));
    let mut waves: Vec<Vec<JobId>> = Vec::new();
    for id in order {
        match waves
            .iter_mut()
            .find(|wave| !graph.conflicts_with_any(id, wave.iter()))
        {
            Some(wave) => wave.push(id),
            None => waves.push(vec![id]),
        }
    }
    let makespan = waves
        .iter()
        .map(|wave| {
            wave.iter()
                .map(|&id| instance.job(id).exec)
                .max()
                .unwrap_or(0)
        })
        .sum();
    BatchSchedule { waves, makespan }
}

/// The chromatic number of the conflict graph — the optimal makespan for
/// unit jobs released simultaneously.
///
/// # Panics
///
/// Panics if the instance exceeds [`MAX_EXACT_JOBS`].
pub fn chromatic_number(graph: &ConflictGraph) -> u64 {
    let jobs: Vec<crate::job::Job> = (0..graph.len())
        .map(|_| crate::job::Job::new(0, 1))
        .collect();
    let ids: Vec<JobId> = (0..graph.len()).collect();
    let instance = Instance::new(jobs, graph.clone());
    batch_optimal(&ids, &instance).makespan
}

/// A certified lower bound on the offline optimal makespan:
/// `max(R_max, E_max, heaviest greedy conflict clique)`.
///
/// Always sound; not necessarily tight.
pub fn opt_lower_bound(instance: &Instance) -> u64 {
    let mut bound = instance.max_release().max(instance.max_exec());
    // Greedy weighted clique: seed with each job, grow by heaviest
    // compatible neighbour. Sound because members are pairwise conflicting,
    // hence may never overlap in any legal schedule.
    let graph = instance.conflicts();
    for seed in instance.ids() {
        let mut clique = vec![seed];
        let mut weight = instance.job(seed).exec;
        let mut candidates: Vec<JobId> = graph.neighbours(seed);
        candidates.sort_by_key(|&c| std::cmp::Reverse(instance.job(c).exec));
        for c in candidates {
            if clique.iter().all(|&m| graph.conflicts(c, m)) {
                clique.push(c);
                weight += instance.job(c).exec;
            }
        }
        bound = bound.max(weight);
    }
    bound
}

/// The best available estimate of OPT: the generator-provided closed form if
/// present, otherwise the exact batch optimum for small simultaneous-release
/// instances, otherwise the certified lower bound.
pub fn opt_estimate(instance: &Instance) -> u64 {
    if let Some(known) = instance.known_opt() {
        return known;
    }
    if instance.len() <= MAX_EXACT_JOBS && instance.max_release() == 0 {
        let ids: Vec<JobId> = instance.ids().collect();
        return batch_optimal(&ids, instance).makespan;
    }
    opt_lower_bound(instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;

    fn unit_instance(n: usize, edges: &[(usize, usize)]) -> Instance {
        let mut g = ConflictGraph::new(n);
        for &(a, b) in edges {
            g.add_conflict(a, b);
        }
        Instance::new(vec![Job::new(0, 1); n], g)
    }

    #[test]
    fn independent_jobs_take_one_round() {
        let inst = unit_instance(6, &[]);
        let ids: Vec<JobId> = inst.ids().collect();
        let s = batch_optimal(&ids, &inst);
        assert_eq!(s.makespan, 1);
        assert_eq!(s.waves.len(), 1);
        assert_eq!(s.waves[0].len(), 6);
    }

    #[test]
    fn clique_serializes_fully() {
        let inst = unit_instance(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let ids: Vec<JobId> = inst.ids().collect();
        assert_eq!(batch_optimal(&ids, &inst).makespan, 4);
    }

    #[test]
    fn odd_cycle_needs_three_colours() {
        let inst = unit_instance(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(chromatic_number(inst.conflicts()), 3);
    }

    #[test]
    fn bipartite_needs_two() {
        let inst = unit_instance(6, &[(0, 3), (0, 4), (1, 3), (1, 5), (2, 4), (2, 5)]);
        assert_eq!(chromatic_number(inst.conflicts()), 2);
    }

    #[test]
    fn weighted_waves_group_by_cost() {
        // Star: hub (exec 5) conflicts with three leaves (exec 1).
        let mut g = ConflictGraph::new(4);
        for leaf in 1..4 {
            g.add_conflict(0, leaf);
        }
        let inst = Instance::new(
            vec![
                Job::new(0, 5),
                Job::new(0, 1),
                Job::new(0, 1),
                Job::new(0, 1),
            ],
            g,
        );
        let ids: Vec<JobId> = inst.ids().collect();
        let s = batch_optimal(&ids, &inst);
        assert_eq!(s.makespan, 6, "hub (5) + leaves wave (1)");
        assert_eq!(s.waves.len(), 2);
    }

    #[test]
    fn waves_partition_the_jobs() {
        let inst = unit_instance(7, &[(0, 1), (2, 3), (4, 5), (5, 6), (1, 2)]);
        let ids: Vec<JobId> = inst.ids().collect();
        let s = batch_optimal(&ids, &inst);
        let mut all: Vec<JobId> = s.waves.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, ids, "waves must partition the job set");
        for wave in &s.waves {
            assert!(inst.conflicts().is_independent(wave));
        }
    }

    #[test]
    fn lower_bound_sees_cliques_and_extrema() {
        let mut g = ConflictGraph::new(3);
        g.add_conflict(0, 1);
        g.add_conflict(1, 2);
        g.add_conflict(0, 2);
        let inst = Instance::new(vec![Job::new(0, 2), Job::new(7, 3), Job::new(0, 4)], g);
        // Clique weight 9 > R_max 7 > E_max 4.
        assert_eq!(opt_lower_bound(&inst), 9);
    }

    #[test]
    fn estimate_prefers_known_then_exact() {
        let inst = unit_instance(3, &[(0, 1)]).with_known_opt(42);
        assert_eq!(opt_estimate(&inst), 42);
        let inst = unit_instance(3, &[(0, 1)]);
        assert_eq!(opt_estimate(&inst), 2);
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn oversized_exact_rejected() {
        let inst = unit_instance(MAX_EXACT_JOBS + 1, &[]);
        let ids: Vec<JobId> = inst.ids().collect();
        let _ = batch_optimal(&ids, &inst);
    }
}
