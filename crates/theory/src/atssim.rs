//! Adaptive Transaction Scheduling as a makespan simulator (Theorem 1,
//! Figure 2(b)).
//!
//! The paper's formalization: transactions execute as soon as available;
//! a transaction that aborts `k` times is added to a sequence `Q`, whose
//! members are scheduled one after another. Conflicts are detected at
//! commit time: a transaction attempting to commit while a conflicting,
//! *earlier-started* transaction is still running (inclusive of the same
//! instant) aborts and retries.

use std::collections::VecDeque;

use crate::job::{Instance, JobId};
use crate::sim::{release_events, SimResult};

/// Simulates ATS with abort threshold `k`.
///
/// # Panics
///
/// Panics if `k` is zero (a transaction must be allowed at least one
/// attempt before being serialized).
pub fn ats_makespan(instance: &Instance, k: u32) -> SimResult {
    assert!(k > 0, "ATS threshold must be positive");
    let n = instance.len();
    if n == 0 {
        return SimResult {
            makespan: 0,
            aborts: 0,
        };
    }
    let graph = instance.conflicts();
    let mut released = vec![false; n];
    let mut finished = vec![false; n];
    let mut queued = vec![false; n];
    let mut abort_count = vec![0u32; n];
    let mut attempt_start = vec![0u64; n];
    // A conflicting transaction committed during this attempt's window, so
    // the attempt is doomed to abort at its commit point.
    let mut doomed = vec![false; n];
    let mut queue: VecDeque<JobId> = VecDeque::new();
    let mut aborts: u64 = 0;
    let mut t: u64 = 0;
    let events = release_events(instance);
    let mut next_event_idx = 0;
    let mut makespan = 0;

    // A job runs if it is released, unfinished and either unqueued or the
    // queue head.
    let is_running = |id: JobId,
                      released: &[bool],
                      finished: &[bool],
                      queued: &[bool],
                      queue: &VecDeque<JobId>| {
        released[id] && !finished[id] && (!queued[id] || queue.front() == Some(&id))
    };

    loop {
        // 1. Releases at t.
        while next_event_idx < events.len() && events[next_event_idx] <= t {
            let r = events[next_event_idx];
            for id in instance.ids() {
                if instance.job(id).release == r && !released[id] {
                    released[id] = true;
                    attempt_start[id] = t;
                }
            }
            next_event_idx += 1;
        }

        // 2. Commit attempts at t. Snapshot the running set first so that
        //    transactions finishing at the same instant still count as
        //    conflicting (the closed-window rule the paper's Figure 2(b)
        //    analysis implies).
        let snapshot: Vec<JobId> = instance
            .ids()
            .filter(|&id| is_running(id, &released, &finished, &queued, &queue))
            .collect();
        let mut completing: Vec<JobId> = snapshot
            .iter()
            .copied()
            .filter(|&id| attempt_start[id] + instance.job(id).exec == t)
            .collect();
        completing.sort_by_key(|&id| (attempt_start[id], id));
        for &id in &completing {
            // A completing transaction loses if (a) a conflicting
            // transaction committed during its window (it is doomed), or
            // (b) a conflicting transaction that started earlier (ties by
            // id — the older-wins contention manager) is still running,
            // even if that winner commits at this very instant.
            let loses = doomed[id]
                || snapshot.iter().any(|&other| {
                    other != id
                        && graph.conflicts(id, other)
                        && (attempt_start[other], other) < (attempt_start[id], id)
                });
            if loses {
                aborts += 1;
                abort_count[id] += 1;
                attempt_start[id] = t;
                doomed[id] = false;
                if abort_count[id] >= k && !queued[id] {
                    queued[id] = true;
                    queue.push_back(id);
                }
            } else {
                finished[id] = true;
                makespan = makespan.max(t);
                // The commit dooms every overlapping conflicting attempt.
                for other in instance.ids() {
                    if other != id
                        && graph.conflicts(id, other)
                        && is_running(other, &released, &finished, &queued, &queue)
                    {
                        doomed[other] = true;
                    }
                }
                if queue.front() == Some(&id) {
                    queue.pop_front();
                    if let Some(&next_head) = queue.front() {
                        attempt_start[next_head] = t;
                    }
                }
            }
        }

        if finished.iter().zip(&released).all(|(&f, &r)| f || !r) && next_event_idx >= events.len()
        {
            return SimResult { makespan, aborts };
        }

        // 3. Advance to the next event.
        let running: Vec<JobId> = instance
            .ids()
            .filter(|&id| is_running(id, &released, &finished, &queued, &queue))
            .collect();
        let next_completion = running
            .iter()
            .map(|&id| attempt_start[id] + instance.job(id).exec)
            .filter(|&c| c > t)
            .min();
        let next_release = events.get(next_event_idx).copied();
        let next_t = match (next_completion, next_release) {
            (Some(c), Some(r)) => c.min(r),
            (Some(c), None) => c,
            (None, Some(r)) => r,
            (None, None) => {
                debug_assert!(
                    running.is_empty(),
                    "running jobs must produce a completion event"
                );
                return SimResult { makespan, aborts };
            }
        };
        t = next_t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{ConflictGraph, Job};
    use crate::scenarios::ats_hub;

    #[test]
    fn independent_jobs_commit_first_try() {
        let inst = Instance::new(vec![Job::new(0, 3); 5], ConflictGraph::new(5));
        let r = ats_makespan(&inst, 2);
        assert_eq!(r.makespan, 3);
        assert_eq!(r.aborts, 0);
    }

    #[test]
    fn figure_2b_hub_gives_k_plus_n_minus_one() {
        // Paper: ATS has makespan k + n − 1 where OPT = k + 1.
        for (n, k) in [(4usize, 2u32), (8, 3), (16, 4), (24, 2)] {
            let inst = ats_hub(n, k as u64);
            let r = ats_makespan(&inst, k);
            assert_eq!(
                r.makespan,
                k as u64 + n as u64 - 1,
                "hub family n={n} k={k}"
            );
            assert_eq!(inst.known_opt(), Some(k as u64 + 1));
        }
    }

    #[test]
    fn earlier_started_transaction_wins_commit_race() {
        let mut g = ConflictGraph::new(2);
        g.add_conflict(0, 1);
        // Same exec, same release: job 0 (lower id breaks the tie) commits,
        // job 1 aborts once and reruns.
        let inst = Instance::new(vec![Job::new(0, 2); 2], g);
        let r = ats_makespan(&inst, 10);
        assert_eq!(r.makespan, 4);
        assert_eq!(r.aborts, 1);
    }

    #[test]
    fn queue_drains_serially() {
        // Three mutually conflicting unit jobs, k = 1: first round commits
        // job 0 and queues jobs 1 and 2, which then drain one at a time.
        let mut g = ConflictGraph::new(3);
        g.add_conflict(0, 1);
        g.add_conflict(0, 2);
        g.add_conflict(1, 2);
        let inst = Instance::new(vec![Job::new(0, 1); 3], g);
        let r = ats_makespan(&inst, 1);
        assert_eq!(r.makespan, 3);
        assert_eq!(r.aborts, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let inst = Instance::new(vec![Job::new(0, 1)], ConflictGraph::new(1));
        let _ = ats_makespan(&inst, 0);
    }
}
