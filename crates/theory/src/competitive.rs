//! Competitive-ratio experiments for Theorems 1–3.
//!
//! Each row pits a scheduler against the known/estimated offline optimum on
//! one instance; the sweep functions reproduce the paper's asymptotic
//! claims numerically:
//!
//! * Serializer on the star family — ratio `n / 2` (Theorem 1);
//! * ATS on the hub family — ratio `(k + n − 1) / (k + 1)` (Theorem 1);
//! * Restart on anything — ratio ≤ 2 (Theorem 2);
//! * Inaccurate on the independent family with the all-share-R₁ belief —
//!   ratio `n` (Theorem 3).

use std::fmt;

use crate::atssim::ats_makespan;
use crate::carstm::serializer_makespan;
use crate::greedy::greedy_makespan;
use crate::job::Instance;
use crate::opt::opt_estimate;
use crate::restart::{inaccurate_makespan, restart_makespan};
use crate::scenarios;
use crate::sim::SimResult;

/// One measured point of a competitive-ratio sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct RatioPoint {
    /// Instance size (number of transactions).
    pub n: usize,
    /// The scheduler's makespan.
    pub makespan: u64,
    /// Aborted executions along the way.
    pub aborts: u64,
    /// The optimum used as the denominator.
    pub opt: u64,
    /// `makespan / opt`.
    pub ratio: f64,
}

impl fmt::Display for RatioPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={:<5} makespan={:<7} opt={:<5} ratio={:.3} aborts={}",
            self.n, self.makespan, self.opt, self.ratio, self.aborts
        )
    }
}

fn point(n: usize, result: SimResult, opt: u64) -> RatioPoint {
    RatioPoint {
        n,
        makespan: result.makespan,
        aborts: result.aborts,
        opt,
        ratio: result.ratio(opt),
    }
}

/// Serializer on the Figure 2(a) star family for each `n`.
pub fn serializer_sweep(sizes: &[usize]) -> Vec<RatioPoint> {
    sizes
        .iter()
        .map(|&n| {
            let inst = scenarios::serializer_star(n);
            let opt = inst.known_opt().expect("family has closed-form OPT");
            point(n, serializer_makespan(&inst), opt)
        })
        .collect()
}

/// ATS (threshold `k`) on the Figure 2(b) hub family for each `n`.
pub fn ats_sweep(sizes: &[usize], k: u32) -> Vec<RatioPoint> {
    sizes
        .iter()
        .map(|&n| {
            let inst = scenarios::ats_hub(n, k as u64);
            let opt = inst.known_opt().expect("family has closed-form OPT");
            point(n, ats_makespan(&inst, k), opt)
        })
        .collect()
}

/// Restart on seeded random simultaneous-release instances of each size
/// (sizes must stay within the exact planner's limit).
pub fn restart_sweep(sizes: &[usize], seed: u64) -> Vec<RatioPoint> {
    sizes
        .iter()
        .map(|&n| {
            let inst = scenarios::random_instance(n, 4, 96, seed ^ n as u64);
            let opt = opt_estimate(&inst);
            point(n, restart_makespan(&inst), opt)
        })
        .collect()
}

/// Inaccurate on the Theorem 3 family for each `n`.
pub fn inaccurate_sweep(sizes: &[usize]) -> Vec<RatioPoint> {
    sizes
        .iter()
        .map(|&n| {
            let inst = scenarios::independent_unit(n);
            let belief = scenarios::inaccurate_belief(n);
            let opt = inst.known_opt().expect("family has closed-form OPT");
            point(n, inaccurate_makespan(&inst, &belief), opt)
        })
        .collect()
}

/// Greedy (Motwani's 3-competitive scheduler) on the same random instances
/// as [`restart_sweep`], for comparison.
pub fn greedy_sweep(sizes: &[usize], seed: u64) -> Vec<RatioPoint> {
    sizes
        .iter()
        .map(|&n| {
            let inst = scenarios::random_instance(n, 4, 96, seed ^ n as u64);
            let opt = opt_estimate(&inst);
            point(n, greedy_makespan(&inst), opt)
        })
        .collect()
}

/// Convenience: every scheduler on one instance.
pub fn head_to_head(instance: &Instance, ats_k: u32) -> Vec<(&'static str, RatioPoint)> {
    let opt = opt_estimate(instance);
    let n = instance.len();
    vec![
        ("restart", point(n, restart_makespan(instance), opt)),
        ("greedy", point(n, greedy_makespan(instance), opt)),
        ("serializer", point(n, serializer_makespan(instance), opt)),
        ("ats", point(n, ats_makespan(instance, ats_k), opt)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializer_ratio_grows_linearly() {
        let points = serializer_sweep(&[4, 8, 16, 32]);
        for p in &points {
            assert!((p.ratio - p.n as f64 / 2.0).abs() < 1e-9, "{p}");
        }
        assert!(points.windows(2).all(|w| w[1].ratio > w[0].ratio));
    }

    #[test]
    fn ats_ratio_grows_linearly() {
        let k = 3;
        let points = ats_sweep(&[4, 8, 16], k);
        for p in &points {
            let expected = (k as f64 + p.n as f64 - 1.0) / (k as f64 + 1.0);
            assert!((p.ratio - expected).abs() < 1e-9, "{p}");
        }
    }

    #[test]
    fn restart_stays_two_competitive_against_batch_opt() {
        // opt_estimate for simultaneous-release small instances is the
        // exact batch optimum, which Restart itself follows: ratio 1 here
        // (no mid-run releases), and never above 2 by Theorem 2.
        for p in restart_sweep(&[4, 6, 8, 10], 7) {
            assert!(p.ratio <= 2.0 + 1e-9, "{p}");
        }
    }

    #[test]
    fn inaccurate_ratio_is_n() {
        for p in inaccurate_sweep(&[2, 4, 8, 16]) {
            assert!((p.ratio - p.n as f64).abs() < 1e-9, "{p}");
        }
    }

    #[test]
    fn greedy_is_reasonable_on_random_instances() {
        for p in greedy_sweep(&[4, 6, 8], 11) {
            assert!(p.ratio <= 3.0 + 1e-9, "{p}");
        }
    }

    #[test]
    fn head_to_head_reports_all_schedulers() {
        let inst = scenarios::serializer_star(6);
        let rows = head_to_head(&inst, 2);
        assert_eq!(rows.len(), 4);
        let restart = rows.iter().find(|(name, _)| *name == "restart").unwrap();
        let serializer = rows.iter().find(|(n, _)| *n == "serializer").unwrap();
        assert!(restart.1.makespan <= serializer.1.makespan);
    }
}
