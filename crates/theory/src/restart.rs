//! The **Restart** online clairvoyant scheduler (Theorem 2) and its
//! **Inaccurate** variant (Theorem 3).
//!
//! Restart has complete information about *released* transactions. Whenever
//! a new transaction is released it aborts everything currently executing
//! and re-schedules all released unfinished transactions according to an
//! optimal schedule. Its makespan is therefore at most `R_max + OPT`, which
//! proves 2-competitiveness — the optimal competitive ratio for online
//! clairvoyant schedulers, closing the open problem of Motwani et al.
//!
//! Inaccurate runs the same algorithm against a *predicted* conflict
//! relation. Over-predicted edges serialize work needlessly; missed edges
//! surface as real conflicts at run time and are repaired by greedy
//! sub-scheduling (the "pending commit" property: of the transactions
//! running at any time, at least one commits). Either kind of error costs
//! Θ(n) in the worst case.

use crate::job::{ConflictGraph, Instance, JobId};
use crate::opt::{batch_greedy, batch_optimal, BatchSchedule, MAX_EXACT_JOBS};
use crate::sim::{release_events, SimResult};

/// Plans a batch schedule: exact for small job sets, largest-first greedy
/// beyond the exact solver's limit (optimal on the paper's families).
fn plan(ids: &[JobId], instance: &Instance) -> BatchSchedule {
    if ids.len() <= MAX_EXACT_JOBS {
        batch_optimal(ids, instance)
    } else {
        batch_greedy(ids, instance)
    }
}

/// Simulates Restart with an optimal re-plan at every release (exact for up
/// to [`MAX_EXACT_JOBS`] simultaneously unfinished jobs, largest-first
/// greedy beyond).
pub fn restart_makespan(instance: &Instance) -> SimResult {
    simulate_replanning(instance, instance.conflicts(), true)
}

/// Simulates Restart in Motwani et al.'s original model, where a new
/// release *preempts* (pauses) running jobs instead of aborting them, and
/// they later resume from the preemption point.
///
/// The paper notes after Theorem 2 that 2-competitiveness "holds even for
/// the original problem described by Motwani et al. where transactions
/// cannot abort, but are allowed to preempt and continue". Pausing can only
/// shorten the makespan relative to aborting, which the property tests
/// assert.
pub fn restart_pause_makespan(instance: &Instance) -> SimResult {
    let n = instance.len();
    if n == 0 {
        return SimResult {
            makespan: 0,
            aborts: 0,
        };
    }
    let mut remaining: Vec<u64> = instance.jobs().iter().map(|j| j.exec).collect();
    let mut finished = vec![false; n];
    let mut released = vec![false; n];
    let mut t: u64 = 0;
    let events = release_events(instance);

    // Planning instance whose execution times shrink as jobs progress:
    // rebuild per release with the *remaining* work.
    'events: for (i, &r) in events.iter().enumerate() {
        for id in instance.ids() {
            if instance.job(id).release <= r {
                released[id] = true;
            }
        }
        if t < r {
            t = r;
        }
        let next_release = events.get(i + 1).copied();
        let unfinished: Vec<JobId> = instance
            .ids()
            .filter(|&id| released[id] && !finished[id])
            .collect();
        if unfinished.is_empty() {
            continue;
        }
        let jobs: Vec<crate::job::Job> = instance
            .ids()
            .map(|id| crate::job::Job::new(0, remaining[id].max(1)))
            .collect();
        let planning = Instance::new(jobs, instance.conflicts().clone());
        let schedule = plan(&unfinished, &planning);
        for wave in &schedule.waves {
            let duration = wave
                .iter()
                .map(|&id| remaining[id])
                .max()
                .expect("waves are non-empty");
            let end = t + duration;
            if let Some(nr) = next_release {
                if end > nr {
                    // Preemption: the running wave keeps its progress.
                    let ran = nr - t;
                    for &id in wave {
                        remaining[id] = remaining[id].saturating_sub(ran);
                        if remaining[id] == 0 {
                            finished[id] = true;
                        }
                    }
                    t = nr;
                    continue 'events;
                }
            }
            for &id in wave {
                remaining[id] = 0;
                finished[id] = true;
            }
            t = end;
        }
    }
    debug_assert!(finished.iter().all(|&f| f), "all jobs must finish");
    SimResult {
        makespan: t,
        aborts: 0,
    }
}

/// Simulates Inaccurate: Restart planning against `predicted` instead of
/// the true conflict relation.
///
/// Extra predicted edges only over-serialize. Missing edges make planned
/// waves internally conflicting; those waves execute as greedy
/// true-independent sub-waves, every demotion counting as an abort.
pub fn inaccurate_makespan(instance: &Instance, predicted: &ConflictGraph) -> SimResult {
    assert_eq!(
        predicted.len(),
        instance.len(),
        "predicted graph must cover all jobs"
    );
    simulate_replanning(instance, predicted, false)
}

fn simulate_replanning(
    instance: &Instance,
    planning_graph: &ConflictGraph,
    plan_is_exact: bool,
) -> SimResult {
    let n = instance.len();
    if n == 0 {
        return SimResult {
            makespan: 0,
            aborts: 0,
        };
    }
    let mut finished = vec![false; n];
    let mut released = vec![false; n];
    let mut t: u64 = 0;
    let mut aborts: u64 = 0;
    let events = release_events(instance);

    // A planning instance whose conflicts are the *predicted* relation.
    let planning_instance = Instance::new(instance.jobs().to_vec(), planning_graph.clone());

    'events: for (i, &r) in events.iter().enumerate() {
        for id in instance.ids() {
            if instance.job(id).release <= r {
                released[id] = true;
            }
        }
        if t < r {
            t = r;
        }
        let next_release = events.get(i + 1).copied();

        let unfinished: Vec<JobId> = instance
            .ids()
            .filter(|&id| released[id] && !finished[id])
            .collect();
        if unfinished.is_empty() {
            continue;
        }
        let schedule = plan(&unfinished, &planning_instance);

        for wave in &schedule.waves {
            // Waves that are independent only in the predicted graph may
            // still conflict in reality; run them as greedy sub-waves.
            let sub_waves = if plan_is_exact {
                vec![wave.clone()]
            } else {
                split_by_true_conflicts(wave, instance, &mut aborts)
            };
            for sub in sub_waves {
                let duration = sub
                    .iter()
                    .map(|&id| instance.job(id).exec)
                    .max()
                    .expect("waves are non-empty");
                let end = t + duration;
                if let Some(nr) = next_release {
                    if end > nr {
                        // A release interrupts the wave: abort everything
                        // running and re-plan at the release.
                        aborts += sub.len() as u64;
                        t = nr;
                        continue 'events;
                    }
                }
                for &id in &sub {
                    finished[id] = true;
                }
                t = end;
            }
        }
        // Plan drained before the next release: idle until it (handled by
        // the `t < r` clamp of the next iteration).
    }

    debug_assert!(finished.iter().all(|&f| f), "all jobs must finish");
    SimResult {
        makespan: t,
        aborts,
    }
}

/// Splits a predicted-independent wave into truly independent sub-waves,
/// greedily by id; every job pushed out of the first sub-wave counts as one
/// abort (it ran speculatively and lost).
fn split_by_true_conflicts(
    wave: &[JobId],
    instance: &Instance,
    aborts: &mut u64,
) -> Vec<Vec<JobId>> {
    let graph = instance.conflicts();
    let mut remaining: Vec<JobId> = wave.to_vec();
    remaining.sort_unstable();
    let mut rounds = Vec::new();
    while !remaining.is_empty() {
        let mut round: Vec<JobId> = Vec::new();
        let mut deferred: Vec<JobId> = Vec::new();
        for &id in &remaining {
            if graph.conflicts_with_any(id, round.iter()) {
                deferred.push(id);
            } else {
                round.push(id);
            }
        }
        *aborts += deferred.len() as u64;
        rounds.push(round);
        remaining = deferred;
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::opt::opt_estimate;

    #[test]
    fn independent_jobs_run_in_one_wave() {
        let inst = Instance::new(vec![Job::new(0, 1); 8], ConflictGraph::new(8));
        let r = restart_makespan(&inst);
        assert_eq!(r.makespan, 1);
        assert_eq!(r.aborts, 0);
    }

    #[test]
    fn staggered_releases_cost_at_most_rmax_plus_opt() {
        // Three batches of pairwise-conflicting pairs released over time.
        let mut g = ConflictGraph::new(6);
        g.add_conflict(0, 1);
        g.add_conflict(2, 3);
        g.add_conflict(4, 5);
        let jobs = vec![
            Job::new(0, 2),
            Job::new(0, 2),
            Job::new(3, 2),
            Job::new(3, 2),
            Job::new(5, 2),
            Job::new(5, 2),
        ];
        let inst = Instance::new(jobs, g);
        let r = restart_makespan(&inst);
        let all: Vec<JobId> = inst.ids().collect();
        let opt_ignoring_releases = batch_optimal(&all, &inst).makespan;
        assert!(
            r.makespan <= inst.max_release() + opt_ignoring_releases,
            "Theorem 2 envelope violated: {} > {} + {}",
            r.makespan,
            inst.max_release(),
            opt_ignoring_releases
        );
    }

    #[test]
    fn release_interrupts_and_aborts_running_wave() {
        // One long job; a second conflicting job lands mid-flight.
        let mut g = ConflictGraph::new(2);
        g.add_conflict(0, 1);
        let inst = Instance::new(vec![Job::new(0, 10), Job::new(5, 1)], g);
        let r = restart_makespan(&inst);
        // Restart aborts job 0 at t=5 and re-plans: optimal order of
        // {0 (10), 1 (1)} serializes them: 5 + 11 = 16.
        assert_eq!(r.makespan, 16);
        assert!(r.aborts >= 1, "the running wave must have been aborted");
    }

    #[test]
    fn inaccurate_with_exact_prediction_matches_restart() {
        let mut g = ConflictGraph::new(4);
        g.add_conflict(0, 1);
        g.add_conflict(2, 3);
        let inst = Instance::new(vec![Job::new(0, 3); 4], g.clone());
        let exact = restart_makespan(&inst);
        let inacc = inaccurate_makespan(&inst, &g);
        assert_eq!(exact.makespan, inacc.makespan);
    }

    #[test]
    fn over_prediction_serializes_independent_jobs() {
        // Theorem 3 lower bound: truly independent unit jobs, predicted to
        // all share resource R1 (complete predicted graph).
        let n = 8;
        let inst = Instance::new(vec![Job::new(0, 1); n], ConflictGraph::new(n));
        let mut predicted = ConflictGraph::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                predicted.add_conflict(a, b);
            }
        }
        let r = inaccurate_makespan(&inst, &predicted);
        assert_eq!(r.makespan, n as u64, "full serialization");
        assert_eq!(opt_estimate(&inst), 1);
    }

    #[test]
    fn under_prediction_repairs_via_true_conflict_subwaves() {
        // Predicted edgeless, truly a triangle: one planned wave of 3 must
        // split into 3 sub-waves, with 2 + 1 demotions counted as aborts.
        let mut g = ConflictGraph::new(3);
        g.add_conflict(0, 1);
        g.add_conflict(1, 2);
        g.add_conflict(0, 2);
        let inst = Instance::new(vec![Job::new(0, 1); 3], g);
        let predicted = ConflictGraph::new(3);
        let r = inaccurate_makespan(&inst, &predicted);
        assert_eq!(r.makespan, 3);
        assert_eq!(r.aborts, 3, "2 demoted in round 1, 1 in round 2");
    }

    #[test]
    fn empty_instance_is_trivial() {
        let inst = Instance::new(Vec::new(), ConflictGraph::new(0));
        assert_eq!(restart_makespan(&inst).makespan, 0);
        assert_eq!(restart_pause_makespan(&inst).makespan, 0);
    }

    #[test]
    fn pause_variant_never_loses_to_the_abort_variant() {
        // Pausing preserves progress, so it can only help.
        for seed in 0..20u64 {
            let inst = crate::scenarios::random_instance(8, 5, 96, seed);
            let abort = restart_makespan(&inst).makespan;
            let pause = restart_pause_makespan(&inst).makespan;
            assert!(pause <= abort, "seed {seed}: pause {pause} > abort {abort}");
        }
    }

    #[test]
    fn pause_variant_resumes_interrupted_work() {
        // One long job interrupted by a conflicting release: with aborts the
        // long job restarts from scratch (makespan 16, see
        // release_interrupts_and_aborts_running_wave); with pauses it only
        // finishes its remaining 5 units after the newcomer is sequenced.
        let mut g = ConflictGraph::new(2);
        g.add_conflict(0, 1);
        let inst = Instance::new(vec![Job::new(0, 10), Job::new(5, 1)], g);
        let r = restart_pause_makespan(&inst);
        assert!(
            r.makespan < 16,
            "pausing must beat the aborting makespan, got {}",
            r.makespan
        );
        assert_eq!(r.aborts, 0);
    }
}
