//! Transactions-as-jobs: the input language of the scheduling model.
//!
//! Section 2 of the paper adopts the non-clairvoyant scheduling framework of
//! Motwani, Phillips & Torng: a set of jobs (transactions) with release
//! times and execution times, plus a *conflict graph* whose edges mark pairs
//! that may not execute simultaneously. The processing environment has
//! unboundedly many processors; a scheduler's quality is its makespan.

use std::fmt;

/// Index of a job within an [`Instance`].
pub type JobId = usize;

/// One transaction in the scheduling model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Job {
    /// Time at which the job becomes available (`Rᵢ`).
    pub release: u64,
    /// Processing time required to complete (`Eᵢ`).
    pub exec: u64,
}

impl Job {
    /// Creates a job.
    ///
    /// # Panics
    ///
    /// Panics if `exec` is zero: the model's transactions take time.
    pub fn new(release: u64, exec: u64) -> Self {
        assert!(exec > 0, "execution time must be positive");
        Job { release, exec }
    }
}

/// An undirected conflict graph over `n` jobs, stored as bit rows.
#[derive(Clone, PartialEq, Eq)]
pub struct ConflictGraph {
    n: usize,
    rows: Vec<Vec<u64>>,
}

impl ConflictGraph {
    /// Creates an edgeless graph over `n` jobs.
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        ConflictGraph {
            n,
            rows: vec![vec![0; words]; n],
        }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the graph covers no jobs.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Declares that jobs `a` and `b` conflict.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids or a self-loop.
    pub fn add_conflict(&mut self, a: JobId, b: JobId) {
        assert!(a < self.n && b < self.n, "job id out of range");
        assert_ne!(a, b, "a job does not conflict with itself");
        self.rows[a][b / 64] |= 1 << (b % 64);
        self.rows[b][a / 64] |= 1 << (a % 64);
    }

    /// True if `a` and `b` conflict.
    pub fn conflicts(&self, a: JobId, b: JobId) -> bool {
        self.rows[a][b / 64] & (1 << (b % 64)) != 0
    }

    /// True if `job` conflicts with any member of `set`.
    pub fn conflicts_with_any<'a>(
        &self,
        job: JobId,
        set: impl IntoIterator<Item = &'a JobId>,
    ) -> bool {
        set.into_iter().any(|&other| self.conflicts(job, other))
    }

    /// True if `set` is pairwise conflict-free.
    pub fn is_independent(&self, set: &[JobId]) -> bool {
        for (i, &a) in set.iter().enumerate() {
            for &b in &set[i + 1..] {
                if self.conflicts(a, b) {
                    return false;
                }
            }
        }
        true
    }

    /// Degree of `job` in the conflict graph.
    pub fn degree(&self, job: JobId) -> usize {
        self.rows[job].iter().map(|w| w.count_ones() as usize).sum()
    }

    /// All neighbours of `job`.
    pub fn neighbours(&self, job: JobId) -> Vec<JobId> {
        (0..self.n).filter(|&o| self.conflicts(job, o)).collect()
    }

    /// Adds every edge of `other` into `self` (graphs must be same size).
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    pub fn union_with(&mut self, other: &ConflictGraph) {
        assert_eq!(self.n, other.n, "graph size mismatch");
        for (row, other_row) in self.rows.iter_mut().zip(&other.rows) {
            for (w, ow) in row.iter_mut().zip(other_row) {
                *w |= *ow;
            }
        }
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        (0..self.n).map(|j| self.degree(j)).sum::<usize>() / 2
    }
}

impl fmt::Debug for ConflictGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConflictGraph")
            .field("jobs", &self.n)
            .field("edges", &self.edge_count())
            .finish()
    }
}

/// A scheduling problem: jobs plus their conflict graph.
#[derive(Clone, Debug)]
pub struct Instance {
    jobs: Vec<Job>,
    conflicts: ConflictGraph,
    /// Closed-form optimal makespan if the instance was built by a scenario
    /// generator that knows it.
    known_opt: Option<u64>,
}

impl Instance {
    /// Creates an instance.
    ///
    /// # Panics
    ///
    /// Panics if the conflict graph size differs from the job count.
    pub fn new(jobs: Vec<Job>, conflicts: ConflictGraph) -> Self {
        assert_eq!(jobs.len(), conflicts.len(), "graph must cover all jobs");
        Instance {
            jobs,
            conflicts,
            known_opt: None,
        }
    }

    /// Attaches the analytically known optimal makespan.
    pub fn with_known_opt(mut self, opt: u64) -> Self {
        self.known_opt = Some(opt);
        self
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if there are no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The jobs.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// One job.
    pub fn job(&self, id: JobId) -> Job {
        self.jobs[id]
    }

    /// The conflict graph.
    pub fn conflicts(&self) -> &ConflictGraph {
        &self.conflicts
    }

    /// Analytically known OPT, if any.
    pub fn known_opt(&self) -> Option<u64> {
        self.known_opt
    }

    /// Latest release time (`R_max`); 0 for empty instances.
    pub fn max_release(&self) -> u64 {
        self.jobs.iter().map(|j| j.release).max().unwrap_or(0)
    }

    /// Longest execution time (`E_max`); 0 for empty instances.
    pub fn max_exec(&self) -> u64 {
        self.jobs.iter().map(|j| j.exec).max().unwrap_or(0)
    }

    /// All job ids.
    pub fn ids(&self) -> impl Iterator<Item = JobId> {
        0..self.jobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_graph_is_symmetric() {
        let mut g = ConflictGraph::new(70);
        g.add_conflict(0, 69);
        assert!(g.conflicts(0, 69));
        assert!(g.conflicts(69, 0));
        assert!(!g.conflicts(0, 1));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.neighbours(69), vec![0]);
    }

    #[test]
    fn independence_check() {
        let mut g = ConflictGraph::new(4);
        g.add_conflict(0, 1);
        assert!(g.is_independent(&[0, 2, 3]));
        assert!(!g.is_independent(&[0, 1]));
        assert!(g.is_independent(&[]));
        assert!(g.conflicts_with_any(1, &[0, 2]));
        assert!(!g.conflicts_with_any(3, &[0, 1, 2]));
    }

    #[test]
    fn union_accumulates_edges() {
        let mut a = ConflictGraph::new(3);
        a.add_conflict(0, 1);
        let mut b = ConflictGraph::new(3);
        b.add_conflict(1, 2);
        a.union_with(&b);
        assert!(a.conflicts(0, 1));
        assert!(a.conflicts(1, 2));
        assert_eq!(a.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "self")]
    fn self_loops_are_rejected() {
        let mut g = ConflictGraph::new(2);
        g.add_conflict(1, 1);
    }

    #[test]
    fn instance_extrema() {
        let jobs = vec![Job::new(0, 3), Job::new(5, 1), Job::new(2, 7)];
        let inst = Instance::new(jobs, ConflictGraph::new(3));
        assert_eq!(inst.max_release(), 5);
        assert_eq!(inst.max_exec(), 7);
        assert_eq!(inst.len(), 3);
        assert_eq!(inst.known_opt(), None);
        let inst = inst.with_known_opt(9);
        assert_eq!(inst.known_opt(), Some(9));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_exec_rejected() {
        let _ = Job::new(0, 0);
    }
}
