//! Common result type and helpers shared by the scheduler simulators.

use crate::job::Instance;

/// Outcome of simulating a scheduler on an instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimResult {
    /// Completion time of the last transaction.
    pub makespan: u64,
    /// Number of aborted (wasted) executions the scheduler incurred.
    pub aborts: u64,
}

impl SimResult {
    /// The competitive ratio against a reference optimum.
    ///
    /// # Panics
    ///
    /// Panics if `opt` is zero.
    pub fn ratio(&self, opt: u64) -> f64 {
        assert!(opt > 0, "OPT must be positive");
        self.makespan as f64 / opt as f64
    }
}

/// Sorted deduplicated release times of an instance.
pub(crate) fn release_events(instance: &Instance) -> Vec<u64> {
    let mut events: Vec<u64> = instance.jobs().iter().map(|j| j.release).collect();
    events.sort_unstable();
    events.dedup();
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{ConflictGraph, Job};

    #[test]
    fn ratio_divides() {
        let r = SimResult {
            makespan: 10,
            aborts: 0,
        };
        assert!((r.ratio(4) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn release_events_are_sorted_unique() {
        let inst = Instance::new(
            vec![Job::new(5, 1), Job::new(0, 1), Job::new(5, 1)],
            ConflictGraph::new(3),
        );
        assert_eq!(release_events(&inst), vec![0, 5]);
    }
}
