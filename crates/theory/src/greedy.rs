//! Motwani, Phillips & Torng's **Greedy** scheduler (3-competitive).
//!
//! Greedy is a list scheduler: whenever the system state changes (a release
//! or a completion) it re-selects, in fixed priority order (release time,
//! then id), a maximal set of pairwise non-conflicting released unfinished
//! jobs, and runs them. Preempted jobs pause and later resume (the original
//! Motwani model permits resumption from the preemption point).

use crate::job::{Instance, JobId};
use crate::sim::SimResult;

/// Simulates Greedy list scheduling; never aborts (pause semantics).
pub fn greedy_makespan(instance: &Instance) -> SimResult {
    let n = instance.len();
    if n == 0 {
        return SimResult {
            makespan: 0,
            aborts: 0,
        };
    }
    let mut remaining: Vec<u64> = instance.jobs().iter().map(|j| j.exec).collect();
    let mut finished = vec![false; n];
    let mut t: u64 = 0;

    // Priority order: release, then id — fixed for the whole run.
    let mut order: Vec<JobId> = instance.ids().collect();
    order.sort_by_key(|&id| (instance.job(id).release, id));

    loop {
        if finished.iter().all(|&f| f) {
            return SimResult {
                makespan: t,
                aborts: 0,
            };
        }
        // Greedy maximal independent selection among released unfinished.
        let graph = instance.conflicts();
        let mut running: Vec<JobId> = Vec::new();
        for &id in &order {
            if !finished[id]
                && instance.job(id).release <= t
                && !graph.conflicts_with_any(id, running.iter())
            {
                running.push(id);
            }
        }
        if running.is_empty() {
            // Idle until the next release.
            let next = instance
                .jobs()
                .iter()
                .map(|j| j.release)
                .filter(|&r| r > t)
                .min()
                .expect("no runnable jobs and no future releases");
            t = next;
            continue;
        }
        // Advance to the next event: earliest completion or next release.
        let completion = running
            .iter()
            .map(|&id| t + remaining[id])
            .min()
            .expect("running set is non-empty");
        let next_release = instance
            .jobs()
            .iter()
            .map(|j| j.release)
            .filter(|&r| r > t)
            .min();
        let next_t = match next_release {
            Some(r) => completion.min(r),
            None => completion,
        };
        let dt = next_t - t;
        for &id in &running {
            remaining[id] -= dt;
            if remaining[id] == 0 {
                finished[id] = true;
            }
        }
        t = next_t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{ConflictGraph, Job};
    use crate::opt::opt_estimate;

    #[test]
    fn independent_jobs_finish_together() {
        let inst = Instance::new(vec![Job::new(0, 5); 10], ConflictGraph::new(10));
        assert_eq!(greedy_makespan(&inst).makespan, 5);
    }

    #[test]
    fn conflicting_pair_serializes() {
        let mut g = ConflictGraph::new(2);
        g.add_conflict(0, 1);
        let inst = Instance::new(vec![Job::new(0, 3), Job::new(0, 4)], g);
        assert_eq!(greedy_makespan(&inst).makespan, 7);
    }

    #[test]
    fn respects_release_times() {
        let inst = Instance::new(vec![Job::new(10, 2), Job::new(0, 1)], ConflictGraph::new(2));
        assert_eq!(greedy_makespan(&inst).makespan, 12);
    }

    #[test]
    fn paused_jobs_resume_without_losing_progress() {
        // Low-priority long job is preempted by a later high-priority...
        // priorities are (release, id), so job 0 (release 0) outranks job 1.
        // Build the opposite: job 1 runs first (job 0 released later),
        // then job 0 arrives and preempts via priority order.
        let mut g = ConflictGraph::new(2);
        g.add_conflict(0, 1);
        let inst = Instance::new(vec![Job::new(2, 2), Job::new(0, 10)], g);
        // t=0..2: job 1 runs (progress 2/10). t=2: job 0 released; priority
        // (release 0? no — release 2 vs 0) => job 1 still outranks. Job 1
        // finishes at 10, job 0 runs 10..12.
        assert_eq!(greedy_makespan(&inst).makespan, 12);
    }

    #[test]
    fn greedy_is_within_three_of_opt_on_small_instances() {
        // Exhaustive-ish check over a family of small graphs.
        let edge_sets: &[&[(usize, usize)]] = &[
            &[],
            &[(0, 1)],
            &[(0, 1), (1, 2)],
            &[(0, 1), (1, 2), (2, 3), (3, 0)],
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
        ];
        for edges in edge_sets {
            let n = 4;
            let mut g = ConflictGraph::new(n);
            for &(a, b) in *edges {
                g.add_conflict(a, b);
            }
            let inst = Instance::new(vec![Job::new(0, 2); n], g);
            let greedy = greedy_makespan(&inst).makespan;
            let opt = opt_estimate(&inst);
            assert!(
                greedy as f64 <= 3.0 * opt as f64,
                "greedy {greedy} vs opt {opt} on {edges:?}"
            );
        }
    }
}
