//! # shrink-theory — the scheduling theory of Section 2
//!
//! A self-contained implementation of the paper's theoretical framework:
//! transactions as jobs with release times, execution times and a conflict
//! graph, scheduled on unboundedly many processors, judged by makespan.
//!
//! * [`job`] — instances and conflict graphs;
//! * [`opt`] — the offline optimum: exact batch/colouring solver and sound
//!   lower bounds;
//! * [`restart`] — the 2-competitive online clairvoyant **Restart**
//!   scheduler (Theorem 2) and its **Inaccurate** variant (Theorem 3);
//! * [`greedy`] — Motwani et al.'s 3-competitive Greedy;
//! * [`carstm`] — the CAR-STM **Serializer** simulator (Theorem 1);
//! * [`atssim`] — the **ATS** simulator (Theorem 1);
//! * [`scenarios`] — the lower-bound families of Figure 2 and Theorem 3;
//! * [`competitive`] — ratio sweeps that regenerate the theorems' numbers.
//!
//! ```
//! use shrink_theory::{scenarios, carstm, restart};
//!
//! // Figure 2(a): Serializer needs makespan n where the optimum is 2 ...
//! let star = scenarios::serializer_star(16);
//! assert_eq!(carstm::serializer_makespan(&star).makespan, 16);
//! // ... while the clairvoyant Restart scheduler stays within 2 * OPT.
//! assert!(restart::restart_makespan(&star).makespan <= 2 * 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atssim;
pub mod carstm;
pub mod competitive;
pub mod greedy;
pub mod job;
pub mod opt;
pub mod restart;
pub mod scenarios;
pub mod sim;

pub use atssim::ats_makespan;
pub use carstm::serializer_makespan;
pub use competitive::{head_to_head, RatioPoint};
pub use greedy::greedy_makespan;
pub use job::{ConflictGraph, Instance, Job, JobId};
pub use opt::{batch_optimal, chromatic_number, opt_estimate, opt_lower_bound, BatchSchedule};
pub use restart::{inaccurate_makespan, restart_makespan, restart_pause_makespan};
pub use sim::SimResult;
