//! The **Serializer** contention manager of CAR-STM, as a makespan
//! simulator (Theorem 1, Figure 2(a)).
//!
//! Every transaction starts on its own core. Transactions run speculatively
//! in parallel; when two running transactions conflict, the one with less
//! progress (ties: the higher id) aborts and is appended to the *winner's*
//! core queue, so the pair can never conflict again. Cores drain their
//! queues serially — which is exactly what makes Serializer Ω(n) on the
//! star family: every transaction that conflicts with the hub piles onto
//! one core.

use std::collections::VecDeque;

use crate::job::{Instance, JobId};
use crate::sim::{release_events, SimResult};

/// Simulates the CAR-STM Serializer.
pub fn serializer_makespan(instance: &Instance) -> SimResult {
    let n = instance.len();
    if n == 0 {
        return SimResult {
            makespan: 0,
            aborts: 0,
        };
    }
    let graph = instance.conflicts();
    let mut queues: Vec<VecDeque<JobId>> = vec![VecDeque::new(); n];
    let mut core_of: Vec<usize> = (0..n).collect();
    let mut progress: Vec<u64> = vec![0; n];
    let mut finished = vec![false; n];
    let mut released = vec![false; n];
    let mut aborts: u64 = 0;
    let mut t: u64 = 0;
    let events = release_events(instance);
    let mut next_event_idx = 0;

    let mut makespan = 0;
    loop {
        // 1. Releases at time t: each job joins its own core's queue.
        while next_event_idx < events.len() && events[next_event_idx] <= t {
            let r = events[next_event_idx];
            for id in instance.ids() {
                if instance.job(id).release == r && !released[id] {
                    released[id] = true;
                    queues[core_of[id]].push_back(id);
                }
            }
            next_event_idx += 1;
        }

        // 2. Completions at time t.
        for queue in queues.iter_mut() {
            if let Some(&head) = queue.front() {
                if progress[head] >= instance.job(head).exec {
                    finished[head] = true;
                    makespan = makespan.max(t);
                    queue.pop_front();
                }
            }
        }

        if finished.iter().zip(&released).all(|(&f, &r)| f || !r) && next_event_idx >= events.len()
        {
            return SimResult { makespan, aborts };
        }

        // 3. Conflict resolution among running heads, to fixpoint.
        loop {
            let running: Vec<JobId> = (0..n)
                .filter_map(|core| queues[core].front().copied())
                .collect();
            let mut resolved = None;
            'search: for (i, &a) in running.iter().enumerate() {
                for &b in &running[i + 1..] {
                    if graph.conflicts(a, b) {
                        // Less progress loses; ties go against the higher id.
                        let loser =
                            if progress[a] < progress[b] || (progress[a] == progress[b] && a > b) {
                                a
                            } else {
                                b
                            };
                        let winner = if loser == a { b } else { a };
                        resolved = Some((winner, loser));
                        break 'search;
                    }
                }
            }
            match resolved {
                Some((winner, loser)) => {
                    aborts += 1;
                    progress[loser] = 0;
                    let old_core = core_of[loser];
                    let popped = queues[old_core].pop_front();
                    debug_assert_eq!(popped, Some(loser));
                    let new_core = core_of[winner];
                    core_of[loser] = new_core;
                    queues[new_core].push_back(loser);
                }
                None => break,
            }
        }

        // 4. Advance to the next event.
        let running: Vec<JobId> = (0..n)
            .filter_map(|core| queues[core].front().copied())
            .collect();
        let next_completion = running
            .iter()
            .map(|&id| t + (instance.job(id).exec - progress[id]))
            .min();
        let next_release = events.get(next_event_idx).copied();
        let next_t = match (next_completion, next_release) {
            (Some(c), Some(r)) => c.min(r),
            (Some(c), None) => c,
            (None, Some(r)) => r,
            (None, None) => {
                return SimResult { makespan, aborts };
            }
        };
        let dt = next_t - t;
        for &id in &running {
            progress[id] += dt;
        }
        t = next_t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{ConflictGraph, Job};
    use crate::scenarios::serializer_star;

    #[test]
    fn independent_jobs_run_fully_parallel() {
        let inst = Instance::new(vec![Job::new(0, 4); 6], ConflictGraph::new(6));
        let r = serializer_makespan(&inst);
        assert_eq!(r.makespan, 4);
        assert_eq!(r.aborts, 0);
    }

    #[test]
    fn conflicting_pair_costs_one_abort() {
        let mut g = ConflictGraph::new(2);
        g.add_conflict(0, 1);
        let inst = Instance::new(vec![Job::new(0, 1); 2], g);
        let r = serializer_makespan(&inst);
        assert_eq!(r.makespan, 2, "loser reruns after winner");
        assert_eq!(r.aborts, 1);
    }

    #[test]
    fn figure_2a_star_gives_linear_makespan() {
        // Paper: Serializer needs makespan n where OPT = 2.
        for n in [4usize, 8, 16, 32] {
            let inst = serializer_star(n);
            let r = serializer_makespan(&inst);
            assert_eq!(
                r.makespan, n as u64,
                "star of {n} transactions must serialize fully"
            );
            assert_eq!(inst.known_opt(), Some(2));
        }
    }

    #[test]
    fn respects_release_times() {
        let inst = Instance::new(vec![Job::new(3, 2), Job::new(0, 1)], ConflictGraph::new(2));
        assert_eq!(serializer_makespan(&inst).makespan, 5);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(Vec::new(), ConflictGraph::new(0));
        assert_eq!(serializer_makespan(&inst).makespan, 0);
    }
}
