//! Criterion micro-benchmarks: STM primitives, scheduler hook overhead,
//! Bloom-filter prediction machinery and the theory simulators.
//!
//! These quantify the constant factors behind the figures (e.g. the
//! paper's ~13 % single-thread Shrink overhead on the red-black tree);
//! the full figure sweeps live in the `fig*` binaries.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use shrink_core::{BloomFilter, SchedulerKind, Shrink, ShrinkConfig};
use shrink_stm::{BackendKind, TVar, TmRuntime};
use shrink_theory::{ats_makespan, restart_makespan, scenarios, serializer_makespan};
use shrink_workloads::rbtree::TxRbTree;
use shrink_workloads::stmbench7::{Sb7Config, Sb7Mix, Sb7Workload};
use shrink_workloads::TxWorkload;

/// The raw `TVar` snapshot read path, isolated from transaction machinery:
/// inline seqlock (small dropless payloads) vs. epoch-pinned boxed path,
/// plus contended variants with a writer churning in the background. This
/// is the surface the `vendor/crossbeam` epoch rewrite optimizes — compare
/// against the orec-protocol costs in `stm/read_tx` to see how much of a
/// transactional read is value access vs. validation.
fn read_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_path");
    group.sample_size(50);

    // Inline seqlock path: no heap, no pin.
    let inline_var = TVar::new(0u64);
    assert!(inline_var.uses_inline_storage());
    group.bench_function("snapshot/inline_u64", |b| {
        b.iter(|| black_box(&inline_var).snapshot())
    });
    let wide_var = TVar::new([0u64; 4]);
    assert!(wide_var.uses_inline_storage());
    group.bench_function("snapshot/inline_4xu64", |b| {
        b.iter(|| black_box(&wide_var).snapshot())
    });

    // Boxed path: epoch pin + atomic pointer load + clone.
    let boxed_var = TVar::new(Arc::new(0u64));
    assert!(!boxed_var.uses_inline_storage());
    group.bench_function("snapshot/boxed_arc", |b| {
        b.iter(|| black_box(&boxed_var).snapshot())
    });

    // Store side: seqlock publish vs. box + swap + retire.
    group.bench_function("rt_write/inline_u64", |b| {
        let rt = TmRuntime::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            rt.run(|tx| tx.write(black_box(&inline_var), i))
        })
    });
    group.bench_function("rt_write/boxed_arc", |b| {
        let rt = TmRuntime::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            rt.run(|tx| tx.write(black_box(&boxed_var), Arc::new(i)))
        })
    });

    // Contended snapshot reads: a background writer churns the variable so
    // readers cross live seqlock publishes / epoch retirements.
    for label in ["inline", "boxed"] {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let inline_var = TVar::new(0u64);
        let boxed_var = TVar::new(Arc::new(0u64));
        let writer = {
            let stop = Arc::clone(&stop);
            let inline_var = inline_var.clone();
            let boxed_var = boxed_var.clone();
            let boxed = label == "boxed";
            std::thread::spawn(move || {
                let rt = TmRuntime::new();
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    i += 1;
                    if boxed {
                        rt.run(|tx| tx.write(&boxed_var, Arc::new(i)));
                    } else {
                        rt.run(|tx| tx.write(&inline_var, i));
                    }
                }
            })
        };
        group.bench_function(format!("snapshot_contended/{label}"), |b| {
            b.iter(|| {
                if label == "boxed" {
                    black_box(*boxed_var.snapshot());
                } else {
                    black_box(inline_var.snapshot());
                }
            })
        });
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        writer.join().unwrap();
    }
    group.finish();
}

fn stm_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("stm");
    group.sample_size(30);
    for backend in [BackendKind::Swiss, BackendKind::Tiny] {
        let rt = TmRuntime::builder().backend(backend).build();
        let v = TVar::new(0u64);
        group.bench_function(format!("read_tx/{backend}"), |b| {
            b.iter(|| rt.run(|tx| tx.read(black_box(&v))))
        });
        group.bench_function(format!("rmw_tx/{backend}"), |b| {
            b.iter(|| rt.run(|tx| tx.modify(black_box(&v), |x| x + 1)))
        });
        let vars: Vec<TVar<u64>> = (0..32).map(TVar::new).collect();
        group.bench_function(format!("scan32_tx/{backend}"), |b| {
            b.iter(|| {
                rt.run(|tx| {
                    let mut sum = 0;
                    for var in &vars {
                        sum += tx.read(var)?;
                    }
                    Ok(sum)
                })
            })
        });
    }
    group.finish();
}

fn scheduler_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_overhead");
    group.sample_size(30);
    let kinds = [
        SchedulerKind::Noop,
        SchedulerKind::shrink_default(),
        SchedulerKind::ats_default(),
        SchedulerKind::Pool,
    ];
    for kind in kinds {
        let rt = TmRuntime::builder().scheduler_arc(kind.build()).build();
        let tree = TxRbTree::new();
        for k in 0..512u64 {
            rt.run(|tx| tree.insert(tx, k * 2, k));
        }
        let mut key = 0u64;
        group.bench_function(format!("rbtree_lookup/{kind}"), |b| {
            b.iter(|| {
                key = (key + 37) % 1024;
                rt.run(|tx| tree.get(tx, black_box(key)))
            })
        });
    }
    group.finish();
}

fn bloom_prediction(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom");
    group.sample_size(50);
    group.bench_function("insert_contains", |b| {
        let mut bf = BloomFilter::with_bits(8192, 2);
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            bf.insert(shrink_stm::VarId::from_u64(id));
            black_box(bf.contains(shrink_stm::VarId::from_u64(id / 2)))
        })
    });
    group.bench_function("shrink_on_read_hook", |b| {
        let shrink = Arc::new(Shrink::new(ShrinkConfig::default()));
        let rt = TmRuntime::builder().scheduler_arc(shrink).build();
        let vars: Vec<TVar<u64>> = (0..64).map(TVar::new).collect();
        b.iter(|| {
            rt.run(|tx| {
                let mut sum = 0;
                for var in &vars {
                    sum += tx.read(var)?;
                }
                Ok(sum)
            })
        })
    });
    group.finish();
}

fn theory_simulators(c: &mut Criterion) {
    let mut group = c.benchmark_group("theory");
    group.sample_size(30);
    group.bench_function("serializer_star_64", |b| {
        let inst = scenarios::serializer_star(64);
        b.iter(|| serializer_makespan(black_box(&inst)))
    });
    group.bench_function("ats_hub_64", |b| {
        let inst = scenarios::ats_hub(64, 4);
        b.iter(|| ats_makespan(black_box(&inst), 4))
    });
    group.bench_function("restart_random_12", |b| {
        let inst = scenarios::random_instance(12, 4, 96, 5);
        b.iter(|| restart_makespan(black_box(&inst)))
    });
    group.finish();
}

fn stmbench7_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("stmbench7");
    group.sample_size(20);
    for mix in [Sb7Mix::ReadDominated, Sb7Mix::WriteDominated] {
        let rt = TmRuntime::new();
        let workload = Sb7Workload::new(&rt, Sb7Config::tiny(), mix);
        let mut rng = rand::SeedableRng::seed_from_u64(7);
        group.bench_function(format!("step/{mix}"), |b| {
            b.iter(|| workload.step(&rt, 0, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    read_path,
    stm_primitives,
    scheduler_overhead,
    bloom_prediction,
    theory_simulators,
    stmbench7_ops
);
criterion_main!(benches);
