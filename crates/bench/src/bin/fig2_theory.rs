//! Figure 2: the lower-bound families for Serializer and ATS.
//!
//! Regenerates the makespans behind Figure 2(a) (Serializer on the star
//! family: makespan n vs OPT 2) and Figure 2(b) (ATS on the hub family:
//! makespan k + n − 1 vs OPT k + 1).

use shrink_bench::{print_header, print_row, shape, BenchOpts};
use shrink_theory::{ats_makespan, restart_makespan, scenarios, serializer_makespan};

fn main() {
    let opts = BenchOpts::from_args();
    let sizes: Vec<usize> = if opts.quick {
        vec![4, 8, 16]
    } else {
        vec![4, 8, 16, 32, 64, 128, 256]
    };

    println!("== Figure 2(a): Serializer on the star family ==");
    print_header("fig2a", &["n", "serializer", "restart", "opt", "ratio"]);
    let mut serializer_linear = true;
    for &n in &sizes {
        let inst = scenarios::serializer_star(n);
        let opt = inst.known_opt().expect("closed form");
        let ser = serializer_makespan(&inst);
        let res = restart_makespan(&inst);
        print_row(
            n,
            &[
                ser.makespan as f64,
                res.makespan as f64,
                opt as f64,
                ser.ratio(opt),
            ],
        );
        serializer_linear &= ser.makespan == n as u64;
    }
    shape(
        "Serializer makespan grows as n while OPT stays 2 (Theorem 1)",
        serializer_linear,
    );

    let k = 4u32;
    println!();
    println!("== Figure 2(b): ATS (k = {k}) on the hub family ==");
    print_header("fig2b", &["n", "ats", "restart", "opt", "ratio"]);
    let mut ats_linear = true;
    for &n in &sizes {
        let inst = scenarios::ats_hub(n, k as u64);
        let opt = inst.known_opt().expect("closed form");
        let ats = ats_makespan(&inst, k);
        let res = restart_makespan(&inst);
        print_row(
            n,
            &[
                ats.makespan as f64,
                res.makespan as f64,
                opt as f64,
                ats.ratio(opt),
            ],
        );
        ats_linear &= ats.makespan == k as u64 + n as u64 - 1;
    }
    shape(
        "ATS makespan is k + n - 1 while OPT stays k + 1 (Theorem 1)",
        ats_linear,
    );
}
