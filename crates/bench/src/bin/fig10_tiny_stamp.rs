//! Figure 10 (appendix): speedup of Shrink-TinySTM over base TinySTM on
//! the ten STAMP configurations. The paper reports up to ~100x on
//! intruder/vacation/yada in heavily overloaded runs, driven by base
//! TinySTM's busy-waiting collapse.

use shrink_bench::figures::{stamp_figure, stamp_summary};
use shrink_bench::BenchOpts;
use shrink_stm::{BackendKind, WaitPolicy};

fn main() {
    let opts = BenchOpts::from_args();
    let rows = stamp_figure("fig10", BackendKind::Tiny, WaitPolicy::Busy, &opts);
    stamp_summary(&rows, 16);
}
