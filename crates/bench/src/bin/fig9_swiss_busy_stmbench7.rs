//! Figure 9 (appendix): SwissTM with **busy waiting** on STMBench7, base
//! versus Shrink. With busy waiting the base TM's throughput drops steeply
//! once threads exceed cores; Shrink-SwissTM holds its throughput.

use shrink_bench::figures::{check_overload_shape, stmbench7_figure, Variant};
use shrink_bench::BenchOpts;
use shrink_core::SchedulerKind;
use shrink_stm::{BackendKind, WaitPolicy};

fn main() {
    let opts = BenchOpts::from_args();
    let variants = [
        Variant {
            label: "SwissTM",
            kind: SchedulerKind::Noop,
        },
        Variant {
            label: "Shrink-SwissTM",
            kind: SchedulerKind::shrink_default(),
        },
    ];
    let threads = opts.paper_threads();
    let results = stmbench7_figure(
        "fig9",
        BackendKind::Swiss,
        WaitPolicy::Busy,
        &variants,
        &opts,
    );
    for (mix, series) in &results {
        check_overload_shape(&format!("{mix}"), &threads, &series[0], &series[1]);
    }
}
