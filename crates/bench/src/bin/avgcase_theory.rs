//! Average-case scheduler comparison — the experiment the paper's
//! conclusion asks for ("a formalism to reason about the average case
//! performance of TM schedulers").
//!
//! Sweeps random instance families over conflict density and reports each
//! scheduler's mean competitive ratio against the exact offline batch
//! optimum, showing where prediction (Restart) separates from reactive
//! serialization (Serializer, ATS) *on average*, not just in the worst
//! case of Theorem 1.

use shrink_bench::{print_header, shape, BenchOpts};
use shrink_theory::{
    ats_makespan, greedy_makespan, opt_estimate, restart_makespan, scenarios, serializer_makespan,
};

fn main() {
    let opts = BenchOpts::from_args();
    let samples = if opts.quick { 10 } else { 50 };
    let n = 12; // within the exact solver's reach
    let densities: &[u32] = &[16, 48, 96, 160, 224]; // of 256

    println!("== Average competitive ratio over {samples} random instances (n = {n}) ==");
    print_header(
        "avgcase",
        &["density%", "restart", "greedy", "serializer", "ats(k=3)"],
    );
    let mut rows = Vec::new();
    for &density in densities {
        let mut sums = [0.0f64; 4];
        for sample in 0..samples {
            let seed = (density as u64) << 32 | sample as u64;
            let inst = scenarios::random_instance(n, 4, density, seed);
            let opt = opt_estimate(&inst) as f64;
            sums[0] += restart_makespan(&inst).makespan as f64 / opt;
            sums[1] += greedy_makespan(&inst).makespan as f64 / opt;
            sums[2] += serializer_makespan(&inst).makespan as f64 / opt;
            sums[3] += ats_makespan(&inst, 3).makespan as f64 / opt;
        }
        let means: Vec<f64> = sums.iter().map(|s| s / samples as f64).collect();
        println!(
            "{:>10.0} {:>14.3} {:>14.3} {:>14.3} {:>14.3}",
            density as f64 / 2.56,
            means[0],
            means[1],
            means[2],
            means[3]
        );
        rows.push((density, means));
    }

    let restart_always_best = rows.iter().all(|(_, m)| m[0] <= m[2] && m[0] <= m[3]);
    shape(
        "accurate prediction (Restart) dominates reactive serialization on average",
        restart_always_best,
    );
    let reactive_worsens_with_density = {
        let first = &rows.first().expect("rows").1;
        let last = &rows.last().expect("rows").1;
        last[2] >= first[2] && last[3] >= first[3]
    };
    shape(
        "Serializer/ATS average ratios grow with conflict density",
        reactive_worsens_with_density,
    );
}
