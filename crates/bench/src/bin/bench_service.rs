//! Service scenario: the sharded KV/booking store under open-loop traffic,
//! compared across all five schedulers at multiples of measured capacity.
//!
//! This is the figure the closed-loop benchmarks cannot draw. Capacity is
//! calibrated once (base scheduler, arrivals offered far faster than the
//! store can serve, so the worker pool runs flat out), then every
//! scheduler serves the *same* pre-generated arrival schedule at 1×, 2×
//! and 4× that rate. Latency is measured from **scheduled arrival**, so at
//! 2× and 4× the queueing delay of an overloaded store lands in the p99 —
//! the regime where the paper says prevention beats curing.
//!
//! While each cell runs, an auditor thread repeatedly takes the
//! freeze-gated distributed snapshot and asserts exact cross-shard
//! conservation — the ledger numbers are only written if the store stayed
//! correct mid-flight.
//!
//! Output: a table per load level plus `BENCH_service.json` with
//! p50/p99/p999 per (scheduler, load) cell and `shape:` lines for the
//! qualitative claims. Each cell keeps the run with the median p99 of
//! three. Like fig7's overhead check, the two cross-scheduler `shape:`
//! claims are noisy under `--quick` on a small container (fewer samples
//! than the p99 needs); the full run is the ledger of record.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use shrink_bench::perf::{write_json, LatencyHistogram, Record};
use shrink_bench::{make_runtime, print_header, shape, BenchOpts};
use shrink_core::{AtsConfig, SchedulerKind, SerializerConfig};
use shrink_stm::{BackendKind, WaitPolicy};
use shrink_workloads::service::{
    build_schedule, run_open_loop, RequestKind, RequestMix, ShardedStore, TrafficConfig,
};

const SHARDS: usize = 4;
const ACCOUNTS_PER_SHARD: usize = 32;
const INITIAL_BALANCE: i64 = 1_000;
const BOOKING_CAPACITY: i64 = 3;
/// Spin iterations inside each transaction body — the simulated service
/// work. Sized so calibrated capacity lands in the tens of kilorequests
/// per second, keeping arrival gaps well above `thread::sleep` granularity
/// (otherwise the percentiles measure timer jitter, not queueing).
const TX_WORK: u32 = 30_000;

struct Cell {
    sched: &'static str,
    mult: f64,
    ops_per_s: f64,
    p50: f64,
    p99: f64,
    p999: f64,
}

fn fresh_store(kind: &SchedulerKind) -> ShardedStore {
    let mut store = ShardedStore::new(
        SHARDS,
        ACCOUNTS_PER_SHARD,
        INITIAL_BALANCE,
        BOOKING_CAPACITY,
        |_| make_runtime(BackendKind::Swiss, WaitPolicy::Preemptive, kind),
    );
    store.set_tx_work(TX_WORK);
    store
}

fn base_config(opts: &BenchOpts) -> TrafficConfig {
    TrafficConfig {
        clients: 2_000,
        // Same worker count in quick mode: with fewer workers the overload
        // contention the scheduler comparison is about mostly vanishes,
        // and the preventive-vs-pool p99 gap drops below the histogram's
        // bucket resolution. Requests stay high for the same reason — a
        // cell is only ~50 ms of serving, and below ~4k samples the p99
        // run-to-run swing exceeds the scheduler effect.
        workers: 8,
        requests: if opts.quick { 4_000 } else { 6_000 },
        offered_rps: 0.0, // set per cell
        zipf_s: 1.2,
        burstiness: 0.6,
        burst_period: Duration::from_millis(10),
        mix: RequestMix::DEFAULT,
        booking_deadline: Duration::from_millis(30),
        seed: 0xC0FFEE,
    }
}

/// Serves one schedule while an auditor thread hammers the freeze-gated
/// conservation snapshot; panics if conservation or the booking invariant
/// ever fails.
fn run_cell(kind: &SchedulerKind, cfg: &TrafficConfig) -> (f64, LatencyHistogram, f64) {
    let store = fresh_store(kind);
    let schedule = build_schedule(store.n_keys(), store.n_shards(), cfg);
    let stop = AtomicBool::new(false);
    let report = std::thread::scope(|scope| {
        let auditor = {
            let store = &store;
            let stop = &stop;
            scope.spawn(move || {
                let mut audits = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    assert_eq!(
                        store.audit_conservation(),
                        store.expected_total(),
                        "conservation broke mid-flight"
                    );
                    audits += 1;
                    std::thread::sleep(Duration::from_millis(5));
                }
                audits
            })
        };
        let report = run_open_loop(&store, &schedule, cfg);
        stop.store(true, Ordering::Relaxed);
        let audits = auditor.join().expect("auditor panicked");
        assert!(audits > 0, "no live audits ran");
        report
    });
    assert_eq!(store.audit_conservation(), store.expected_total());
    store.audit_bookings();
    assert_eq!(store.pending_transfers(), 0);
    let bookings = schedule
        .iter()
        .filter(|r| r.kind == RequestKind::Booking)
        .count() as u64;
    assert_eq!(
        report.confirmed_bookings + report.declined_bookings,
        bookings
    );
    let hist = LatencyHistogram::new();
    for &(_, ns) in &report.latencies {
        hist.record(ns);
    }
    let confirm_rate = if bookings == 0 {
        1.0
    } else {
        report.confirmed_bookings as f64 / bookings as f64
    };
    let ops = report.latencies.len() as f64 / report.wall.as_secs_f64();
    (ops, hist, confirm_rate)
}

/// Measures how fast the worker pool can drain the mix when arrivals are
/// offered far above capacity (closed-loop-equivalent service rate).
fn calibrate(opts: &BenchOpts) -> f64 {
    let mut cfg = base_config(opts);
    cfg.requests = cfg.requests.min(3_000);
    cfg.offered_rps = 1e9;
    cfg.burstiness = 0.0;
    let (ops, _, _) = run_cell(&SchedulerKind::Noop, &cfg);
    ops
}

/// A single p99 sample on a small container swings more run-to-run than
/// the scheduler effect it is supposed to rank; run each cell a few times
/// and keep the p99-median run, like the other benches' median-of-N.
const REPS: usize = 3;

fn run_cell_median(kind: &SchedulerKind, cfg: &TrafficConfig) -> (f64, LatencyHistogram, f64) {
    let p99 = |run: &(f64, LatencyHistogram, f64)| {
        run.1.percentile(99.0).expect("cell recorded no latencies")
    };
    let mut runs: Vec<_> = (0..REPS).map(|_| run_cell(kind, cfg)).collect();
    runs.sort_by(|a, b| p99(a).total_cmp(&p99(b)));
    runs.swap_remove(REPS / 2)
}

fn main() {
    let opts = BenchOpts::from_args();
    let kinds: Vec<(&'static str, SchedulerKind)> = vec![
        ("base", SchedulerKind::Noop),
        ("shrink", SchedulerKind::shrink_default()),
        ("ats", SchedulerKind::Ats(AtsConfig::default())),
        ("pool", SchedulerKind::Pool),
        (
            "serializer",
            SchedulerKind::Serializer(SerializerConfig::default()),
        ),
    ];
    // Both load sweeps include 2×: the "beats on p99 under overload"
    // claims quantify over the overload levels, and moderate overload is
    // where prevention shows most clearly.
    let mults: &[f64] = &[1.0, 2.0, 4.0];

    let capacity = calibrate(&opts);
    println!("# calibrated capacity (base scheduler, flat-out): {capacity:.0} req/s");

    let cfg0 = base_config(&opts);
    let mut cells: Vec<Cell> = Vec::new();
    let mut records: Vec<Record> = Vec::new();
    for &mult in mults {
        print_header(
            &format!(
                "service @ {mult}x capacity ({:.0} req/s offered)",
                capacity * mult
            ),
            &["sched", "req/s", "p50_us", "p99_us", "p999_us", "confirm%"],
        );
        for (label, kind) in &kinds {
            let mut cfg = cfg0.clone();
            cfg.offered_rps = capacity * mult;
            let (ops, hist, confirm) = run_cell_median(kind, &cfg);
            let pct = |q| hist.percentile(q).expect("cell recorded no latencies");
            let (p50, p99, p999) = (pct(50.0), pct(99.0), pct(99.9));
            println!(
                "{label:>10} {ops:>14.1} {:>14.1} {:>14.1} {:>14.1} {:>14.1}",
                p50 / 1e3,
                p99 / 1e3,
                p999 / 1e3,
                confirm * 100.0
            );
            let mut record = Record {
                name: format!("service/{mult}x/{label}"),
                threads: cfg.workers,
                ops_per_s: ops,
                wall_s: cfg0.requests as f64 / ops,
                ..Record::default()
            };
            hist.fill_record(&mut record);
            records.push(record);
            cells.push(Cell {
                sched: label,
                mult,
                ops_per_s: ops,
                p50,
                p99,
                p999,
            });
        }
        println!();
    }

    // Qualitative claims.
    let monotone = cells.iter().all(|c| c.p50 <= c.p99 && c.p99 <= c.p999);
    shape(
        "percentiles are monotone (p50 <= p99 <= p999) in every cell",
        monotone,
    );
    shape(
        "cross-shard conservation held on every live audit (hard-asserted above)",
        true,
    );
    let find = |sched: &str, mult: f64| {
        cells
            .iter()
            .find(|c| c.sched == sched && c.mult == mult)
            .expect("cell missing")
    };
    let lo = mults[0];
    let hi = *mults.last().unwrap();
    shape(
        "overload inflates the base scheduler's tail (p99 grows with offered load)",
        find("base", hi).p99 >= find("base", lo).p99,
    );
    let preventive = ["shrink", "ats", "serializer"];
    let overload: Vec<f64> = mults.iter().copied().filter(|&m| m > 1.0).collect();
    let beats = |baseline: &str| {
        overload.iter().any(|&m| {
            preventive
                .iter()
                .any(|p| find(p, m).p99 < find(baseline, m).p99)
        })
    };
    shape(
        "a preventive scheduler beats the backoff-cured base on p99 under overload",
        beats("base"),
    );
    shape(
        "a preventive scheduler beats pool on p99 under overload",
        beats("pool"),
    );
    let worst_loss = cells
        .iter()
        .filter(|c| c.mult == lo)
        .map(|c| c.ops_per_s)
        .fold(f64::INFINITY, f64::min);
    shape(
        "no scheduler collapses at 1x (throughput within 4x of calibrated capacity)",
        worst_loss * 4.0 >= capacity,
    );

    write_json("BENCH_service.json", "service", opts.quick, &records);
}
