//! Async-transaction micro benchmarks: suspended `TxFuture`s against the
//! thread-parked `Tx::retry` baseline they decouple from OS threads.
//!
//! Three layers (DESIGN.md §12):
//!
//! 1. `blocked_footprint/*` — resident bytes per blocked consumer: 100k+
//!    logical consumers suspended in retry on an 8-worker pool, versus
//!    hundreds of OS threads parked in the same predicate. The async cell
//!    is the headline of the pluggable-parker refactor: a suspended
//!    transaction is a registered parker plus a boxed task, not a stack.
//! 2. `wake_storm/*` — one commit flips the gate every blocked consumer
//!    watches; measures how fast the whole population drains (commit →
//!    last consumer finished), async wake-and-poll vs. futex wake.
//! 3. `retry_wake_latency/1/async` — the single-consumer commit→resume
//!    round trip, the async row matching `bench_retry`'s parked row
//!    (reproduced here as `/thread` so the ledger is self-contained).
//!
//! Results print as a table and are written to `BENCH_async.json`
//! (regenerated and uploaded by CI's `bench-smoke` job alongside the other
//! perf ledgers).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use futures::executor::ThreadPool;
use parking_lot::EventCount;
use shrink_bench::perf::{median, resident_bytes, write_json, Record};
use shrink_bench::{shape, BenchOpts};
use shrink_stm::future::atomically_async;
use shrink_stm::{TVar, TmRuntime};

/// Worker threads driving every async probe — the "≤ 8 workers" side of
/// the headline claim.
const WORKERS: usize = 8;

/// Completion latch: tasks count themselves done, one thread waits.
struct Latch {
    done: AtomicU64,
    ev: EventCount,
}

impl Latch {
    fn new() -> Arc<Self> {
        Arc::new(Latch {
            done: AtomicU64::new(0),
            ev: EventCount::new(),
        })
    }

    fn arrive(&self) {
        self.done.fetch_add(1, Ordering::Release);
        self.ev.advance();
    }

    fn wait(&self, count: u64) {
        loop {
            let observed = self.ev.version();
            if self.done.load(Ordering::Acquire) >= count {
                return;
            }
            self.ev.wait_while_eq(observed, None);
        }
    }
}

/// Outcome of one footprint+storm population run.
struct PopulationOutcome {
    bytes_per_consumer: f64,
    suspend_wall_s: f64,
    drain_wall_s: f64,
}

/// Async population: `consumers` TxFuture tasks suspended on one gate
/// TVar, on a `WORKERS`-thread pool. Measures RSS per suspended consumer,
/// then releases the whole population with a single commit.
fn async_population(consumers: u64, records: &mut Vec<Record>) -> PopulationOutcome {
    let rt = TmRuntime::new();
    let gate: TVar<u64> = TVar::new(0);
    let pool = ThreadPool::builder()
        .pool_size(WORKERS)
        .name_prefix("bench-async-")
        .create()
        .expect("spawn worker pool");
    let latch = Latch::new();

    let rss_before = resident_bytes();
    let suspend_started = Instant::now();
    for _ in 0..consumers {
        let rt = rt.clone();
        let gate = gate.clone();
        let latch = Arc::clone(&latch);
        pool.spawn_ok(async move {
            atomically_async(&rt, move |tx| {
                if tx.read(&gate)? == 0 {
                    return tx.retry();
                }
                Ok(())
            })
            .await;
            latch.arrive();
        });
    }
    // Every consumer reads the same TVar, so all registrations land on one
    // bucket and the waiter count hits exactly `consumers` when the whole
    // population is suspended.
    while rt.retry_waiters() < consumers {
        std::thread::yield_now();
    }
    let suspend_wall_s = suspend_started.elapsed().as_secs_f64();
    let rss_after = resident_bytes();
    let bytes_per_consumer = match (rss_before, rss_after) {
        (Some(a), Some(b)) => b.saturating_sub(a) as f64 / consumers as f64,
        _ => f64::NAN,
    };

    // One commit releases everyone: bump-and-wake on the shared bucket
    // hands every stored waker to the pool.
    let drain_started = Instant::now();
    rt.run(|tx| tx.write(&gate, 1));
    latch.wait(consumers);
    let drain_wall_s = drain_started.elapsed().as_secs_f64();

    let stats = rt.retry_stats();
    assert!(
        stats.async_parks >= consumers,
        "every consumer suspended at least once: {stats:?}"
    );
    assert_eq!(rt.retry_waiters(), 0, "waitlist drained: {stats:?}");

    println!(
        "{:>20}/{WORKERS}  {:>10}  {bytes_per_consumer:>10.0} B/consumer \
         ({consumers} suspended in {suspend_wall_s:.2}s, {} async parks)",
        "blocked_footprint", "async", stats.async_parks
    );
    records.push(Record {
        name: format!("blocked_footprint/{WORKERS}/async"),
        threads: WORKERS,
        ops_per_s: consumers as f64 / suspend_wall_s,
        ns_per_op: None,
        cpu_util: None,
        victim_ops_per_s: None,
        ctxt_per_op: None,
        wasted_per_op: None,
        bytes_per_op: Some(bytes_per_consumer),
        wall_s: suspend_wall_s,
        ..Record::default()
    });
    println!(
        "{:>20}/{WORKERS}  {:>10}  {:>12.0} consumers/s drained \
         ({drain_wall_s:.3}s commit→last, {} tasks woken)",
        "wake_storm",
        "async",
        consumers as f64 / drain_wall_s,
        stats.tasks_woken
    );
    records.push(Record {
        name: format!("wake_storm/{WORKERS}/async"),
        threads: WORKERS,
        ops_per_s: consumers as f64 / drain_wall_s,
        ns_per_op: Some(drain_wall_s * 1e9 / consumers as f64),
        cpu_util: None,
        victim_ops_per_s: None,
        ctxt_per_op: None,
        wasted_per_op: None,
        bytes_per_op: None,
        wall_s: drain_wall_s,
        ..Record::default()
    });

    PopulationOutcome {
        bytes_per_consumer,
        suspend_wall_s,
        drain_wall_s,
    }
}

/// Thread-parked baseline population: `threads` OS threads blocked in
/// `Tx::retry` on one gate. Far fewer than the async population — at 8 MiB
/// of (virtual) stack a 100k-thread baseline would not even spawn — which
/// is itself the point being measured.
fn thread_population(threads: u64, records: &mut Vec<Record>) -> PopulationOutcome {
    let rt = TmRuntime::builder()
        .retry_wait(Duration::from_secs(30))
        .build();
    let gate: TVar<u64> = TVar::new(0);

    let rss_before = resident_bytes();
    let suspend_started = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let rt = rt.clone();
            let gate = gate.clone();
            std::thread::spawn(move || {
                rt.run(|tx| {
                    if tx.read(&gate)? == 0 {
                        return tx.retry();
                    }
                    Ok(())
                })
            })
        })
        .collect();
    while rt.retry_waiters() < threads {
        std::thread::yield_now();
    }
    let suspend_wall_s = suspend_started.elapsed().as_secs_f64();
    let rss_after = resident_bytes();
    let bytes_per_consumer = match (rss_before, rss_after) {
        (Some(a), Some(b)) => b.saturating_sub(a) as f64 / threads as f64,
        _ => f64::NAN,
    };

    let drain_started = Instant::now();
    rt.run(|tx| tx.write(&gate, 1));
    for w in workers {
        w.join().expect("parked consumer panicked");
    }
    let drain_wall_s = drain_started.elapsed().as_secs_f64();

    println!(
        "{:>20}/{threads}  {:>10}  {bytes_per_consumer:>10.0} B/consumer \
         ({threads} parked in {suspend_wall_s:.2}s; RSS counts touched stack pages only)",
        "blocked_footprint", "thread"
    );
    records.push(Record {
        name: format!("blocked_footprint/{threads}/thread"),
        threads: threads as usize,
        ops_per_s: threads as f64 / suspend_wall_s,
        ns_per_op: None,
        cpu_util: None,
        victim_ops_per_s: None,
        ctxt_per_op: None,
        wasted_per_op: None,
        bytes_per_op: Some(bytes_per_consumer),
        wall_s: suspend_wall_s,
        ..Record::default()
    });
    println!(
        "{:>20}/{threads}  {:>10}  {:>12.0} consumers/s drained ({drain_wall_s:.3}s commit→last)",
        "wake_storm",
        "thread",
        threads as f64 / drain_wall_s
    );
    records.push(Record {
        name: format!("wake_storm/{threads}/thread"),
        threads: threads as usize,
        ops_per_s: threads as f64 / drain_wall_s,
        ns_per_op: Some(drain_wall_s * 1e9 / threads as f64),
        cpu_util: None,
        victim_ops_per_s: None,
        ctxt_per_op: None,
        wasted_per_op: None,
        bytes_per_op: None,
        wall_s: drain_wall_s,
        ..Record::default()
    });

    PopulationOutcome {
        bytes_per_consumer,
        suspend_wall_s,
        drain_wall_s,
    }
}

/// Single-consumer wake latency, async flavour: a TxFuture suspended on a
/// counter predicate, a producer commit, median ns commit→task-finished.
/// The handshake is deterministic: the producer commits only once the
/// waiter count proves the consumer is registered.
fn wake_latency_async(rounds: u32, records: &mut Vec<Record>) -> f64 {
    let rt = TmRuntime::new();
    let var: TVar<u64> = TVar::new(0);
    let pool = ThreadPool::builder()
        .pool_size(1)
        .name_prefix("bench-async-lat-")
        .create()
        .expect("spawn worker pool");
    let mut samples = Vec::with_capacity(rounds as usize);
    let started = Instant::now();
    for r in 1..=rounds as u64 {
        let latch = Latch::new();
        {
            let rt = rt.clone();
            let var = var.clone();
            let latch = Arc::clone(&latch);
            pool.spawn_ok(async move {
                atomically_async(&rt, move |tx| {
                    if tx.read(&var)? < r {
                        return tx.retry();
                    }
                    Ok(())
                })
                .await;
                latch.arrive();
            });
        }
        while rt.retry_waiters() == 0 {
            std::thread::yield_now();
        }
        let t0 = Instant::now();
        rt.run(|tx| tx.write(&var, r));
        latch.wait(1);
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    let wall = started.elapsed().as_secs_f64();
    let med = median(&mut samples);
    let stats = rt.retry_stats();
    println!(
        "{:>20}/1  {:>10}  {med:>10.0} ns commit→resume (median of {rounds}; \
         {} async parks, {} tasks woken)",
        "retry_wake_latency", "async", stats.async_parks, stats.tasks_woken
    );
    records.push(Record {
        name: "retry_wake_latency/1/async".into(),
        threads: 1,
        ops_per_s: rounds as f64 / wall,
        ns_per_op: Some(med),
        cpu_util: None,
        victim_ops_per_s: None,
        ctxt_per_op: None,
        wasted_per_op: None,
        bytes_per_op: None,
        wall_s: wall,
        ..Record::default()
    });
    med
}

/// Single-consumer wake latency, thread-parked flavour — `bench_retry`'s
/// parked probe reproduced so this ledger carries its own baseline.
fn wake_latency_thread(rounds: u32, records: &mut Vec<Record>) -> f64 {
    let rt = TmRuntime::builder()
        .retry_wait(Duration::from_secs(30))
        .build();
    let var: TVar<u64> = TVar::new(0);
    let mut samples = Vec::with_capacity(rounds as usize);
    let started = Instant::now();
    for r in 1..=rounds as u64 {
        let consumer = {
            let rt = rt.clone();
            let var = var.clone();
            std::thread::spawn(move || {
                rt.run(|tx| {
                    if tx.read(&var)? < r {
                        return tx.retry();
                    }
                    Ok(())
                })
            })
        };
        while rt.retry_waiters() == 0 {
            std::thread::yield_now();
        }
        let t0 = Instant::now();
        rt.run(|tx| tx.write(&var, r));
        consumer.join().expect("parked consumer panicked");
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    let wall = started.elapsed().as_secs_f64();
    let med = median(&mut samples);
    println!(
        "{:>20}/1  {:>10}  {med:>10.0} ns commit→resume (median of {rounds})",
        "retry_wake_latency", "thread"
    );
    records.push(Record {
        name: "retry_wake_latency/1/thread".into(),
        threads: 1,
        ops_per_s: rounds as f64 / wall,
        ns_per_op: Some(med),
        cpu_util: None,
        victim_ops_per_s: None,
        ctxt_per_op: None,
        wasted_per_op: None,
        bytes_per_op: None,
        wall_s: wall,
        ..Record::default()
    });
    med
}

fn main() {
    let opts = BenchOpts::from_args();
    let mut records = Vec::new();

    // The headline population stays ≥ 100k even in --quick: the suspend and
    // drain phases are linear and cheap (a quick run spends well under a
    // second here), and shrinking it would unmeasure the claim.
    let consumers: u64 = 100_000;
    let baseline_threads: u64 = if opts.quick { 256 } else { 512 };

    println!("# bench_async — suspended TxFutures vs thread-parked Tx::retry");
    println!("# blocked-consumer footprint ({consumers} async consumers on {WORKERS} workers)");
    let async_pop = async_population(consumers, &mut records);
    let thread_pop = thread_population(baseline_threads, &mut records);

    println!("# single-consumer wake latency (commit → blocked consumer resumed)");
    let rounds = if opts.quick { 100 } else { 1000 };
    let async_lat = wake_latency_async(rounds, &mut records);
    let thread_lat = wake_latency_thread(rounds, &mut records);

    // Qualitative claims (see DESIGN.md §5.3 for the shape grammar).
    shape(
        &format!("{consumers} logical consumers block concurrently on {WORKERS} worker threads"),
        consumers >= 100_000 && WORKERS <= 8,
    );
    shape(
        &format!(
            "per-consumer memory ({:.0} B async) is an order of magnitude below the \
             thread-parked baseline ({:.0} B resident/thread)",
            async_pop.bytes_per_consumer, thread_pop.bytes_per_consumer
        ),
        async_pop.bytes_per_consumer.is_finite()
            && thread_pop.bytes_per_consumer.is_finite()
            && 10.0 * async_pop.bytes_per_consumer <= thread_pop.bytes_per_consumer,
    );
    shape(
        "per-consumer memory is two orders of magnitude below a default 8 MiB thread stack",
        async_pop.bytes_per_consumer.is_finite()
            && 100.0 * async_pop.bytes_per_consumer <= 8.0 * 1024.0 * 1024.0,
    );
    shape(
        "one commit drains the whole suspended population (no consumer left registered)",
        async_pop.drain_wall_s.is_finite(),
    );
    shape(
        "async wake latency stays within 16x the thread-parked futex wake",
        async_lat.is_finite() && thread_lat.is_finite() && async_lat <= 16.0 * thread_lat,
    );
    let _ = (async_pop.suspend_wall_s, thread_pop.suspend_wall_s);

    write_json("BENCH_async.json", "async", opts.quick, &records);
}
