//! Theorems 1–3: competitive-ratio sweeps for every scheduler of Section 2.
//!
//! Prints, for growing instance sizes, the ratio of each scheduler's
//! makespan to the offline optimum:
//!
//! * Serializer and ATS grow linearly in n (Theorem 1);
//! * Restart stays at or below 2 (Theorem 2);
//! * Inaccurate grows as n despite running Restart's algorithm (Theorem 3);
//! * Greedy (Motwani et al.) stays at or below 3, for reference.

use shrink_bench::{print_header, shape, BenchOpts};
use shrink_theory::competitive;

fn main() {
    let opts = BenchOpts::from_args();
    let family_sizes: Vec<usize> = if opts.quick {
        vec![4, 8, 16]
    } else {
        vec![4, 8, 16, 32, 64, 128]
    };
    // Restart/Greedy run against the exact offline optimum, so their
    // random instances stay within the exact solver's reach.
    let random_sizes: Vec<usize> = vec![4, 6, 8, 10, 12];
    let ats_k = 4;

    println!("== Theorem 1: Serializer is O(n)-competitive (star family) ==");
    print_header("serializer", &["n", "ratio"]);
    let serializer = competitive::serializer_sweep(&family_sizes);
    for p in &serializer {
        println!("{}", p);
    }
    shape(
        "Serializer ratio == n/2 on the star family",
        serializer
            .iter()
            .all(|p| (p.ratio - p.n as f64 / 2.0).abs() < 1e-9),
    );

    println!();
    println!("== Theorem 1: ATS is O(n)-competitive (hub family, k = {ats_k}) ==");
    let ats = competitive::ats_sweep(&family_sizes, ats_k);
    for p in &ats {
        println!("{}", p);
    }
    shape(
        "ATS ratio == (k+n-1)/(k+1) on the hub family",
        ats.iter().all(|p| {
            let expected = (ats_k as f64 + p.n as f64 - 1.0) / (ats_k as f64 + 1.0);
            (p.ratio - expected).abs() < 1e-9
        }),
    );

    println!();
    println!("== Theorem 2: Restart is 2-competitive (random instances) ==");
    println!("# note: the opt column is the exact optimal *batch* makespan, an upper");
    println!("# bound on the unrestricted optimum; staggered-start schedules (Greedy)");
    println!("# can therefore show ratios slightly below 1.");
    let restart = competitive::restart_sweep(&random_sizes, 0xC0DE);
    for p in &restart {
        println!("{}", p);
    }
    shape(
        "Restart ratio <= 2 everywhere",
        restart.iter().all(|p| p.ratio <= 2.0 + 1e-9),
    );

    println!();
    println!("== Theorem 3: Inaccurate is O(n)-competitive (independent family) ==");
    let inaccurate = competitive::inaccurate_sweep(&family_sizes);
    for p in &inaccurate {
        println!("{}", p);
    }
    shape(
        "Inaccurate ratio == n with the all-share-R1 belief",
        inaccurate
            .iter()
            .all(|p| (p.ratio - p.n as f64).abs() < 1e-9),
    );

    println!();
    println!("== Reference: Greedy (Motwani et al., 3-competitive) ==");
    let greedy = competitive::greedy_sweep(&random_sizes, 0xC0DE);
    for p in &greedy {
        println!("{}", p);
    }
    shape(
        "Greedy ratio <= 3 everywhere",
        greedy.iter().all(|p| p.ratio <= 3.0 + 1e-9),
    );
}
