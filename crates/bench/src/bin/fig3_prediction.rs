//! Figure 3: accuracy of Shrink's read- and write-set predictions on
//! STMBench7, per workload mix and thread count.
//!
//! The paper reports ~70 % average accuracy, higher for read-dominated
//! mixes (temporal locality is strongest when the structure changes
//! little) and high write-prediction accuracy across mixes (retries mimic
//! the aborted attempt).

use std::sync::Arc;

use shrink_bench::{print_header, print_row, shape, BenchOpts};
use shrink_core::{Shrink, ShrinkConfig};
use shrink_stm::{BackendKind, TmRuntime, WaitPolicy};
use shrink_workloads::harness::{run_throughput, TxWorkload};
use shrink_workloads::stmbench7::{Sb7Config, Sb7Mix, Sb7Workload};

fn main() {
    let opts = BenchOpts::from_args();
    // Prediction only activates below the success-rate threshold; keep the
    // affinity gate fully open so accuracy is measured on every start.
    let shrink_config = ShrinkConfig {
        affinity_bias: 32,
        succ_threshold: 1.1,
        ..ShrinkConfig::default()
    };
    let threads: Vec<usize> = opts
        .paper_threads()
        .into_iter()
        .filter(|&t| t >= 2)
        .collect();

    let mut accuracies: Vec<(Sb7Mix, f64, f64)> = Vec::new();
    for mix in Sb7Mix::all() {
        println!("== Figure 3: prediction accuracy, {mix} ==");
        print_header("fig3", &["threads", "read-acc-%", "write-acc-%"]);
        for &t in &threads {
            let shrink = Arc::new(Shrink::new(shrink_config.clone()));
            let rt = TmRuntime::builder()
                .backend(BackendKind::Swiss)
                .wait_policy(WaitPolicy::Preemptive)
                .scheduler_arc(shrink.clone())
                .build();
            let workload: Arc<dyn TxWorkload> =
                Arc::new(Sb7Workload::new(&rt, Sb7Config::default(), mix));
            let _ = run_throughput(&rt, &workload, &opts.run_config(t));
            let stats = shrink.prediction_stats();
            let read_acc = stats.read_accuracy().unwrap_or(0.0) * 100.0;
            let write_acc = stats.write_accuracy().unwrap_or(0.0) * 100.0;
            print_row(t, &[read_acc, write_acc]);
            accuracies.push((mix, read_acc, write_acc));
        }
        println!();
    }

    let read_dom: Vec<f64> = accuracies
        .iter()
        .filter(|(m, _, _)| *m == Sb7Mix::ReadDominated)
        .map(|&(_, r, _)| r)
        .collect();
    let write_dom: Vec<f64> = accuracies
        .iter()
        .filter(|(m, _, _)| *m == Sb7Mix::WriteDominated)
        .map(|&(_, r, _)| r)
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    shape(
        "read prediction is more accurate on read-dominated than write-dominated mixes",
        mean(&read_dom) >= mean(&write_dom),
    );
    let all_reads: Vec<f64> = accuracies.iter().map(|&(_, r, _)| r).collect();
    shape(
        "average read prediction accuracy is substantial (paper: ~70 %)",
        mean(&all_reads) >= 40.0,
    );
    let all_writes: Vec<f64> = accuracies
        .iter()
        .map(|&(_, _, w)| w)
        .filter(|&w| w > 0.0)
        .collect();
    shape(
        "write-set predictions (from aborted attempts) are fairly accurate",
        all_writes.is_empty() || mean(&all_writes) >= 40.0,
    );
}
