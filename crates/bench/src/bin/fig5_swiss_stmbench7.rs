//! Figure 5: SwissTM throughput on STMBench7 (preemptive waiting) for the
//! base TM and the Pool, Shrink and ATS schedulers, across 1–24 threads
//! and the three workload mixes.

use shrink_bench::figures::{check_overload_shape, stmbench7_figure, Variant};
use shrink_bench::{shape, BenchOpts};
use shrink_core::{AtsConfig, SchedulerKind, SerializerConfig};
use shrink_stm::{BackendKind, WaitPolicy};

fn main() {
    let opts = BenchOpts::from_args();
    let variants = [
        Variant {
            label: "SwissTM",
            kind: SchedulerKind::Noop,
        },
        Variant {
            label: "Pool-SwissTM",
            kind: SchedulerKind::Pool,
        },
        Variant {
            label: "Shrink-SwissTM",
            kind: SchedulerKind::shrink_default(),
        },
        Variant {
            label: "ATS-SwissTM",
            kind: SchedulerKind::Ats(AtsConfig::default()),
        },
        Variant {
            label: "Serializer",
            kind: SchedulerKind::Serializer(SerializerConfig::default()),
        },
    ];
    let threads = opts.paper_threads();
    let results = stmbench7_figure(
        "fig5",
        BackendKind::Swiss,
        WaitPolicy::Preemptive,
        &variants,
        &opts,
    );
    for (mix, series) in &results {
        // series[0]=base, series[2]=shrink, series[3]=ats
        check_overload_shape(&format!("{mix}"), &threads, &series[0], &series[2]);
        let last = threads.len() - 1;
        shape(
            &format!("{mix}: Shrink beats ATS when heavily overloaded"),
            series[2][last] >= series[3][last] * 0.9,
        );
    }
}
