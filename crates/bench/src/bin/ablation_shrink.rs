//! Ablation study: which of Shrink's ingredients buys what?
//!
//! Runs the write-dominated STMBench7 mix (the paper's most
//! scheduler-sensitive configuration) in a heavily overloaded setting and
//! compares:
//!
//! * `base` — no scheduler;
//! * `shrink` — the full scheduler (paper defaults);
//! * `literal-paper` — affinity bias 0, the listing taken literally (cannot
//!   bootstrap; expected ≈ base);
//! * `always-predict` — affinity gate forced open (bias = modulus):
//!   serialization affinity ablated;
//! * `no-write-pred` — predicted write sets disabled (window of read
//!   prediction only, via `max_pred_set` for writes);
//! * `window-1`/`window-8` — locality window halved/doubled;
//! * `pool` — serialize on any contention (no prediction at all).

use std::sync::Arc;

use shrink_bench::{measure_cell, print_header, BenchOpts};
use shrink_core::{SchedulerKind, ShrinkConfig};
use shrink_stm::{BackendKind, WaitPolicy};
use shrink_workloads::harness::TxWorkload;
use shrink_workloads::stmbench7::{Sb7Config, Sb7Mix, Sb7Workload};

fn main() {
    let opts = BenchOpts::from_args();
    let threads = if opts.quick { 8 } else { 16 };

    let defaults = ShrinkConfig::default();
    let variants: Vec<(&str, SchedulerKind)> = vec![
        ("base", SchedulerKind::Noop),
        ("shrink", SchedulerKind::Shrink(defaults.clone())),
        (
            "literal-paper",
            SchedulerKind::Shrink(ShrinkConfig {
                affinity_bias: 0,
                ..defaults.clone()
            }),
        ),
        (
            "always-predict",
            SchedulerKind::Shrink(ShrinkConfig {
                affinity_bias: defaults.affinity_modulus,
                ..defaults.clone()
            }),
        ),
        (
            "window-1",
            SchedulerKind::Shrink(ShrinkConfig {
                locality_window: 2,
                confidence_weights: vec![3],
                ..defaults.clone()
            }),
        ),
        (
            "window-8",
            SchedulerKind::Shrink(ShrinkConfig {
                locality_window: 8,
                confidence_weights: vec![3, 3, 2, 2, 1, 1, 1],
                ..defaults.clone()
            }),
        ),
        ("pool", SchedulerKind::Pool),
    ];

    println!("== Shrink ablation: STMBench7 write-dominated, {threads} threads ==");
    print_header("ablation", &["variant", "commits/s", "aborts/commit"]);
    let mut baseline = None;
    for (label, kind) in &variants {
        let outcome = measure_cell(
            BackendKind::Swiss,
            WaitPolicy::Preemptive,
            kind,
            |rt| -> Arc<dyn TxWorkload> {
                Arc::new(Sb7Workload::new(
                    rt,
                    Sb7Config::default(),
                    Sb7Mix::WriteDominated,
                ))
            },
            &opts.run_config(threads),
        );
        if *label == "base" {
            baseline = Some(outcome.throughput());
        }
        let relative = baseline
            .map(|b| outcome.throughput() / b.max(1.0))
            .unwrap_or(1.0);
        println!(
            "{label:>16} {:>14.1} {:>14.3}   ({relative:.2}x base)",
            outcome.throughput(),
            outcome.abort_ratio()
        );
    }
}
