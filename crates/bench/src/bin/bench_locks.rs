//! Lock subsystem micro benchmarks: the futex-parked `RawMutex` against
//! the spin-then-yield `SpinRawMutex` baseline it replaced, from the
//! uncontended fast path up to a fig9-style overloaded serialized STM
//! workload.
//!
//! Three layers (DESIGN.md §8):
//!
//! 1. `uncontended/*` — single-thread lock+unlock latency (the fast path
//!    both implementations must not tax);
//! 2. `convoy/*` and `serial_convoy/*` — 2/8/32 threads hammering one raw
//!    mutex / one `SerialLock`, reporting throughput **and CPU burn**
//!    (utime+stime from `/proc/self/stat`). Parking wins exactly when
//!    `cpu_util` drops while `ops_per_s` holds;
//! 3. `overload_stm/*` — the paper's overload regime (threads ≫ cores):
//!    a write-heavy red-black tree under the Pool scheduler, which
//!    serializes every contended thread through the `SerialLock`, parked
//!    vs spin-yield.
//!
//! Results are printed as a table and written to `BENCH_locks.json` in the
//! current directory — the start of the repo's perf-trajectory ledger
//! (CI's `bench-smoke` job uploads it as an artifact for every PR).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::lock_api::RawMutex as _;
use parking_lot::{RawMutex, SpinRawMutex};
use shrink_bench::perf::{context_switches, with_cpu, with_cpu_and_switches, write_json, Record};
use shrink_bench::{shape, BenchOpts};
use shrink_core::{Pool, SerialLock, SerialWait};
use shrink_stm::{ThreadId, TmRuntime, WaitPolicy};
use shrink_workloads::harness::run_throughput;
use shrink_workloads::rbtree::RbTreeWorkload;
use shrink_workloads::TxWorkload;

/// Guardless lock/unlock interface the convoys are generic over.
trait Lockable: Send + Sync + 'static {
    fn lock_unlock(&self, me: u16);
}

struct RawParked(RawMutex);
impl Lockable for RawParked {
    fn lock_unlock(&self, _me: u16) {
        self.0.lock();
        // SAFETY: acquired on the line above, same thread.
        unsafe { self.0.unlock() };
    }
}

struct RawSpin(SpinRawMutex);
impl Lockable for RawSpin {
    fn lock_unlock(&self, _me: u16) {
        self.0.lock();
        // SAFETY: acquired on the line above, same thread.
        unsafe { self.0.unlock() };
    }
}

struct Serial(SerialLock);
impl Lockable for Serial {
    fn lock_unlock(&self, me: u16) {
        let me = ThreadId::from_u16(me);
        self.0.acquire(me);
        self.0.release_if_held(me);
    }
}

/// Single-thread lock+unlock latency over `iters` round trips.
fn uncontended(name: &str, iters: u64, lock: &dyn Lockable, records: &mut Vec<Record>) {
    let start = Instant::now();
    for _ in 0..iters {
        lock.lock_unlock(1);
    }
    let wall = start.elapsed().as_secs_f64();
    let ns = wall * 1e9 / iters as f64;
    println!("{name:>28}  {ns:>10.1} ns/op");
    records.push(Record {
        name: format!("uncontended/{name}"),
        threads: 1,
        ops_per_s: iters as f64 / wall,
        ns_per_op: Some(ns),
        cpu_util: None,
        victim_ops_per_s: None,
        ctxt_per_op: None,
        wasted_per_op: None,
        bytes_per_op: None,
        wall_s: wall,
        ..Record::default()
    });
}

/// Convoy outcome: lock throughput, process CPU burn, victim progress,
/// scheduler tax.
struct ConvoyOutcome {
    ops_per_s: f64,
    cpu_util: Option<f64>,
    victim_ops_per_s: f64,
    ctxt_per_op: Option<f64>,
}

/// `threads` workers hammer `lock` for `window` while one *victim* thread
/// runs a plain compute loop. Spinning waiters steal the victim's quanta;
/// parked waiters leave the core(s) to it — that makes the victim's
/// progress the CPU-burn signal that works regardless of core count
/// (`cpu_util` saturates at 1.0 on a single-core box for both variants).
fn convoy(
    group: &str,
    name: &str,
    threads: usize,
    window: Duration,
    lock: Arc<dyn Lockable>,
    records: &mut Vec<Record>,
) -> ConvoyOutcome {
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let victim_total = Arc::new(AtomicU64::new(0));
    // Workers start with fresh (zero) switch counters, so a baseline taken
    // before spawning and a sample taken *while they still run* (before the
    // stop flag lets them exit and their counters vanish) brackets exactly
    // the convoy's switches.
    let cs_baseline = context_switches();
    let cs_sample = Arc::new(AtomicU64::new(0));
    let cs_sample_for_run = Arc::clone(&cs_sample);
    let (_, wall, cpu) = with_cpu(|| {
        let workers: Vec<_> = (0..threads)
            .map(|i| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    let me = (i + 1) as u16;
                    let mut local = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        lock.lock_unlock(me);
                        local += 1;
                    }
                    total.fetch_add(local, Ordering::Relaxed);
                })
            })
            .collect();
        let victim = {
            let stop = Arc::clone(&stop);
            let victim_total = Arc::clone(&victim_total);
            std::thread::spawn(move || {
                let mut x = 0x9E37_79B9u64;
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // A page of plain arithmetic between stop checks.
                    for _ in 0..256 {
                        x = std::hint::black_box(
                            x.wrapping_mul(6364136223846793005).wrapping_add(1),
                        );
                    }
                    local += 256;
                }
                victim_total.fetch_add(local, Ordering::Relaxed);
            })
        };
        std::thread::sleep(window);
        if let Some(cs) = context_switches() {
            cs_sample_for_run.store(cs, Ordering::Relaxed);
        }
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
        victim.join().unwrap();
    });
    let ops = total.load(Ordering::Relaxed);
    let ops_per_s = ops as f64 / wall;
    let victim_ops_per_s = victim_total.load(Ordering::Relaxed) as f64 / wall;
    let ctxt_per_op = cs_baseline.and_then(|base| {
        let sample = cs_sample.load(Ordering::Relaxed);
        (sample > 0 && ops > 0).then(|| sample.saturating_sub(base) as f64 / ops as f64)
    });
    let cpu_str = cpu.map_or("      n/a".into(), |c| format!("{c:>6.2} cpu"));
    let cs_str = ctxt_per_op.map_or("     n/a".into(), |c| format!("{c:>8.4} cs/op"));
    println!(
        "{group:>14}/{threads:<2} {name:>12}  {ops_per_s:>12.0} ops/s  {cpu_str}  \
         {victim_ops_per_s:>12.0} victim-ops/s  {cs_str}"
    );
    records.push(Record {
        name: format!("{group}/{threads}/{name}"),
        threads,
        ops_per_s,
        ns_per_op: None,
        cpu_util: cpu,
        victim_ops_per_s: Some(victim_ops_per_s),
        ctxt_per_op,
        wasted_per_op: None,
        bytes_per_op: None,
        wall_s: wall,
        ..Record::default()
    });
    ConvoyOutcome {
        ops_per_s,
        cpu_util: cpu,
        victim_ops_per_s,
        ctxt_per_op,
    }
}

/// Fig9-style overload outcome (median-of-`repeats` by throughput).
struct OverloadOutcome {
    ops_per_s: f64,
    /// CPU microseconds burnt per committed transaction. Discriminates once
    /// spinners can occupy cores the parked variant leaves free; on a
    /// saturated single core it is a wash by construction.
    cpu_us_per_commit: Option<f64>,
    /// Context switches per committed transaction — the scheduler tax that
    /// stays visible even on one saturated core: every spin-yield poll
    /// round is a voluntary switch, a parked waiter switches twice per
    /// serialization (park + unpark).
    ctxt_per_commit: Option<f64>,
}

/// One overload repeat: (commit/s, cpu_util, wall_s, aborts, cs/commit).
type OverloadRun = (f64, Option<f64>, f64, u64, Option<f64>);

/// Fig9-style overload cell: write-heavy rbtree, Pool scheduler (every
/// contended thread serializes through the `SerialLock` under test).
/// Fresh runtime + workload per repeat; the median run (by throughput) is
/// reported, following the repo's `measure_cell_median` rationale.
fn overload_stm(
    name: &str,
    wait: SerialWait,
    threads: usize,
    repeats: usize,
    opts: &BenchOpts,
    records: &mut Vec<Record>,
) -> OverloadOutcome {
    let mut runs: Vec<OverloadRun> = (0..repeats)
        .map(|_| {
            let rt = TmRuntime::builder()
                .wait_policy(WaitPolicy::Preemptive)
                .scheduler_arc(Arc::new(Pool::with_wait(wait)))
                .build();
            let workload: Arc<dyn TxWorkload> = Arc::new(RbTreeWorkload::new(&rt, 16, 100));
            let config = opts.run_config(threads);
            let (outcome, wall, cpu, switches) =
                with_cpu_and_switches(|| run_throughput(&rt, &workload, &config));
            let ctxt_per_commit = switches
                .filter(|_| outcome.commits > 0)
                .map(|s| s as f64 / outcome.commits as f64);
            (
                outcome.throughput(),
                cpu,
                wall,
                outcome.aborts,
                ctxt_per_commit,
            )
        })
        .collect();
    runs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let (ops_per_s, cpu, wall, aborts, ctxt_per_commit) = runs[runs.len() / 2];
    let cpu_us_per_commit = cpu.map(|c| c * 1e6 / ops_per_s.max(1e-9));
    let cpu_str = cpu_us_per_commit.map_or("        n/a".into(), |c| format!("{c:>7.2} µs/commit"));
    let cs_str = ctxt_per_commit.map_or("     n/a".into(), |c| format!("{c:>8.4} cs/commit"));
    println!(
        "{:>14}/{threads:<2} {name:>12}  {ops_per_s:>12.0} commit/s  {cpu_str}  {cs_str}  \
         ({aborts} aborts)",
        "overload_stm"
    );
    records.push(Record {
        name: format!("overload_stm/{threads}/{name}"),
        threads,
        ops_per_s,
        ns_per_op: None,
        cpu_util: cpu,
        victim_ops_per_s: None,
        ctxt_per_op: ctxt_per_commit,
        wasted_per_op: None,
        bytes_per_op: None,
        wall_s: wall,
        ..Record::default()
    });
    OverloadOutcome {
        ops_per_s,
        cpu_us_per_commit,
        ctxt_per_commit,
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let mut records = Vec::new();

    println!("# bench_locks — parked RawMutex vs spin-then-yield baseline");
    println!("# uncontended fast path");
    let iters = if opts.quick { 1_000_000 } else { 5_000_000 };
    uncontended(
        "spin_raw",
        iters,
        &RawSpin(SpinRawMutex::INIT),
        &mut records,
    );
    uncontended(
        "parked_raw",
        iters,
        &RawParked(RawMutex::INIT),
        &mut records,
    );
    uncontended(
        "serial_lock",
        iters,
        &Serial(SerialLock::new()),
        &mut records,
    );

    println!("# convoys (shared lock, tiny critical section)");
    let window = Duration::from_secs_f64(if opts.quick { 0.15 } else { 0.5 });
    let sweep: &[usize] = &[2, 8, 32];
    let mut convoy_pairs = Vec::new();
    for &threads in sweep {
        let spin = convoy(
            "convoy",
            "spin",
            threads,
            window,
            Arc::new(RawSpin(SpinRawMutex::INIT)),
            &mut records,
        );
        let parked = convoy(
            "convoy",
            "parked",
            threads,
            window,
            Arc::new(RawParked(RawMutex::INIT)),
            &mut records,
        );
        convoy_pairs.push((threads, spin, parked));
    }

    println!("# serialized-commit convoys (SerialLock, ownership bookkeeping included)");
    for &threads in &[8usize, 32] {
        convoy(
            "serial_convoy",
            "spin",
            threads,
            window,
            Arc::new(Serial(SerialLock::with_wait(SerialWait::SpinYield))),
            &mut records,
        );
        convoy(
            "serial_convoy",
            "parked",
            threads,
            window,
            Arc::new(Serial(SerialLock::new())),
            &mut records,
        );
    }

    println!("# fig9-style overload (write-heavy rbtree, Pool scheduler, threads >> cores)");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let overload_threads = if opts.quick {
        vec![(4 * cores).max(8)]
    } else {
        vec![(4 * cores).max(8), (16 * cores).max(32)]
    };
    let repeats = if opts.quick { 3 } else { 5 };
    let mut overload_pairs = Vec::new();
    for &threads in &overload_threads {
        let spin = overload_stm(
            "spin",
            SerialWait::SpinYield,
            threads,
            repeats,
            &opts,
            &mut records,
        );
        let parked = overload_stm(
            "parked",
            SerialWait::Parked,
            threads,
            repeats,
            &opts,
            &mut records,
        );
        overload_pairs.push((threads, spin, parked));
    }

    // Qualitative claims (see DESIGN.md §5.3 for the shape grammar).
    for (threads, spin, parked) in &convoy_pairs {
        if *threads < 8 {
            continue;
        }
        shape(
            &format!("{threads}-thread convoy: parked handoff costs < 2× spin throughput"),
            parked.ops_per_s >= 0.5 * spin.ops_per_s,
        );
        if let (Some(s), Some(p)) = (spin.ctxt_per_op, parked.ctxt_per_op) {
            shape(
                &format!(
                    "{threads}-thread convoy: parked waiters pay a lower scheduler tax \
                     (context switches per op)"
                ),
                p < s,
            );
        }
        // On a single core both convoys necessarily peg it (cpu_util ≈ 1
        // either way) and CFS quirks dominate the victim split; the burn
        // comparisons only discriminate once spinners can occupy extra
        // cores that parked waiters would have left free.
        if cores > 1 {
            shape(
                &format!(
                    "{threads}-thread convoy: parked waiters leave more CPU to a co-running \
                     compute thread"
                ),
                parked.victim_ops_per_s > spin.victim_ops_per_s,
            );
            if let (Some(s), Some(p)) = (spin.cpu_util, parked.cpu_util) {
                shape(
                    &format!("{threads}-thread convoy: parked lock burns less CPU than spin-yield"),
                    p < s,
                );
            }
        }
    }
    for (threads, spin, parked) in &overload_pairs {
        shape(
            &format!(
                "overloaded serialized STM ({threads} threads): parked throughput no worse \
                 (≥ 0.8× spin-yield)"
            ),
            parked.ops_per_s >= 0.8 * spin.ops_per_s,
        );
        if let (Some(s), Some(p)) = (spin.ctxt_per_commit, parked.ctxt_per_commit) {
            shape(
                &format!(
                    "overloaded serialized STM ({threads} threads): parked pays a lower \
                     scheduler tax (context switches per commit)"
                ),
                p < s,
            );
        }
        if cores > 1 {
            if let (Some(s), Some(p)) = (spin.cpu_us_per_commit, parked.cpu_us_per_commit) {
                shape(
                    &format!(
                        "overloaded serialized STM ({threads} threads): parked burns less CPU \
                         per committed transaction"
                    ),
                    p < s,
                );
            }
        }
    }

    write_json("BENCH_locks.json", "locks", opts.quick, &records);
}
