//! Figure 8: TinySTM throughput on STMBench7 (busy waiting), base versus
//! Shrink. The paper's headline: base TinySTM collapses once overloaded;
//! Shrink keeps it alive (up to 32x at 24 threads, write-dominated).

use shrink_bench::figures::{check_overload_shape, stmbench7_figure, Variant};
use shrink_bench::BenchOpts;
use shrink_core::SchedulerKind;
use shrink_stm::{BackendKind, WaitPolicy};

fn main() {
    let opts = BenchOpts::from_args();
    let variants = [
        Variant {
            label: "TinySTM",
            kind: SchedulerKind::Noop,
        },
        Variant {
            label: "Shrink-TinySTM",
            kind: SchedulerKind::shrink_default(),
        },
    ];
    let threads = opts.paper_threads();
    let results = stmbench7_figure(
        "fig8",
        BackendKind::Tiny,
        WaitPolicy::Busy,
        &variants,
        &opts,
    );
    for (mix, series) in &results {
        check_overload_shape(&format!("{mix}"), &threads, &series[0], &series[1]);
    }
}
