//! Blocking-retry micro benchmarks: the parked `Tx::retry` wake path
//! against the spin-retry (poll-and-yield) baseline it replaces.
//!
//! Three layers (DESIGN.md §9):
//!
//! 1. `retry_wake_latency/*` — one consumer blocked on a TVar predicate,
//!    one producer committing the change: median ns from the commit to the
//!    consumer's transaction completing, parked (`Tx::retry`) vs. a
//!    poll-and-yield loop over plain read transactions;
//! 2. `unrelated_commits/*` — commits that touch nothing a waiter reads
//!    must stay wake-free (one atomic load per written stripe), the
//!    per-stripe analogue of `bench_sched`'s quiet-advance probe;
//! 3. `mpmc_queue/*` — the bounded-queue MPMC churn
//!    ([`QueueWorkload`]) in both modes: blocking consumers (parked, woken
//!    by producer commits) vs. spin consumers (`try_pop` + `yield_now`,
//!    the abort-and-retry-blind regime the paper's overloaded Figure 9
//!    punishes). Reports items moved per second, the context-switch tax,
//!    and the wait-op counters — blocking consumers must show **zero**
//!    yield-polls and nonzero commit-driven wakes.
//!
//! Results print as a table and are written to `BENCH_retry.json`
//! (regenerated and uploaded by CI's `bench-smoke` job alongside the other
//! perf ledgers).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::SeedableRng;
use shrink_bench::perf::{median, with_cpu_and_switches, write_json, LatencyHistogram, Record};
use shrink_bench::{shape, BenchOpts};
use shrink_stm::{TVar, TmRuntime};
use shrink_workloads::queue::{QueueMode, QueueWorkload};
use shrink_workloads::TxWorkload;

/// Consumer states of the wake-latency handshake.
const IDLE: u32 = 0;
const GO: u32 = 1;
const ARMED: u32 = 2;
const ACK: u32 = 3;
const QUIT: u32 = 4;

/// Wake-latency probe, parked flavour: the consumer blocks in `Tx::retry`
/// until the variable reaches the round target; the producer commits it
/// and times the round trip. The handshake is deterministic — the
/// producer only commits once the wait-op counter proves the consumer
/// entered the parked path.
fn wake_latency_parked(rounds: u32, records: &mut Vec<Record>) -> f64 {
    let rt = TmRuntime::builder()
        .retry_wait(Duration::from_secs(30))
        .build();
    let var = TVar::new(0u64);
    let state = Arc::new(AtomicU32::new(IDLE));
    let target = Arc::new(AtomicU64::new(0));
    let consumer = {
        let rt = rt.clone();
        let var = var.clone();
        let state = Arc::clone(&state);
        let target = Arc::clone(&target);
        std::thread::spawn(move || loop {
            match state.load(Ordering::SeqCst) {
                QUIT => return,
                GO => {
                    let want = target.load(Ordering::SeqCst);
                    let got = rt.run(|tx| {
                        let v = tx.read(&var)?;
                        if v < want {
                            return tx.retry();
                        }
                        Ok(v)
                    });
                    assert!(got >= want);
                    state.store(ACK, Ordering::SeqCst);
                }
                _ => std::thread::yield_now(),
            }
        })
    };
    let mut samples = Vec::with_capacity(rounds as usize);
    let started = Instant::now();
    for r in 1..=rounds as u64 {
        target.store(r, Ordering::SeqCst);
        let parked_before = rt.retry_stats().parked_waits;
        state.store(GO, Ordering::SeqCst);
        // The consumer is provably inside the parked wait path before the
        // producer commits (its round target is unreachable until then).
        while rt.retry_stats().parked_waits == parked_before {
            std::thread::yield_now();
        }
        let t0 = Instant::now();
        rt.run(|tx| tx.write(&var, r));
        // Yield while awaiting the ack: a spinning producer on one core
        // would hog the timeslice the woken consumer needs.
        while state.load(Ordering::SeqCst) != ACK {
            std::thread::yield_now();
        }
        samples.push(t0.elapsed().as_nanos() as f64);
        state.store(IDLE, Ordering::SeqCst);
    }
    let wall = started.elapsed().as_secs_f64();
    state.store(QUIT, Ordering::SeqCst);
    consumer.join().unwrap();
    let hist = LatencyHistogram::new();
    for &s in &samples {
        hist.record(s as u64);
    }
    let med = median(&mut samples);
    let stats = rt.retry_stats();
    println!(
        "{:>20}/1  {:>10}  {med:>10.0} ns commit→resume (p99 {:.0} ns, {rounds} rounds; \
         {} parked, {} woken, {} wasted wakes)",
        "retry_wake_latency",
        "parked",
        hist.percentile(99.0).unwrap_or(f64::NAN),
        stats.parked_waits,
        stats.woken,
        stats.wasted_wakes
    );
    let mut record = Record {
        name: "retry_wake_latency/1/parked".into(),
        threads: 1,
        ops_per_s: rounds as f64 / wall,
        ns_per_op: Some(med),
        wasted_per_op: Some(stats.wasted_wakes as f64 / rounds as f64),
        wall_s: wall,
        ..Record::default()
    };
    hist.fill_record(&mut record);
    records.push(record);
    med
}

/// Wake-latency probe, spin flavour: the consumer polls one-read
/// transactions with `yield_now` between misses — the blind baseline.
/// Returns `(median ns, yields per round)`.
fn wake_latency_spin(rounds: u32, records: &mut Vec<Record>) -> (f64, f64) {
    let rt = TmRuntime::new();
    let var = TVar::new(0u64);
    let state = Arc::new(AtomicU32::new(IDLE));
    let target = Arc::new(AtomicU64::new(0));
    let yields = Arc::new(AtomicU64::new(0));
    let consumer = {
        let rt = rt.clone();
        let var = var.clone();
        let state = Arc::clone(&state);
        let target = Arc::clone(&target);
        let yields = Arc::clone(&yields);
        std::thread::spawn(move || loop {
            match state.load(Ordering::SeqCst) {
                QUIT => return,
                GO => {
                    let want = target.load(Ordering::SeqCst);
                    state.store(ARMED, Ordering::SeqCst);
                    loop {
                        let v = rt.run(|tx| tx.read(&var));
                        if v >= want {
                            break;
                        }
                        yields.fetch_add(1, Ordering::Relaxed);
                        std::thread::yield_now();
                    }
                    state.store(ACK, Ordering::SeqCst);
                }
                _ => std::thread::yield_now(),
            }
        })
    };
    let mut samples = Vec::with_capacity(rounds as usize);
    let started = Instant::now();
    for r in 1..=rounds as u64 {
        target.store(r, Ordering::SeqCst);
        state.store(GO, Ordering::SeqCst);
        while state.load(Ordering::SeqCst) != ARMED {
            std::thread::yield_now();
        }
        let t0 = Instant::now();
        rt.run(|tx| tx.write(&var, r));
        while state.load(Ordering::SeqCst) != ACK {
            std::thread::yield_now();
        }
        samples.push(t0.elapsed().as_nanos() as f64);
        state.store(IDLE, Ordering::SeqCst);
    }
    let wall = started.elapsed().as_secs_f64();
    state.store(QUIT, Ordering::SeqCst);
    consumer.join().unwrap();
    let hist = LatencyHistogram::new();
    for &s in &samples {
        hist.record(s as u64);
    }
    let med = median(&mut samples);
    let polls = yields.load(Ordering::Relaxed) as f64 / rounds as f64;
    println!(
        "{:>20}/1  {:>10}  {med:>10.0} ns commit→resume (p99 {:.0} ns, {rounds} rounds; \
         {polls:.1} yield-polls/round)",
        "retry_wake_latency",
        "spin_poll",
        hist.percentile(99.0).unwrap_or(f64::NAN)
    );
    let mut record = Record {
        name: "retry_wake_latency/1/spin_poll".into(),
        threads: 1,
        ops_per_s: rounds as f64 / wall,
        ns_per_op: Some(med),
        wall_s: wall,
        ..Record::default()
    };
    hist.fill_record(&mut record);
    records.push(record);
    (med, polls)
}

/// Unrelated-commit probe: with one consumer parked on variable A, commit
/// a storm of writes to fresh variables. Within wait-bucket aliasing
/// (stripes hash onto 1024 buckets), almost none of them may issue a wake.
/// Returns wake rounds issued per unrelated commit.
fn unrelated_commits(commits: u64, records: &mut Vec<Record>) -> f64 {
    let rt = TmRuntime::builder()
        .retry_wait(Duration::from_secs(30))
        .build();
    let gate = TVar::new(0u64);
    let consumer = {
        let rt = rt.clone();
        let gate = gate.clone();
        std::thread::spawn(move || {
            rt.run(|tx| {
                if tx.read(&gate)? == 0 {
                    return tx.retry();
                }
                Ok(())
            })
        })
    };
    while rt.retry_stats().parked_waits == 0 {
        std::thread::yield_now();
    }
    let others: Vec<TVar<u64>> = (0..64).map(TVar::new).collect();
    let before = rt.retry_stats();
    let started = Instant::now();
    for i in 0..commits {
        let var = &others[i as usize % others.len()];
        rt.run(|tx| tx.write(var, i));
    }
    let wall = started.elapsed().as_secs_f64();
    let after = rt.retry_stats();
    let stray_wakes = after.wakes_issued - before.wakes_issued;
    rt.run(|tx| tx.write(&gate, 1));
    consumer.join().unwrap();
    let per_commit = stray_wakes as f64 / commits as f64;
    println!(
        "{:>20}/1  {:>10}  {:>12.0} commits/s  {stray_wakes} stray wake rounds \
         ({per_commit:.6}/commit, bucket aliasing only)",
        "unrelated_commits",
        "storm",
        commits as f64 / wall
    );
    records.push(Record {
        name: "unrelated_commits/1/storm".into(),
        threads: 1,
        ops_per_s: commits as f64 / wall,
        ns_per_op: None,
        cpu_util: None,
        victim_ops_per_s: None,
        ctxt_per_op: None,
        wasted_per_op: Some(per_commit),
        bytes_per_op: None,
        wall_s: wall,
        ..Record::default()
    });
    per_commit
}

/// One MPMC measurement: items moved per second plus CPU-burn signals.
struct MpmcOutcome {
    items_per_s: f64,
    ctxt_per_item: Option<f64>,
    spin_yields_per_item: f64,
    woken: u64,
    wasted_wakes: u64,
    parked_waits: u64,
}

/// Bounded-queue MPMC churn: `threads/2` producers vs. `threads/2`
/// consumers over one queue, timed window, fresh runtime per call.
fn mpmc(
    mode: QueueMode,
    threads: usize,
    opts: &BenchOpts,
    records: &mut Vec<Record>,
) -> MpmcOutcome {
    let rt = TmRuntime::builder()
        .retry_wait(Duration::from_millis(2))
        .build();
    let workload = Arc::new(QueueWorkload::new(64, mode));
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..threads)
        .map(|worker| {
            let rt = rt.clone();
            let workload = Arc::clone(&workload);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE + worker as u64);
                while !stop.load(Ordering::Relaxed) {
                    workload.step(&rt, worker, &mut rng);
                }
            })
        })
        .collect();

    let window = Duration::from_secs_f64(opts.seconds.max(0.05));
    std::thread::sleep(window / 5); // warmup
    let items_before = workload.items_moved();
    let yields_before = workload.spin_yields();
    let waits_before = rt.retry_stats();
    let ((), wall, cpu, switches) = with_cpu_and_switches(|| std::thread::sleep(window));
    let items = workload.items_moved() - items_before;
    let yields = workload.spin_yields() - yields_before;
    let waits_after = rt.retry_stats();
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("mpmc worker panicked");
    }
    workload.verify(&rt).expect("queue invariants");

    let items_per_s = items as f64 / wall;
    let ctxt_per_item = switches
        .filter(|_| items > 0)
        .map(|s| s as f64 / items as f64);
    let spin_yields_per_item = if items > 0 {
        yields as f64 / items as f64
    } else {
        yields as f64
    };
    let wasted = waits_after.wasted_wakes - waits_before.wasted_wakes;
    let outcome = MpmcOutcome {
        items_per_s,
        ctxt_per_item,
        spin_yields_per_item,
        woken: waits_after.woken - waits_before.woken,
        wasted_wakes: wasted,
        parked_waits: waits_after.parked_waits - waits_before.parked_waits,
    };
    let cpu_str = cpu.map_or("     n/a".into(), |c| format!("{c:>5.2} cpu"));
    let cs_str = ctxt_per_item.map_or("      n/a".into(), |c| format!("{c:>8.4} cs/item"));
    println!(
        "{:>20}/{threads:<2} {:>10}  {items_per_s:>10.0} items/s  {cpu_str}  {cs_str}  \
         ({} parked, {} woken, {} wasted wakes, {:.2} yield-polls/item)",
        "mpmc_queue", mode, outcome.parked_waits, outcome.woken, wasted, spin_yields_per_item
    );
    records.push(Record {
        name: format!("mpmc_queue/{threads}/{mode}"),
        threads,
        ops_per_s: items_per_s,
        ns_per_op: None,
        cpu_util: cpu,
        victim_ops_per_s: None,
        ctxt_per_op: ctxt_per_item,
        wasted_per_op: (items > 0).then_some(wasted as f64 / items as f64),
        bytes_per_op: None,
        wall_s: wall,
        ..Record::default()
    });
    outcome
}

fn main() {
    let opts = BenchOpts::from_args();
    let mut records = Vec::new();

    println!("# bench_retry — parked Tx::retry wake path vs spin-retry baseline");
    println!("# wake latency (1 producer commit → 1 blocked consumer resumed)");
    let rounds = if opts.quick { 200 } else { 1000 };
    let parked_lat = wake_latency_parked(rounds, &mut records);
    let (spin_lat, _spin_polls) = wake_latency_spin(rounds, &mut records);

    println!("# unrelated commits (must not wake a parked consumer)");
    let commits = if opts.quick { 50_000 } else { 200_000 };
    let stray_per_commit = unrelated_commits(commits, &mut records);

    println!("# MPMC bounded-queue churn (producers vs consumers, items moved)");
    let sweep: &[usize] = if opts.quick { &[4, 8] } else { &[4, 16] };
    let mut pairs = Vec::new();
    for &threads in sweep {
        let blocking = mpmc(QueueMode::Blocking, threads, &opts, &mut records);
        let spin = mpmc(QueueMode::Spin, threads, &opts, &mut records);
        pairs.push((threads, blocking, spin));
    }

    // Qualitative claims (see DESIGN.md §5.3 for the shape grammar).
    shape(
        "a parked consumer is woken by the producer's commit within 16× the \
         spin-poll round trip",
        parked_lat.is_finite() && spin_lat.is_finite() && parked_lat <= 16.0 * spin_lat,
    );
    shape(
        "commits outside the read set stay (nearly) wake-free — bucket aliasing \
         only (< 1% stray wake rounds)",
        stray_per_commit < 0.01,
    );
    for (threads, blocking, spin) in &pairs {
        shape(
            &format!(
                "mpmc ({threads} threads): blocking consumers perform 0 yield-polls \
                 (wait-op counters prove parked waits)"
            ),
            blocking.spin_yields_per_item == 0.0 && blocking.parked_waits > 0,
        );
        shape(
            &format!(
                "mpmc ({threads} threads): parked consumers are woken by producer \
                 commits (wasted-wakeup ledger: {} woken, {} wasted)",
                blocking.woken, blocking.wasted_wakes
            ),
            blocking.woken > 0,
        );
        shape(
            &format!(
                "mpmc ({threads} threads): the spin baseline burns yield-polls \
                 ({:.2}/item) that the parked path does not",
                spin.spin_yields_per_item
            ),
            spin.spin_yields_per_item > 0.0,
        );
        shape(
            &format!(
                "mpmc ({threads} threads): blocking throughput holds ≥ 0.5× the \
                 spin-retry baseline"
            ),
            blocking.items_per_s >= 0.5 * spin.items_per_s,
        );
        if let (Some(b), Some(s)) = (blocking.ctxt_per_item, spin.ctxt_per_item) {
            shape(
                &format!(
                    "mpmc ({threads} threads): blocking pays no more context switches \
                     per item than spinning"
                ),
                b <= s,
            );
        }
    }

    write_json("BENCH_retry.json", "retry", opts.quick, &records);
}
