//! Figure 7: red-black-tree microbenchmark on SwissTM — base, Shrink and
//! ATS, at 20 % and 70 % update rates over the 16384-key range.
//!
//! The microbenchmark exists to expose scheduler overhead: the paper
//! measures ~13 % Shrink overhead at 1 thread shrinking to a few percent
//! at 24 threads, while ATS pays substantially more.

use std::sync::Arc;
use std::time::Duration;

use shrink_bench::figures::{rbtree_figure, Variant};
use shrink_bench::{measure_cell_median, shape, BenchOpts};
use shrink_core::{AtsConfig, SchedulerKind};
use shrink_stm::{BackendKind, TmRuntime, WaitPolicy};
use shrink_workloads::harness::TxWorkload;
use shrink_workloads::rbtree::RbTreeWorkload;

/// Repeats medianed into the noise-sensitive overload shape check (the
/// single-thread overhead check divides much larger numbers and does not
/// need it).
const SHAPE_CHECK_REPEATS: usize = 5;

fn main() {
    let opts = BenchOpts::from_args();
    let variants = [
        Variant {
            label: "SwissTM",
            kind: SchedulerKind::Noop,
        },
        Variant {
            label: "Shrink-SwissTM",
            kind: SchedulerKind::shrink_default(),
        },
        Variant {
            label: "ATS-SwissTM",
            kind: SchedulerKind::Ats(AtsConfig::default()),
        },
    ];
    let threads = opts.paper_threads();
    let results = rbtree_figure(
        "fig7",
        BackendKind::Swiss,
        WaitPolicy::Preemptive,
        &[20, 70],
        &variants,
        &opts,
    );
    for (pct, series) in &results {
        let overhead_1t = 1.0 - series[1][0] / series[0][0].max(1e-9);
        println!(
            "Shrink overhead at {} thread(s), {pct}% updates: {:.1}%",
            threads[0],
            overhead_1t * 100.0
        );
        shape(
            &format!("{pct}% updates: Shrink single-thread overhead is modest (paper: ~13%)"),
            overhead_1t < 0.35,
        );
        // The "overhead shrinks as threads grow" comparison runs closest to
        // the noise floor in --quick mode (0.1 s single-shot cells), so it
        // is re-measured with averaged repeats over widened windows rather
        // than trusting the sweep cells — and phrased the way the paper
        // means it: the Shrink/base throughput ratio at the top thread
        // count must be no worse than at one thread (minus a small noise
        // margin), i.e. the relative overhead does not *grow* with threads.
        let top = *threads.last().expect("thread sweep is non-empty");
        let measure_median = |kind: &SchedulerKind, t: usize| {
            let mut config = opts.run_config(t);
            config.duration = config.duration.max(Duration::from_millis(250));
            measure_cell_median(
                BackendKind::Swiss,
                WaitPolicy::Preemptive,
                kind,
                |rt: &TmRuntime| -> Arc<dyn TxWorkload> {
                    Arc::new(RbTreeWorkload::new(rt, 16384, *pct))
                },
                &config,
                SHAPE_CHECK_REPEATS,
            )
        };
        let ratio_at = |t: usize| {
            let base = measure_median(&variants[0].kind, t);
            let shrink = measure_median(&variants[1].kind, t);
            shrink / base.max(1e-9)
        };
        let ratio_one = ratio_at(threads[0]);
        let ratio_top = ratio_at(top);
        println!(
            "Shrink/base throughput ratio, {pct}% updates: {ratio_one:.3} at \
             {} thread(s) vs {ratio_top:.3} at {top}",
            threads[0]
        );
        shape(
            &format!("{pct}% updates: Shrink overhead shrinks as threads grow"),
            ratio_top >= (ratio_one - 0.10).min(0.95),
        );
    }
}
