//! Figure 7: red-black-tree microbenchmark on SwissTM — base, Shrink and
//! ATS, at 20 % and 70 % update rates over the 16384-key range.
//!
//! The microbenchmark exists to expose scheduler overhead: the paper
//! measures ~13 % Shrink overhead at 1 thread shrinking to a few percent
//! at 24 threads, while ATS pays substantially more.

use shrink_bench::figures::{rbtree_figure, Variant};
use shrink_bench::{shape, BenchOpts};
use shrink_core::{AtsConfig, SchedulerKind};
use shrink_stm::{BackendKind, WaitPolicy};

fn main() {
    let opts = BenchOpts::from_args();
    let variants = [
        Variant {
            label: "SwissTM",
            kind: SchedulerKind::Noop,
        },
        Variant {
            label: "Shrink-SwissTM",
            kind: SchedulerKind::shrink_default(),
        },
        Variant {
            label: "ATS-SwissTM",
            kind: SchedulerKind::Ats(AtsConfig::default()),
        },
    ];
    let threads = opts.paper_threads();
    let results = rbtree_figure(
        "fig7",
        BackendKind::Swiss,
        WaitPolicy::Preemptive,
        &[20, 70],
        &variants,
        &opts,
    );
    for (pct, series) in &results {
        let overhead_1t = 1.0 - series[1][0] / series[0][0].max(1e-9);
        println!(
            "Shrink overhead at {} thread(s), {pct}% updates: {:.1}%",
            threads[0],
            overhead_1t * 100.0
        );
        shape(
            &format!("{pct}% updates: Shrink single-thread overhead is modest (paper: ~13%)"),
            overhead_1t < 0.35,
        );
        let last = threads.len() - 1;
        shape(
            &format!("{pct}% updates: Shrink overhead shrinks as threads grow"),
            series[1][last] >= series[0][last] * 0.8,
        );
    }
}
