//! Figure 11 (appendix): red-black-tree microbenchmark on TinySTM (busy
//! waiting), base versus Shrink, at 20 % and 70 % update rates.
//!
//! The paper's observation: base TinySTM's throughput falls off a cliff
//! once overloaded (busy-waiting burns whole scheduling quanta), while
//! Shrink-TinySTM stays an order of magnitude above it.

use shrink_bench::figures::{rbtree_figure, Variant};
use shrink_bench::{shape, BenchOpts};
use shrink_core::SchedulerKind;
use shrink_stm::{BackendKind, WaitPolicy};

fn main() {
    let opts = BenchOpts::from_args();
    let variants = [
        Variant {
            label: "TinySTM",
            kind: SchedulerKind::Noop,
        },
        Variant {
            label: "Shrink-TinySTM",
            kind: SchedulerKind::shrink_default(),
        },
    ];
    let threads = opts.paper_threads();
    let results = rbtree_figure(
        "fig11",
        BackendKind::Tiny,
        WaitPolicy::Busy,
        &[20, 70],
        &variants,
        &opts,
    );
    for (pct, series) in &results {
        let last = threads.len() - 1;
        shape(
            &format!(
                "{pct}% updates: Shrink-TinySTM at least matches base TinySTM at {} threads",
                threads[last]
            ),
            series[1][last] >= series[0][last] * 0.9,
        );
    }
}
