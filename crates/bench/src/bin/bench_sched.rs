//! Scheduler epoch-wait micro benchmarks: the parked epoch futex behind
//! `Serializer` against the `yield_now` poll loop it replaced.
//!
//! Three layers (DESIGN.md §8.5):
//!
//! 1. `wake_latency/*` — one waiter blocked on an `EventCount`, one waker
//!    advancing it: median ns from the advance to the waiter running again,
//!    parked vs yield-poll;
//! 2. `wasted_wakeups/*` — wake syscalls that released nobody, on a quiet
//!    advancer (must be zero: the waiter bit keeps idle advances
//!    syscall-free) and under waiter churn;
//! 3. `serializer_convoy/*` — the paper's overload regime: 2/8/32 threads
//!    on a write-heavy red-black tree under the `Serializer` scheduler,
//!    whose victims wait for their enemy's attempt epoch either parked
//!    (default) or yield-polling (`SerialWait::SpinYield` baseline).
//!    Reports commit throughput **and the context-switch tax** — every
//!    yield-poll round is a voluntary switch, visible even on one
//!    saturated core.
//!
//! Results are printed as a table and written to `BENCH_sched.json` in the
//! current directory, the scheduler-side sibling of `BENCH_locks.json`
//! (CI's `bench-smoke` job regenerates and uploads both on every PR).

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::EventCount;
use shrink_bench::perf::{median, with_cpu_and_switches, write_json, Record};
use shrink_bench::{shape, BenchOpts};
use shrink_core::{SerialWait, Serializer, SerializerConfig, SerializerWaitStats};
use shrink_stm::{TmRuntime, WaitPolicy};
use shrink_workloads::harness::run_throughput;
use shrink_workloads::rbtree::RbTreeWorkload;
use shrink_workloads::TxWorkload;

/// Wake-latency probe: a waiter blocks on the event count (parked or
/// yield-polling), the main thread advances it and times how long until the
/// waiter acknowledges. The handshake is explicit — the waiter samples its
/// observed version *before* publishing "armed", so the waker can never
/// advance past a version the waiter has not yet latched.
fn wake_latency(name: &str, parked: bool, rounds: u32, records: &mut Vec<Record>) -> f64 {
    let ec = Arc::new(EventCount::new());
    // 0 = idle, 1 = go (waker→waiter), 2 = armed (waiter→waker),
    // 3 = woken-ack (waiter→waker), 4 = quit.
    let state = Arc::new(AtomicU32::new(0));
    let waiter = {
        let ec = Arc::clone(&ec);
        let state = Arc::clone(&state);
        std::thread::spawn(move || loop {
            match state.load(Ordering::SeqCst) {
                4 => return,
                1 => {
                    let observed = ec.version();
                    state.store(2, Ordering::SeqCst);
                    if parked {
                        ec.wait_while_eq(observed, None);
                    } else {
                        while ec.version() == observed {
                            std::thread::yield_now();
                        }
                    }
                    state.store(3, Ordering::SeqCst);
                }
                _ => std::thread::yield_now(),
            }
        })
    };
    let mut samples = Vec::with_capacity(rounds as usize);
    let start = Instant::now();
    for _ in 0..rounds {
        state.store(1, Ordering::SeqCst);
        while state.load(Ordering::SeqCst) != 2 {
            std::thread::yield_now();
        }
        if parked {
            // Strengthen the handshake: wait until the waiter is accounted
            // in the waiter count, i.e. provably inside the futex path.
            while ec.waiters() == 0 {
                std::thread::yield_now();
            }
        }
        let t0 = Instant::now();
        ec.advance();
        // Yield while awaiting the ack: on a single core a spinning waker
        // would hog the timeslice the woken waiter needs, and the probe
        // would measure preemption granularity instead of wake latency.
        while state.load(Ordering::SeqCst) != 3 {
            std::thread::yield_now();
        }
        samples.push(t0.elapsed().as_nanos() as f64);
        state.store(0, Ordering::SeqCst);
    }
    let wall = start.elapsed().as_secs_f64();
    state.store(4, Ordering::SeqCst);
    waiter.join().unwrap();
    let med = median(&mut samples);
    println!(
        "{:>14}/1  {name:>12}  {med:>10.0} ns wake latency (median of {rounds})",
        "wake_latency"
    );
    records.push(Record {
        name: format!("wake_latency/1/{name}"),
        threads: 1,
        ops_per_s: rounds as f64 / wall,
        ns_per_op: Some(med),
        cpu_util: None,
        victim_ops_per_s: None,
        ctxt_per_op: None,
        wasted_per_op: None,
        bytes_per_op: None,
        wall_s: wall,
        ..Record::default()
    });
    med
}

/// Quiet-advancer probe: advancing with no waiters must never issue a wake
/// syscall (the waiter bit is clear). Returns wasted wakes per advance.
fn wasted_quiet(advances: u64, records: &mut Vec<Record>) -> f64 {
    let ec = EventCount::new();
    let mut issued = 0u64;
    let mut wasted = 0u64;
    let start = Instant::now();
    for _ in 0..advances {
        let adv = ec.advance();
        if adv.wake_issued {
            issued += 1;
            if adv.woken == 0 {
                wasted += 1;
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let per_op = wasted as f64 / advances as f64;
    println!(
        "{:>14}/1  {:>12}  {:>12.0} advances/s  {issued} wakes issued, {wasted} wasted",
        "wasted_wakeups",
        "quiet",
        advances as f64 / wall
    );
    records.push(Record {
        name: "wasted_wakeups/1/quiet".into(),
        threads: 1,
        ops_per_s: advances as f64 / wall,
        ns_per_op: None,
        cpu_util: None,
        victim_ops_per_s: None,
        ctxt_per_op: None,
        wasted_per_op: Some(per_op),
        bytes_per_op: None,
        wall_s: wall,
        ..Record::default()
    });
    per_op
}

/// Churn probe: waiters cycle short bounded waits while the main thread
/// advances; wakes that release nobody (the waiter left on its deadline in
/// the same instant) are the wasted fraction the waiter bit design trades
/// against a tracking structure. Returns wasted wakes per advance.
fn wasted_churn(waiters: usize, advances: u64, records: &mut Vec<Record>) -> f64 {
    let ec = Arc::new(EventCount::new());
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..waiters)
        .map(|_| {
            let ec = Arc::clone(&ec);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let observed = ec.version();
                    ec.wait_while_eq(observed, Some(Instant::now() + Duration::from_micros(200)));
                }
            })
        })
        .collect();
    let mut issued = 0u64;
    let mut wasted = 0u64;
    let mut woken = 0u64;
    let start = Instant::now();
    for i in 0..advances {
        let adv = ec.advance();
        if adv.wake_issued {
            issued += 1;
            woken += adv.woken as u64;
            if adv.woken == 0 {
                wasted += 1;
            }
        }
        if i % 64 == 0 {
            // Let waiters re-arm so the probe exercises real parking.
            std::thread::sleep(Duration::from_micros(20));
        }
    }
    let wall = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    // Release any waiter parked on the final version.
    while handles.iter().any(|h| !h.is_finished()) {
        ec.advance();
        std::thread::yield_now();
    }
    for h in handles {
        h.join().unwrap();
    }
    let per_op = wasted as f64 / advances as f64;
    println!(
        "{:>14}/{waiters}  {:>12}  {:>12.0} advances/s  {issued} wakes issued, {woken} woken, \
         {wasted} wasted",
        "wasted_wakeups",
        "churn",
        advances as f64 / wall
    );
    records.push(Record {
        name: format!("wasted_wakeups/{waiters}/churn"),
        threads: waiters,
        ops_per_s: advances as f64 / wall,
        ns_per_op: None,
        cpu_util: None,
        victim_ops_per_s: None,
        ctxt_per_op: None,
        wasted_per_op: Some(per_op),
        bytes_per_op: None,
        wall_s: wall,
        ..Record::default()
    });
    per_op
}

/// Serializer-convoy outcome (median-of-`repeats` by throughput).
struct ConvoyOutcome {
    commits_per_s: f64,
    ctxt_per_commit: Option<f64>,
    cpu_util: Option<f64>,
    wait_stats: SerializerWaitStats,
}

/// One repeat: (commit/s, cpu, wall, cs/commit, wait stats).
type ConvoyRun = (f64, Option<f64>, f64, Option<f64>, SerializerWaitStats);

/// Overloaded serializer convoy: write-heavy rbtree, `Serializer`
/// scheduler, victims waiting parked or yield-polling. Fresh runtime +
/// workload per repeat; the median run (by throughput) is reported.
fn serializer_convoy(
    name: &str,
    wait: SerialWait,
    threads: usize,
    repeats: usize,
    opts: &BenchOpts,
    records: &mut Vec<Record>,
) -> ConvoyOutcome {
    let mut runs: Vec<ConvoyRun> = (0..repeats)
        .map(|_| {
            let serializer = Arc::new(Serializer::new(SerializerConfig {
                wait,
                ..SerializerConfig::default()
            }));
            let rt = TmRuntime::builder()
                .wait_policy(WaitPolicy::Preemptive)
                .scheduler_arc(Arc::clone(&serializer) as _)
                .build();
            let workload: Arc<dyn TxWorkload> = Arc::new(RbTreeWorkload::new(&rt, 16, 100));
            let config = opts.run_config(threads);
            let (outcome, wall, cpu, switches) =
                with_cpu_and_switches(|| run_throughput(&rt, &workload, &config));
            let ctxt_per_commit = switches
                .filter(|_| outcome.commits > 0)
                .map(|s| s as f64 / outcome.commits as f64);
            (
                outcome.throughput(),
                cpu,
                wall,
                ctxt_per_commit,
                serializer.wait_stats(),
            )
        })
        .collect();
    runs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let (commits_per_s, cpu, wall, ctxt_per_commit, wait_stats) = runs[runs.len() / 2];
    let cpu_str = cpu.map_or("     n/a".into(), |c| format!("{c:>5.2} cpu"));
    let cs_str = ctxt_per_commit.map_or("     n/a".into(), |c| format!("{c:>8.4} cs/commit"));
    println!(
        "{:>14}/{threads:<2} {name:>12}  {commits_per_s:>10.0} commit/s  {cpu_str}  {cs_str}  \
         (waits: {} parked, {} advanced, {} timed out, {} absent, {} yield-polls)",
        "ser_convoy",
        wait_stats.parked_waits,
        wait_stats.advanced,
        wait_stats.timed_out,
        wait_stats.absent_skips,
        wait_stats.yield_polls,
    );
    records.push(Record {
        name: format!("serializer_convoy/{threads}/{name}"),
        threads,
        ops_per_s: commits_per_s,
        ns_per_op: None,
        cpu_util: cpu,
        victim_ops_per_s: None,
        ctxt_per_op: ctxt_per_commit,
        wasted_per_op: None,
        bytes_per_op: None,
        wall_s: wall,
        ..Record::default()
    });
    ConvoyOutcome {
        commits_per_s,
        ctxt_per_commit,
        cpu_util: cpu,
        wait_stats,
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let mut records = Vec::new();

    println!("# bench_sched — parked epoch futex vs yield-poll Serializer baseline");
    println!("# wake latency (EventCount, 1 waiter × 1 waker)");
    let rounds = if opts.quick { 300 } else { 1500 };
    let parked_lat = wake_latency("parked", true, rounds, &mut records);
    let poll_lat = wake_latency("yield_poll", false, rounds, &mut records);

    println!("# wasted wakeups (wake syscalls that released nobody)");
    let advances = if opts.quick { 200_000 } else { 1_000_000 };
    let quiet_wasted = wasted_quiet(advances, &mut records);
    let churn_advances = if opts.quick { 20_000 } else { 100_000 };
    wasted_churn(2, churn_advances, &mut records);

    println!("# serializer convoys (write-heavy rbtree, threads >> cores)");
    let sweep: &[usize] = &[2, 8, 32];
    let repeats = if opts.quick { 3 } else { 5 };
    let mut pairs = Vec::new();
    for &threads in sweep {
        let poll = serializer_convoy(
            "yield_poll",
            SerialWait::SpinYield,
            threads,
            repeats,
            &opts,
            &mut records,
        );
        let parked = serializer_convoy(
            "parked",
            SerialWait::Parked,
            threads,
            repeats,
            &opts,
            &mut records,
        );
        pairs.push((threads, poll, parked));
    }

    // Qualitative claims (see DESIGN.md §5.3 for the shape grammar).
    shape(
        "quiet advances issue zero wasted wakeups (waiter bit keeps them syscall-free)",
        quiet_wasted == 0.0,
    );
    shape(
        "parked wake latency beats a yield-poll round trip or stays within 4× of it",
        parked_lat.is_finite() && poll_lat.is_finite() && parked_lat <= 4.0 * poll_lat,
    );
    for (threads, poll, parked) in &pairs {
        shape(
            &format!(
                "serializer convoy ({threads} threads): parked victims never yield-poll \
                 (wait-op counter)"
            ),
            parked.wait_stats.yield_polls == 0,
        );
        if *threads < 8 {
            continue;
        }
        shape(
            &format!(
                "serializer convoy ({threads} threads): parked commit throughput no worse \
                 (≥ 0.8× yield-poll)"
            ),
            parked.commits_per_s >= 0.8 * poll.commits_per_s,
        );
        if let (Some(p), Some(y)) = (parked.ctxt_per_commit, poll.ctxt_per_commit) {
            shape(
                &format!(
                    "serializer convoy ({threads} threads): parked pays a lower scheduler tax \
                     (context switches per commit)"
                ),
                p < y,
            );
        }
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores > 1 {
            if let (Some(p), Some(y)) = (parked.cpu_util, poll.cpu_util) {
                shape(
                    &format!(
                        "serializer convoy ({threads} threads): parked burns less CPU than \
                         yield-poll"
                    ),
                    p < y,
                );
            }
        }
    }

    write_json("BENCH_sched.json", "sched", opts.quick, &records);
}
