//! Figure 6: speedup of Shrink-SwissTM over base SwissTM on the ten STAMP
//! configurations, underloaded (2/4/8 threads) and overloaded (16/32/64).

use shrink_bench::figures::{stamp_figure, stamp_summary};
use shrink_bench::BenchOpts;
use shrink_stm::{BackendKind, WaitPolicy};

fn main() {
    let opts = BenchOpts::from_args();
    let rows = stamp_figure("fig6", BackendKind::Swiss, WaitPolicy::Preemptive, &opts);
    stamp_summary(&rows, 16);
}
