//! TVar read-path micro benchmarks: the perf ledger behind `BENCH_read.json`.
//!
//! The ROADMAP's read-path numbers lived only in the Criterion suite
//! (`benches/micro.rs`, `read_path/*`), outside the perf-trajectory ledger
//! scheme; this binary makes them a first-class `BENCH_*.json` like the
//! lock and scheduler ledgers, so future read-path PRs can quote
//! before/after from CI artifacts.
//!
//! Probes (each median-of-5 windows):
//!
//! 1. `snapshot/*` — the raw [`TVar::snapshot`] cost on both storage paths:
//!    inline seqlock (dropless ≤ 32 B payloads) vs. epoch-pinned boxed
//!    (DESIGN.md §7), uncontended and with a background writer churning
//!    the variable;
//! 2. `tx_read/*` — one-read transactions, i.e. the orec
//!    snapshot/validate protocol stacked on top of the same value loads;
//! 3. `tx_scan32/*` — a 32-read transaction, amortizing per-transaction
//!    setup to expose the per-read marginal cost.
//!
//! Results print as a table and are written to `BENCH_read.json`
//! (regenerated and uploaded by CI's `bench-smoke` job alongside
//! `BENCH_locks.json`, `BENCH_sched.json` and `BENCH_retry.json`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use shrink_bench::perf::{median, write_json, Record};
use shrink_bench::{shape, BenchOpts};
use shrink_stm::{TVar, TmRuntime};

/// Times `op` for `iters` iterations per window over `windows` windows and
/// records the median ns/op. Returns the median.
fn probe(
    name: &str,
    iters: u64,
    windows: usize,
    records: &mut Vec<Record>,
    mut op: impl FnMut() -> u64,
) -> f64 {
    let mut samples = Vec::with_capacity(windows);
    let started = Instant::now();
    let mut sink = 0u64;
    for _ in 0..windows {
        let t0 = Instant::now();
        for _ in 0..iters {
            sink = sink.wrapping_add(op());
        }
        samples.push(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    std::hint::black_box(sink);
    let wall = started.elapsed().as_secs_f64();
    let med = median(&mut samples);
    println!("{name:>28}  {med:>9.1} ns/op  (median of {windows} windows × {iters} iters)");
    records.push(Record {
        name: name.into(),
        threads: 1,
        ops_per_s: 1e9 / med,
        ns_per_op: Some(med),
        cpu_util: None,
        victim_ops_per_s: None,
        ctxt_per_op: None,
        wasted_per_op: None,
        wall_s: wall,
    });
    med
}

/// Spawns a writer churning `f` until the returned guard is dropped.
struct Churn {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Churn {
    fn spawn(mut f: impl FnMut() + Send + 'static) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    f();
                }
            })
        };
        Churn {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Churn {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            h.join().expect("churn writer panicked");
        }
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let iters: u64 = if opts.quick { 200_000 } else { 1_000_000 };
    let tx_iters: u64 = if opts.quick { 50_000 } else { 200_000 };
    let windows = 5;
    let mut records = Vec::new();

    println!("# bench_read — TVar read-path ledger (inline seqlock vs boxed epoch path)");

    // Raw snapshots, uncontended.
    let inline_var = TVar::new(0u64);
    assert!(inline_var.uses_inline_storage());
    let boxed_var = TVar::new(Arc::new(0u64));
    assert!(!boxed_var.uses_inline_storage());
    let inline_ns = probe(
        "snapshot/1/inline_u64",
        iters,
        windows,
        &mut records,
        || inline_var.snapshot(),
    );
    let boxed_ns = probe("snapshot/1/boxed_arc", iters, windows, &mut records, || {
        *boxed_var.snapshot()
    });

    // Raw snapshots with a committing writer churning the same variable.
    let contended_inline = {
        let var = TVar::new(0u64);
        let writer = {
            let var = var.clone();
            let rt = TmRuntime::new();
            let mut i = 0u64;
            move || {
                i += 1;
                rt.run(|tx| tx.write(&var, i));
            }
        };
        let _churn = Churn::spawn(writer);
        probe(
            "snapshot_contended/2/inline",
            iters / 4,
            windows,
            &mut records,
            || var.snapshot(),
        )
    };
    let contended_boxed = {
        let var = TVar::new(Arc::new(0u64));
        let writer = {
            let var = var.clone();
            let rt = TmRuntime::new();
            let mut i = 0u64;
            move || {
                i += 1;
                rt.run(|tx| tx.write(&var, Arc::new(i)));
            }
        };
        let _churn = Churn::spawn(writer);
        probe(
            "snapshot_contended/2/boxed",
            iters / 4,
            windows,
            &mut records,
            || *var.snapshot(),
        )
    };

    // Transactional reads: the orec protocol stacked on the value load.
    let rt = TmRuntime::new();
    let tx_read_ns = probe(
        "tx_read/1/inline_u64",
        tx_iters,
        windows,
        &mut records,
        || rt.run(|tx| tx.read(&inline_var)),
    );
    let vars: Vec<TVar<u64>> = (0..32).map(TVar::new).collect();
    let scan_ns = probe(
        "tx_scan32/1/inline_u64",
        tx_iters / 8,
        windows,
        &mut records,
        || {
            rt.run(|tx| {
                let mut sum = 0;
                for var in &vars {
                    sum += tx.read(var)?;
                }
                Ok(sum)
            })
        },
    );

    // Qualitative claims (see DESIGN.md §5.3 for the shape grammar).
    shape(
        "inline seqlock snapshot is no slower than the boxed epoch path",
        inline_ns <= boxed_ns,
    );
    shape(
        "uncontended snapshots stay under 1 µs on either path",
        inline_ns < 1_000.0 && boxed_ns < 1_000.0,
    );
    shape(
        "writer churn costs either path less than 100× its quiet latency",
        contended_inline < 100.0 * inline_ns.max(1.0)
            && contended_boxed < 100.0 * boxed_ns.max(1.0),
    );
    shape(
        "a transactional read costs more than a raw snapshot (orec protocol is not free)",
        tx_read_ns > inline_ns,
    );
    shape(
        "per-read marginal cost in a 32-read scan undercuts a one-read transaction",
        scan_ns / 32.0 < tx_read_ns,
    );

    write_json("BENCH_read.json", "read", opts.quick, &records);
}
