//! TVar read-path micro benchmarks: the perf ledger behind `BENCH_read.json`.
//!
//! The ROADMAP's read-path numbers lived only in the Criterion suite
//! (`benches/micro.rs`, `read_path/*`), outside the perf-trajectory ledger
//! scheme; this binary makes them a first-class `BENCH_*.json` like the
//! lock and scheduler ledgers, so future read-path PRs can quote
//! before/after from CI artifacts.
//!
//! Probes (each median-of-5 windows):
//!
//! 1. `snapshot/*` — the raw [`TVar::snapshot`] cost on both storage paths:
//!    inline seqlock (dropless ≤ 32 B payloads) vs. epoch-pinned boxed
//!    (DESIGN.md §7), uncontended and with a background writer churning
//!    the variable;
//! 2. `tx_read/*` — one-read transactions, i.e. the orec
//!    snapshot/validate protocol stacked on top of the same value loads;
//! 3. `tx_scan32/*` — a 32-read transaction, amortizing per-transaction
//!    setup to expose the per-read marginal cost;
//! 4. `ro_read/*`, `ro_scan32/*` — the same reads on the lock-free
//!    read-only path ([`TmRuntime::read_only`]): no orec writes, no commit
//!    ticket, no scheduler bookkeeping (DESIGN.md §10);
//! 5. `scan32_threads/N/{ro,tx}` — aggregate 32-read scan throughput at
//!    1, 2 and 4 threads, read-only vs read-write, the ledger cell behind
//!    the claim that the read-only path never loses to full transactions.
//!
//! Results print as a table and are written to `BENCH_read.json`
//! (regenerated and uploaded by CI's `bench-smoke` job alongside
//! `BENCH_locks.json`, `BENCH_sched.json` and `BENCH_retry.json`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use shrink_bench::perf::{median, write_json, Record};
use shrink_bench::{shape, BenchOpts};
use shrink_stm::{TVar, TmRuntime};

/// Times `op` for `iters` iterations per window over `windows` windows and
/// records the median ns/op. Returns the median.
fn probe(
    name: &str,
    iters: u64,
    windows: usize,
    records: &mut Vec<Record>,
    mut op: impl FnMut() -> u64,
) -> f64 {
    let mut samples = Vec::with_capacity(windows);
    let started = Instant::now();
    let mut sink = 0u64;
    for _ in 0..windows {
        let t0 = Instant::now();
        for _ in 0..iters {
            sink = sink.wrapping_add(op());
        }
        samples.push(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    std::hint::black_box(sink);
    let wall = started.elapsed().as_secs_f64();
    let med = median(&mut samples);
    println!("{name:>28}  {med:>9.1} ns/op  (median of {windows} windows × {iters} iters)");
    records.push(Record {
        name: name.into(),
        threads: 1,
        ops_per_s: 1e9 / med,
        ns_per_op: Some(med),
        cpu_util: None,
        victim_ops_per_s: None,
        ctxt_per_op: None,
        wasted_per_op: None,
        bytes_per_op: None,
        wall_s: wall,
        ..Record::default()
    });
    med
}

/// Spawns a writer churning `f` until the returned guard is dropped.
struct Churn {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Churn {
    fn spawn(mut f: impl FnMut() + Send + 'static) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    f();
                }
            })
        };
        Churn {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Churn {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            h.join().expect("churn writer panicked");
        }
    }
}

/// Shape of one `scan_cell` run: worker count, per-worker scan quota,
/// timing windows, and which read path to exercise.
struct ScanShape {
    threads: usize,
    per_thread: u64,
    windows: usize,
    read_only: bool,
}

/// Aggregate throughput (ops/s, median over the shape's windows) of the
/// shape's workers each running its quota of 32-read scans over `vars`, on
/// the read-only or the read-write path.
fn scan_cell(
    name: &str,
    rt: &TmRuntime,
    vars: &Arc<Vec<TVar<u64>>>,
    shape: &ScanShape,
    records: &mut Vec<Record>,
) -> f64 {
    let &ScanShape {
        threads,
        per_thread,
        windows,
        read_only,
    } = shape;
    let started = Instant::now();
    let mut samples = Vec::with_capacity(windows);
    for _ in 0..windows {
        let barrier = Arc::new(std::sync::Barrier::new(threads + 1));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let rt = rt.clone();
                let vars = Arc::clone(vars);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut sink = 0u64;
                    barrier.wait();
                    for _ in 0..per_thread {
                        sink = sink.wrapping_add(if read_only {
                            rt.read_only(|tx| {
                                let mut sum = 0u64;
                                for var in vars.iter() {
                                    sum = sum.wrapping_add(tx.read(var)?);
                                }
                                Ok(sum)
                            })
                        } else {
                            rt.run(|tx| {
                                let mut sum = 0u64;
                                for var in vars.iter() {
                                    sum = sum.wrapping_add(tx.read(var)?);
                                }
                                Ok(sum)
                            })
                        });
                    }
                    std::hint::black_box(sink);
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        for h in handles {
            h.join().expect("scan worker panicked");
        }
        let wall = t0.elapsed().as_secs_f64();
        samples.push((threads as u64 * per_thread) as f64 / wall);
    }
    let med = median(&mut samples);
    println!("{name:>28}  {med:>12.0} scans/s  (median of {windows} windows, {threads} threads)");
    records.push(Record {
        name: name.into(),
        threads,
        ops_per_s: med,
        ns_per_op: Some(1e9 / med),
        cpu_util: None,
        victim_ops_per_s: None,
        ctxt_per_op: None,
        wasted_per_op: None,
        bytes_per_op: None,
        wall_s: started.elapsed().as_secs_f64(),
        ..Record::default()
    });
    med
}

/// Pulls `ns_per_op` for `cell` out of a ledger previously written by
/// [`write_json`] (hand-rolled line scan: the ledger scheme must not
/// depend on a vendored serde).
fn baseline_ns_per_op(json: &str, cell: &str) -> Option<f64> {
    let marker = format!("\"name\": \"{cell}\"");
    let row = json.lines().find(|l| l.contains(&marker))?;
    let rest = row.split("\"ns_per_op\": ").nth(1)?;
    rest.split([',', '}']).next()?.trim().parse().ok()
}

fn main() {
    let opts = BenchOpts::from_args();
    let iters: u64 = if opts.quick { 200_000 } else { 1_000_000 };
    let tx_iters: u64 = if opts.quick { 50_000 } else { 200_000 };
    let windows = 5;
    let mut records = Vec::new();

    println!("# bench_read — TVar read-path ledger (inline seqlock vs boxed epoch path)");

    // Raw snapshots, uncontended.
    let inline_var = TVar::new(0u64);
    assert!(inline_var.uses_inline_storage());
    let boxed_var = TVar::new(Arc::new(0u64));
    assert!(!boxed_var.uses_inline_storage());
    let inline_ns = probe(
        "snapshot/1/inline_u64",
        iters,
        windows,
        &mut records,
        || inline_var.snapshot(),
    );
    let boxed_ns = probe("snapshot/1/boxed_arc", iters, windows, &mut records, || {
        *boxed_var.snapshot()
    });

    // Raw snapshots with a committing writer churning the same variable.
    let contended_inline = {
        let var = TVar::new(0u64);
        let writer = {
            let var = var.clone();
            let rt = TmRuntime::new();
            let mut i = 0u64;
            move || {
                i += 1;
                rt.run(|tx| tx.write(&var, i));
            }
        };
        let _churn = Churn::spawn(writer);
        probe(
            "snapshot_contended/2/inline",
            iters / 4,
            windows,
            &mut records,
            || var.snapshot(),
        )
    };
    let contended_boxed = {
        let var = TVar::new(Arc::new(0u64));
        let writer = {
            let var = var.clone();
            let rt = TmRuntime::new();
            let mut i = 0u64;
            move || {
                i += 1;
                rt.run(|tx| tx.write(&var, Arc::new(i)));
            }
        };
        let _churn = Churn::spawn(writer);
        probe(
            "snapshot_contended/2/boxed",
            iters / 4,
            windows,
            &mut records,
            || *var.snapshot(),
        )
    };

    // Transactional reads: the orec protocol stacked on the value load.
    let rt = TmRuntime::new();
    let tx_read_ns = probe(
        "tx_read/1/inline_u64",
        tx_iters,
        windows,
        &mut records,
        || rt.run(|tx| tx.read(&inline_var)),
    );
    let vars: Vec<TVar<u64>> = (0..32).map(TVar::new).collect();
    let scan_ns = probe(
        "tx_scan32/1/inline_u64",
        tx_iters / 8,
        windows,
        &mut records,
        || {
            rt.run(|tx| {
                let mut sum = 0;
                for var in &vars {
                    sum += tx.read(var)?;
                }
                Ok(sum)
            })
        },
    );

    // Lock-free read-only path: same reads, no orec protocol on top.
    let ro_read_ns = probe(
        "ro_read/1/inline_u64",
        tx_iters,
        windows,
        &mut records,
        || rt.read_only(|tx| tx.read(&inline_var)),
    );
    let ro_scan_ns = probe(
        "ro_scan32/1/inline_u64",
        tx_iters / 8,
        windows,
        &mut records,
        || {
            rt.read_only(|tx| {
                let mut sum = 0;
                for var in &vars {
                    sum += tx.read(var)?;
                }
                Ok(sum)
            })
        },
    );

    // Aggregate scan throughput, read-only vs read-write, across thread
    // counts. A fresh runtime isolates the orec-footprint accounting.
    let scan_rt = TmRuntime::new();
    let scan_vars = Arc::new((0..32u64).map(TVar::new).collect::<Vec<_>>());
    let per_thread: u64 = if opts.quick { 10_000 } else { 40_000 };
    let mut ro_by_threads = Vec::new();
    let mut tx_by_threads = Vec::new();
    let mut ro_zero_orecs = true;
    let mut ro_zero_commit_tickets = true;
    let mut ro_committed = true;
    for &threads in &[1usize, 2, 4] {
        let before = scan_rt.stats();
        let ro = scan_cell(
            &format!("scan32_threads/{threads}/ro"),
            &scan_rt,
            &scan_vars,
            &ScanShape {
                threads,
                per_thread,
                windows,
                read_only: true,
            },
            &mut records,
        );
        let after = scan_rt.stats();
        ro_zero_orecs &= after.orec_acquires == before.orec_acquires;
        ro_zero_commit_tickets &= after.commits == before.commits;
        ro_committed &= after.ro_commits > before.ro_commits;
        let tx = scan_cell(
            &format!("scan32_threads/{threads}/tx"),
            &scan_rt,
            &scan_vars,
            &ScanShape {
                threads,
                per_thread,
                windows,
                read_only: false,
            },
            &mut records,
        );
        ro_by_threads.push((threads, ro));
        tx_by_threads.push((threads, tx));
    }

    // Qualitative claims (see DESIGN.md §5.3 for the shape grammar).
    shape(
        "inline seqlock snapshot is no slower than the boxed epoch path",
        inline_ns <= boxed_ns,
    );
    shape(
        "uncontended snapshots stay under 1 µs on either path",
        inline_ns < 1_000.0 && boxed_ns < 1_000.0,
    );
    shape(
        "writer churn costs either path less than 100× its quiet latency",
        contended_inline < 100.0 * inline_ns.max(1.0)
            && contended_boxed < 100.0 * boxed_ns.max(1.0),
    );
    shape(
        "a transactional read costs more than a raw snapshot (orec protocol is not free)",
        tx_read_ns > inline_ns,
    );
    shape(
        "per-read marginal cost in a 32-read scan undercuts a one-read transaction",
        scan_ns / 32.0 < tx_read_ns,
    );
    shape(
        "a lock-free read-only read undercuts the full transactional read",
        ro_read_ns < tx_read_ns,
    );
    shape(
        "a read-only 32-scan is no slower than its read-write twin",
        ro_scan_ns <= scan_ns,
    );
    shape(
        "read-only scan throughput matches or beats read-write at every thread count",
        ro_by_threads
            .iter()
            .zip(&tx_by_threads)
            .all(|((_, ro), (_, tx))| ro >= tx),
    );
    // Robust on a small box: aggregate throughput must not collapse as
    // threads are added, even if it cannot scale past the core count.
    let ro_single = ro_by_threads[0].1;
    shape(
        "adding reader threads never collapses aggregate read-only throughput",
        ro_by_threads.iter().all(|(_, ro)| *ro >= 0.4 * ro_single),
    );
    // Deterministic footprint claims, from the stats ledger rather than
    // timing: the read-only cells took no locks and no commit tickets.
    shape(
        "read-only scan cells perform zero orec acquisitions",
        ro_zero_orecs,
    );
    shape(
        "read-only scan cells take zero read-write commit tickets",
        ro_zero_commit_tickets && ro_committed,
    );

    // Zero-overhead proof for the `faults` feature plumbing: with the
    // feature off every failpoint compiles to a const `false`, so the hot
    // read cells must stay within noise of the committed baseline ledger.
    // CI's bench-smoke job saves the checked-in BENCH_read.json before
    // regenerating and passes its path via `BENCH_READ_BASELINE`; local
    // runs without the variable skip the check.
    if let Ok(path) = std::env::var("BENCH_READ_BASELINE") {
        let cells = [
            ("snapshot/1/inline_u64", inline_ns),
            ("tx_read/1/inline_u64", tx_read_ns),
            ("ro_read/1/inline_u64", ro_read_ns),
        ];
        match std::fs::read_to_string(&path) {
            Ok(baseline) => {
                let mut all_found = true;
                let mut within = true;
                for (cell, now) in cells {
                    match baseline_ns_per_op(&baseline, cell) {
                        Some(then) => {
                            // Generous band — the baseline may come from a
                            // different host and window size; only a
                            // structural regression (a failpoint that
                            // stopped compiling out) breaks it.
                            within &= now <= then * 3.0 + 50.0;
                            println!("# baseline {cell}: {then:.1} ns then, {now:.1} ns now");
                        }
                        None => all_found = false,
                    }
                }
                shape(
                    "read cells stay within noise of the committed baseline (failpoints cost nothing)",
                    all_found && within,
                );
            }
            Err(err) => {
                println!("# baseline {path} unreadable ({err}); skipping the overhead shape");
            }
        }
    }

    write_json("BENCH_read.json", "read", opts.quick, &records);
}
