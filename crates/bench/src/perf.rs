//! Shared machinery of the perf-trajectory ledgers (`BENCH_*.json`).
//!
//! The lock (`bench_locks`) and scheduler (`bench_sched`) micro benchmarks
//! report the same record shape — throughput plus the *CPU-burn* signals
//! that discriminate parked from polling waiters on any core count — and
//! write the same hand-rolled JSON (the ledger must not depend on a serde
//! vendored stub). This module holds the common pieces:
//!
//! * [`cpu_seconds`] / [`context_switches`] — `/proc` readers for process
//!   CPU time and per-thread context switches (the *scheduler tax*: every
//!   yield-poll round is a voluntary switch, visible even on one saturated
//!   core where `cpu_util` reads 1.0 either way);
//! * [`with_cpu`] / [`with_cpu_and_switches`] — measurement brackets;
//! * [`Record`] / [`write_json`] — one ledger row and the writer.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One measurement row of a perf ledger.
#[derive(Clone, Debug)]
pub struct Record {
    /// Probe name, `group/threads/variant` by convention.
    pub name: String,
    /// Worker threads involved.
    pub threads: usize,
    /// Operations (lock acquisitions, commits, wakes…) per second.
    pub ops_per_s: f64,
    /// Nanoseconds per operation (latency probes only).
    pub ns_per_op: Option<f64>,
    /// Process CPU seconds consumed per wall second during the window
    /// (utime+stime delta; `None` off-Linux). 1.0 = one core pegged.
    pub cpu_util: Option<f64>,
    /// Progress of a co-running plain compute thread (iterations/s), the
    /// core-count-independent CPU-burn signal: spinning waiters steal its
    /// quanta, parked waiters leave them to it (convoy probes only).
    pub victim_ops_per_s: Option<f64>,
    /// Context switches per operation — the scheduler tax.
    pub ctxt_per_op: Option<f64>,
    /// Wasted wakeups per operation: wake syscalls issued that released no
    /// thread (`bench_sched` epoch-futex probes only).
    pub wasted_per_op: Option<f64>,
    /// Resident memory per operation unit, bytes — e.g. RSS per blocked
    /// consumer in `bench_async`'s footprint probes (`None` elsewhere).
    pub bytes_per_op: Option<f64>,
    /// Wall-clock length of the measurement window, seconds.
    pub wall_s: f64,
}

/// Median of a sample set (sorts in place). `NaN` on an empty slice.
///
/// The ledger benches report medians rather than means so one
/// pathological window on an oversubscribed container cannot skew a row.
pub fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// utime+stime of this process, in seconds, from `/proc/self/stat`.
/// USER_HZ is 100 on every Linux configuration this repo targets.
pub fn cpu_seconds() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Fields after the parenthesized comm (which may contain spaces):
    // state ppid pgrp session tty_nr tpgid flags minflt cminflt majflt
    // cmajflt utime stime ...  → utime/stime are at indices 11/12.
    let after = &stat[stat.rfind(')')? + 2..];
    let fields: Vec<&str> = after.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some((utime + stime) as f64 / 100.0)
}

/// Resident set size of this process, in bytes, from `/proc/self/status`
/// (`VmRSS`). The footprint probes (`bench_async`) difference it around a
/// population of blocked waiters; note it counts touched pages only, so a
/// thread's 8 MiB stack shows up as just the few pages it dirtied.
pub fn resident_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Context switches (voluntary + involuntary) summed over every thread of
/// this process. Spin-then-yield waiting pays one voluntary switch per poll
/// round — the scheduler tax that stays visible even when a single core is
/// saturated either way. Threads that already exited are not counted, so
/// call this while workers are still alive.
pub fn context_switches() -> Option<u64> {
    let mut total = 0u64;
    for task in std::fs::read_dir("/proc/self/task").ok()? {
        let status = std::fs::read_to_string(task.ok()?.path().join("status")).ok()?;
        for line in status.lines() {
            if line.starts_with("voluntary_ctxt_switches")
                || line.starts_with("nonvoluntary_ctxt_switches")
            {
                total += line
                    .rsplit_once('\t')
                    .and_then(|(_, v)| v.trim().parse::<u64>().ok())
                    .unwrap_or(0);
            }
        }
    }
    Some(total)
}

/// Measures wall time and CPU burn around `f`: `(result, wall_s, cpu_util)`.
pub fn with_cpu<R>(f: impl FnOnce() -> R) -> (R, f64, Option<f64>) {
    let cpu_before = cpu_seconds();
    let start = Instant::now();
    let result = f();
    let wall = start.elapsed().as_secs_f64();
    let cpu = match (cpu_before, cpu_seconds()) {
        (Some(a), Some(b)) => Some(((b - a) / wall.max(1e-9)).max(0.0)),
        _ => None,
    };
    (result, wall, cpu)
}

/// Like [`with_cpu`], but also reports the context-switch delta. `f` joins
/// its own worker threads (whose counters disappear with them), so a
/// sampler thread polls `/proc/self/task` every 10 ms and the last total
/// observed while the workers were alive is used.
pub fn with_cpu_and_switches<R>(f: impl FnOnce() -> R) -> (R, f64, Option<f64>, Option<u64>) {
    let baseline = context_switches();
    let stop = Arc::new(AtomicBool::new(false));
    let last = Arc::new(AtomicU64::new(0));
    let sampler = {
        let stop = Arc::clone(&stop);
        let last = Arc::clone(&last);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if let Some(total) = context_switches() {
                    // Keep the maximum: a sample taken after `f` joined its
                    // workers no longer sees their counters and would
                    // otherwise collapse the delta to ~zero.
                    last.fetch_max(total, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };
    let (result, wall, cpu) = with_cpu(f);
    stop.store(true, Ordering::Relaxed);
    sampler.join().unwrap();
    let switches = baseline.map(|base| last.load(Ordering::Relaxed).saturating_sub(base));
    (result, wall, cpu, switches)
}

/// Writes a perf ledger. Hand-rolled JSON: the ledger must not depend on a
/// serde vendored stub.
///
/// # Panics
///
/// Panics if `path` cannot be written.
pub fn write_json(path: &str, bench: &str, quick: bool, records: &[Record]) {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.3}")
        } else {
            "null".into()
        }
    }
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"bench\": \"{bench}\",\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!(
        "  \"host\": {{\"cores\": {}, \"os\": \"{}\", \"arch\": \"{}\"}},\n",
        std::thread::available_parallelism().map_or(0, |n| n.get()),
        std::env::consts::OS,
        std::env::consts::ARCH
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"threads\": {}, \"ops_per_s\": {}, \"ns_per_op\": {}, \"cpu_util\": {}, \"victim_ops_per_s\": {}, \"ctxt_per_op\": {}, \"wasted_per_op\": {}, \"bytes_per_op\": {}, \"wall_s\": {}}}{}\n",
            r.name,
            r.threads,
            num(r.ops_per_s),
            r.ns_per_op.map_or("null".into(), num),
            r.cpu_util.map_or("null".into(), num),
            r.victim_ops_per_s.map_or("null".into(), num),
            r.ctxt_per_op.map_or("null".into(), |v| format!("{v:.6}")),
            r.wasted_per_op.map_or("null".into(), |v| format!("{v:.6}")),
            r.bytes_per_op.map_or("null".into(), |v| format!("{v:.1}")),
            num(r.wall_s),
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write perf ledger");
    println!("# ledger written to {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_and_switch_probes_work_on_this_host() {
        // The repo targets Linux containers; both probes must parse /proc.
        if cfg!(target_os = "linux") {
            assert!(cpu_seconds().is_some());
            assert!(context_switches().is_some());
        }
    }

    #[test]
    fn with_cpu_reports_positive_wall_time() {
        let (value, wall, _cpu) = with_cpu(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(value, 42);
        assert!(wall >= 0.005);
    }

    #[test]
    fn ledger_json_is_well_formed_enough() {
        let dir = std::env::temp_dir().join(format!("perf_ledger_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.json");
        let records = vec![Record {
            name: "probe/1/variant".into(),
            threads: 1,
            ops_per_s: 10.0,
            ns_per_op: Some(1.5),
            cpu_util: None,
            victim_ops_per_s: None,
            ctxt_per_op: Some(0.25),
            wasted_per_op: None,
            bytes_per_op: None,
            wall_s: 0.1,
        }];
        write_json(path.to_str().unwrap(), "test", true, &records);
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"bench\": \"test\""));
        assert!(body.contains("\"probe/1/variant\""));
        assert!(body.contains("\"ctxt_per_op\": 0.250000"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
