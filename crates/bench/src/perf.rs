//! Shared machinery of the perf-trajectory ledgers (`BENCH_*.json`).
//!
//! The lock (`bench_locks`) and scheduler (`bench_sched`) micro benchmarks
//! report the same record shape — throughput plus the *CPU-burn* signals
//! that discriminate parked from polling waiters on any core count — and
//! write the same hand-rolled JSON (the ledger must not depend on a serde
//! vendored stub). This module holds the common pieces:
//!
//! * [`cpu_seconds`] / [`context_switches`] — `/proc` readers for process
//!   CPU time and per-thread context switches (the *scheduler tax*: every
//!   yield-poll round is a voluntary switch, visible even on one saturated
//!   core where `cpu_util` reads 1.0 either way);
//! * [`with_cpu`] / [`with_cpu_and_switches`] — measurement brackets;
//! * [`LatencyHistogram`] — a fixed-bucket log-linear histogram for
//!   latency percentiles (p50/p99/p999): the open-loop service bench and
//!   the wake-latency probes report tails, not just means, because tail
//!   latency is where overload shows first;
//! * [`Record`] / [`write_json`] — one ledger row and the writer.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One measurement row of a perf ledger.
#[derive(Clone, Debug)]
pub struct Record {
    /// Probe name, `group/threads/variant` by convention.
    pub name: String,
    /// Worker threads involved.
    pub threads: usize,
    /// Operations (lock acquisitions, commits, wakes…) per second.
    pub ops_per_s: f64,
    /// Nanoseconds per operation (latency probes only).
    pub ns_per_op: Option<f64>,
    /// Process CPU seconds consumed per wall second during the window
    /// (utime+stime delta; `None` off-Linux). 1.0 = one core pegged.
    pub cpu_util: Option<f64>,
    /// Progress of a co-running plain compute thread (iterations/s), the
    /// core-count-independent CPU-burn signal: spinning waiters steal its
    /// quanta, parked waiters leave them to it (convoy probes only).
    pub victim_ops_per_s: Option<f64>,
    /// Context switches per operation — the scheduler tax.
    pub ctxt_per_op: Option<f64>,
    /// Wasted wakeups per operation: wake syscalls issued that released no
    /// thread (`bench_sched` epoch-futex probes only).
    pub wasted_per_op: Option<f64>,
    /// Resident memory per operation unit, bytes — e.g. RSS per blocked
    /// consumer in `bench_async`'s footprint probes (`None` elsewhere).
    pub bytes_per_op: Option<f64>,
    /// Median latency, nanoseconds (histogram probes only).
    pub p50_ns: Option<f64>,
    /// 99th-percentile latency, nanoseconds (histogram probes only).
    pub p99_ns: Option<f64>,
    /// 99.9th-percentile latency, nanoseconds (histogram probes only).
    pub p999_ns: Option<f64>,
    /// Wall-clock length of the measurement window, seconds.
    pub wall_s: f64,
}

impl Default for Record {
    /// An empty row: every optional signal absent, numerics zero. Ledger
    /// bins fill in what their probe measures and leave the rest with
    /// `..Record::default()`.
    fn default() -> Self {
        Record {
            name: String::new(),
            threads: 0,
            ops_per_s: 0.0,
            ns_per_op: None,
            cpu_util: None,
            victim_ops_per_s: None,
            ctxt_per_op: None,
            wasted_per_op: None,
            bytes_per_op: None,
            p50_ns: None,
            p99_ns: None,
            p999_ns: None,
            wall_s: 0.0,
        }
    }
}

/// Number of linear sub-buckets per power of two: 2⁴ = 16 gives ≤ 6.25%
/// relative quantization error, plenty under run-to-run noise.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Covered octaves above the linear head: values up to 2⁴⁰ ns (~18 min)
/// resolve; anything larger clamps into the last bucket.
const OCTAVES: usize = 40;
const BUCKETS: usize = (OCTAVES + 1) * SUB;

/// A fixed-bucket log-linear latency histogram (HdrHistogram-style):
/// constant memory, lock-free concurrent recording, percentile queries.
///
/// Values are nanoseconds. Buckets are linear (width 1 ns) up to 16 ns,
/// then 16 linear sub-buckets per power of two — so every recorded value
/// lands in a bucket whose width is at most 1/16 of its magnitude, which
/// bounds the relative error of any percentile report to ~6%. Recording is
/// one relaxed `fetch_add`; threads share a histogram without coordination
/// and [`merge`](LatencyHistogram::merge) combines per-worker histograms.
///
/// # Examples
///
/// ```
/// use shrink_bench::perf::LatencyHistogram;
///
/// let h = LatencyHistogram::new();
/// for ns in [100, 200, 300, 10_000] {
///     h.record(ns);
/// }
/// assert_eq!(h.count(), 4);
/// let p50 = h.percentile(50.0).unwrap();
/// assert!(p50 >= 150.0 && p50 <= 320.0);
/// assert!(h.percentile(99.9).unwrap() >= 9_000.0);
/// ```
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram. Allocates its full fixed bucket array (~5 KiB).
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    fn index(ns: u64) -> usize {
        if ns < SUB as u64 {
            return ns as usize;
        }
        let msb = 63 - ns.leading_zeros();
        let octave = (msb - SUB_BITS + 1).min(OCTAVES as u32);
        let shift = msb - SUB_BITS;
        let sub = ((ns >> shift) as usize) & (SUB - 1);
        (octave as usize * SUB + sub).min(BUCKETS - 1)
    }

    /// The inclusive upper bound of bucket `i` — what percentile queries
    /// report, so a reported quantile is never below the true one.
    fn bucket_high(i: usize) -> f64 {
        if i < SUB {
            return i as f64;
        }
        let octave = (i / SUB) as u32;
        let sub = (i % SUB) as u64;
        let shift = octave - 1;
        (((SUB as u64 + sub + 1) << shift) - 1) as f64
    }

    /// Records one latency sample, in nanoseconds.
    pub fn record(&self, ns: u64) {
        self.buckets[Self::index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records one latency sample given as a [`Duration`].
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The largest recorded sample, exact (not bucket-quantized), in
    /// nanoseconds. Zero when empty.
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// The latency at percentile `q` (e.g. `50.0`, `99.0`, `99.9`), in
    /// nanoseconds, or `None` when no samples were recorded.
    ///
    /// Reports the upper bound of the bucket holding the `⌈q·n⌉`-th sample
    /// (capped by the exact recorded maximum), so the report errs high by
    /// at most one bucket width — never optimistic about the tail.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(Self::bucket_high(i).min(self.max_ns() as f64));
            }
        }
        Some(self.max_ns() as f64)
    }

    /// Adds every sample of `other` into `self` (per-worker histograms are
    /// merged into one report; the exact max is carried over too).
    pub fn merge(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_ns
            .fetch_max(other.max_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Fills a [`Record`]'s `p50_ns`/`p99_ns`/`p999_ns` cells from this
    /// histogram (all `None` when empty).
    pub fn fill_record(&self, record: &mut Record) {
        record.p50_ns = self.percentile(50.0);
        record.p99_ns = self.percentile(99.0);
        record.p999_ns = self.percentile(99.9);
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .field("p50_ns", &self.percentile(50.0))
            .field("p99_ns", &self.percentile(99.0))
            .field("p999_ns", &self.percentile(99.9))
            .field("max_ns", &self.max_ns())
            .finish()
    }
}

/// Median of a sample set (sorts in place). `NaN` on an empty slice.
///
/// The ledger benches report medians rather than means so one
/// pathological window on an oversubscribed container cannot skew a row.
pub fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// utime+stime of this process, in seconds, from `/proc/self/stat`.
/// USER_HZ is 100 on every Linux configuration this repo targets.
pub fn cpu_seconds() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Fields after the parenthesized comm (which may contain spaces):
    // state ppid pgrp session tty_nr tpgid flags minflt cminflt majflt
    // cmajflt utime stime ...  → utime/stime are at indices 11/12.
    let after = &stat[stat.rfind(')')? + 2..];
    let fields: Vec<&str> = after.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some((utime + stime) as f64 / 100.0)
}

/// Resident set size of this process, in bytes, from `/proc/self/status`
/// (`VmRSS`). The footprint probes (`bench_async`) difference it around a
/// population of blocked waiters; note it counts touched pages only, so a
/// thread's 8 MiB stack shows up as just the few pages it dirtied.
pub fn resident_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Context switches (voluntary + involuntary) summed over every thread of
/// this process. Spin-then-yield waiting pays one voluntary switch per poll
/// round — the scheduler tax that stays visible even when a single core is
/// saturated either way. Threads that already exited are not counted, so
/// call this while workers are still alive.
pub fn context_switches() -> Option<u64> {
    let mut total = 0u64;
    for task in std::fs::read_dir("/proc/self/task").ok()? {
        let status = std::fs::read_to_string(task.ok()?.path().join("status")).ok()?;
        for line in status.lines() {
            if line.starts_with("voluntary_ctxt_switches")
                || line.starts_with("nonvoluntary_ctxt_switches")
            {
                total += line
                    .rsplit_once('\t')
                    .and_then(|(_, v)| v.trim().parse::<u64>().ok())
                    .unwrap_or(0);
            }
        }
    }
    Some(total)
}

/// Measures wall time and CPU burn around `f`: `(result, wall_s, cpu_util)`.
pub fn with_cpu<R>(f: impl FnOnce() -> R) -> (R, f64, Option<f64>) {
    let cpu_before = cpu_seconds();
    let start = Instant::now();
    let result = f();
    let wall = start.elapsed().as_secs_f64();
    let cpu = match (cpu_before, cpu_seconds()) {
        (Some(a), Some(b)) => Some(((b - a) / wall.max(1e-9)).max(0.0)),
        _ => None,
    };
    (result, wall, cpu)
}

/// Like [`with_cpu`], but also reports the context-switch delta. `f` joins
/// its own worker threads (whose counters disappear with them), so a
/// sampler thread polls `/proc/self/task` every 10 ms and the last total
/// observed while the workers were alive is used.
pub fn with_cpu_and_switches<R>(f: impl FnOnce() -> R) -> (R, f64, Option<f64>, Option<u64>) {
    let baseline = context_switches();
    let stop = Arc::new(AtomicBool::new(false));
    let last = Arc::new(AtomicU64::new(0));
    let sampler = {
        let stop = Arc::clone(&stop);
        let last = Arc::clone(&last);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if let Some(total) = context_switches() {
                    // Keep the maximum: a sample taken after `f` joined its
                    // workers no longer sees their counters and would
                    // otherwise collapse the delta to ~zero.
                    last.fetch_max(total, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };
    let (result, wall, cpu) = with_cpu(f);
    stop.store(true, Ordering::Relaxed);
    sampler.join().unwrap();
    let switches = baseline.map(|base| last.load(Ordering::Relaxed).saturating_sub(base));
    (result, wall, cpu, switches)
}

/// Writes a perf ledger. Hand-rolled JSON: the ledger must not depend on a
/// serde vendored stub.
///
/// # Panics
///
/// Panics if `path` cannot be written.
pub fn write_json(path: &str, bench: &str, quick: bool, records: &[Record]) {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.3}")
        } else {
            "null".into()
        }
    }
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"bench\": \"{bench}\",\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!(
        "  \"host\": {{\"cores\": {}, \"os\": \"{}\", \"arch\": \"{}\"}},\n",
        std::thread::available_parallelism().map_or(0, |n| n.get()),
        std::env::consts::OS,
        std::env::consts::ARCH
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"threads\": {}, \"ops_per_s\": {}, \"ns_per_op\": {}, \"cpu_util\": {}, \"victim_ops_per_s\": {}, \"ctxt_per_op\": {}, \"wasted_per_op\": {}, \"bytes_per_op\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"wall_s\": {}}}{}\n",
            r.name,
            r.threads,
            num(r.ops_per_s),
            r.ns_per_op.map_or("null".into(), num),
            r.cpu_util.map_or("null".into(), num),
            r.victim_ops_per_s.map_or("null".into(), num),
            r.ctxt_per_op.map_or("null".into(), |v| format!("{v:.6}")),
            r.wasted_per_op.map_or("null".into(), |v| format!("{v:.6}")),
            r.bytes_per_op.map_or("null".into(), |v| format!("{v:.1}")),
            r.p50_ns.map_or("null".into(), num),
            r.p99_ns.map_or("null".into(), num),
            r.p999_ns.map_or("null".into(), num),
            num(r.wall_s),
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write perf ledger");
    println!("# ledger written to {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_and_switch_probes_work_on_this_host() {
        // The repo targets Linux containers; both probes must parse /proc.
        if cfg!(target_os = "linux") {
            assert!(cpu_seconds().is_some());
            assert!(context_switches().is_some());
        }
    }

    #[test]
    fn with_cpu_reports_positive_wall_time() {
        let (value, wall, _cpu) = with_cpu(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(value, 42);
        assert!(wall >= 0.005);
    }

    #[test]
    fn ledger_json_is_well_formed_enough() {
        let dir = std::env::temp_dir().join(format!("perf_ledger_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.json");
        let records = vec![Record {
            name: "probe/1/variant".into(),
            threads: 1,
            ops_per_s: 10.0,
            ns_per_op: Some(1.5),
            ctxt_per_op: Some(0.25),
            p99_ns: Some(1234.0),
            wall_s: 0.1,
            ..Record::default()
        }];
        write_json(path.to_str().unwrap(), "test", true, &records);
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"bench\": \"test\""));
        assert!(body.contains("\"probe/1/variant\""));
        assert!(body.contains("\"ctxt_per_op\": 0.250000"));
        assert!(body.contains("\"p99_ns\": 1234.000"));
        assert!(body.contains("\"p50_ns\": null"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn histogram_percentiles_are_monotone_and_bucket_accurate() {
        let h = LatencyHistogram::new();
        // 10000 samples at 1 µs, 10 at 1 ms, 1 at 100 ms: a classic
        // bimodal-with-outlier latency profile.
        for _ in 0..10_000 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        h.record(100_000_000);
        assert_eq!(h.count(), 10_011);
        let p50 = h.percentile(50.0).unwrap();
        let p99 = h.percentile(99.0).unwrap();
        let p999 = h.percentile(99.9).unwrap();
        // ≤ 6.25% quantization error, always erring high.
        assert!((1_000.0..=1_070.0).contains(&p50), "p50 = {p50}");
        assert!((1_000.0..=1_070.0).contains(&p99), "p99 = {p99}");
        assert!((1_000_000.0..=1_070_000.0).contains(&p999), "p999 = {p999}");
        assert!(p50 <= p99 && p99 <= p999, "percentiles must be monotone");
        assert_eq!(h.max_ns(), 100_000_000, "max is exact, not quantized");
        assert_eq!(h.percentile(100.0), Some(100_000_000.0));
    }

    #[test]
    fn histogram_is_empty_safe_and_mergeable() {
        let a = LatencyHistogram::new();
        assert_eq!(a.percentile(50.0), None);
        let mut r = Record::default();
        a.fill_record(&mut r);
        assert_eq!(r.p50_ns, None);
        let b = LatencyHistogram::new();
        b.record(500);
        b.record(700);
        a.merge(&b);
        a.record(900);
        assert_eq!(a.count(), 3);
        let p50 = a.percentile(50.0).unwrap();
        assert!((700.0..=750.0).contains(&p50), "p50 = {p50}");
        a.fill_record(&mut r);
        assert!(r.p50_ns.is_some() && r.p99_ns.is_some() && r.p999_ns.is_some());
    }

    #[test]
    fn histogram_head_is_exact_and_durations_convert() {
        let h = LatencyHistogram::new();
        // The linear head (< 16 ns) is exact to the nanosecond.
        for ns in 0..16 {
            h.record(ns);
        }
        assert_eq!(h.percentile(100.0), Some(15.0));
        h.record_duration(Duration::from_micros(3));
        assert_eq!(h.max_ns(), 3_000);
    }
}
