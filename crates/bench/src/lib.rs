//! # shrink-bench — figure regeneration harness
//!
//! One binary per figure of the paper (see DESIGN.md §5 for the index),
//! plus Criterion micro-benchmarks. Binaries share the option parsing,
//! runtime construction and table formatting in this library.
//!
//! Every binary accepts:
//!
//! * `--quick` — CI-scale run (fewer thread counts, shorter windows);
//! * `--seconds <s>` — measurement window per cell (default 0.25);
//! * `--threads <a,b,c>` — override the thread sweep.
//!
//! Output is gnuplot-ready whitespace-separated series plus a `shape:`
//! trailer summarizing how the measured curves compare with the paper's
//! qualitative claims (who wins, where the crossover falls). Absolute
//! numbers are not expected to match the paper's 2009 testbed.

pub mod figures;
pub mod perf;

use std::sync::Arc;
use std::time::Duration;

use shrink_core::SchedulerKind;
use shrink_stm::{BackendKind, TmRuntime, WaitPolicy};
use shrink_workloads::harness::{run_throughput, RunConfig, RunOutcome, TxWorkload};

/// Command-line options shared by all figure binaries.
#[derive(Clone, Debug)]
pub struct BenchOpts {
    /// CI-scale run.
    pub quick: bool,
    /// Measurement window per cell, in seconds.
    pub seconds: f64,
    /// Optional explicit thread sweep.
    pub threads: Option<Vec<usize>>,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            quick: false,
            seconds: 0.25,
            threads: None,
        }
    }
}

impl BenchOpts {
    /// Parses `std::env::args`, honouring the `SHRINK_BENCH_SECONDS`
    /// environment variable as a default for `--seconds`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        let mut opts = BenchOpts::default();
        if let Ok(s) = std::env::var("SHRINK_BENCH_SECONDS") {
            opts.seconds = s.parse().expect("SHRINK_BENCH_SECONDS must be a float");
        }
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => opts.quick = true,
                "--seconds" => {
                    i += 1;
                    opts.seconds = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--seconds needs a float argument");
                }
                "--threads" => {
                    i += 1;
                    let list = args.get(i).expect("--threads needs a comma-separated list");
                    opts.threads = Some(
                        list.split(',')
                            .map(|t| t.parse().expect("thread counts must be integers"))
                            .collect(),
                    );
                }
                other => panic!("unknown option {other}; supported: --quick --seconds --threads"),
            }
            i += 1;
        }
        if opts.quick {
            opts.seconds = opts.seconds.min(0.1);
        }
        opts
    }

    /// The paper's STMBench7/red-black-tree thread sweep (1–24), or the
    /// quick/explicit override.
    pub fn paper_threads(&self) -> Vec<usize> {
        if let Some(t) = &self.threads {
            return t.clone();
        }
        if self.quick {
            vec![1, 2, 4, 8]
        } else {
            vec![1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24]
        }
    }

    /// The paper's STAMP sweep: 2/4/8 underloaded, 16/32/64 overloaded.
    pub fn stamp_threads(&self) -> (Vec<usize>, Vec<usize>) {
        if let Some(t) = &self.threads {
            return (t.clone(), Vec::new());
        }
        if self.quick {
            (vec![2, 4], vec![16])
        } else {
            (vec![2, 4, 8], vec![16, 32, 64])
        }
    }

    /// Per-cell run configuration at a given thread count.
    pub fn run_config(&self, threads: usize) -> RunConfig {
        let duration = Duration::from_secs_f64(self.seconds);
        RunConfig {
            threads,
            duration,
            warmup: duration / 5,
            seed: 0xC0FFEE,
        }
    }
}

/// Builds a runtime with the given backend, waiting policy and scheduler.
pub fn make_runtime(backend: BackendKind, wait: WaitPolicy, kind: &SchedulerKind) -> TmRuntime {
    TmRuntime::builder()
        .backend(backend)
        .wait_policy(wait)
        .scheduler_arc(kind.build())
        .build()
}

/// Measures one cell: fresh runtime, fresh workload, time-boxed run.
pub fn measure_cell(
    backend: BackendKind,
    wait: WaitPolicy,
    kind: &SchedulerKind,
    make_workload: impl FnOnce(&TmRuntime) -> Arc<dyn TxWorkload>,
    config: &RunConfig,
) -> RunOutcome {
    let rt = make_runtime(backend, wait, kind);
    let workload = make_workload(&rt);
    run_throughput(&rt, &workload, config)
}

/// Measures one cell `repeats` times (fresh runtime and workload each time)
/// and returns the **median** throughput.
///
/// Quick-mode windows (0.1 s) over small thread sweeps sit close to the
/// noise floor on small containers, which made single-shot qualitative
/// shape checks flap between ok/DIFFERS run-to-run. The median over a few
/// repeats stabilizes exactly those checks without lengthening the headline
/// sweep — and unlike a mean it shrugs off the occasional pathological
/// window an oversubscribed container produces.
pub fn measure_cell_median(
    backend: BackendKind,
    wait: WaitPolicy,
    kind: &SchedulerKind,
    make_workload: impl Fn(&TmRuntime) -> Arc<dyn TxWorkload>,
    config: &RunConfig,
    repeats: usize,
) -> f64 {
    assert!(repeats > 0, "repeats must be positive");
    let mut samples: Vec<f64> = (0..repeats)
        .map(|_| measure_cell(backend, wait, kind, &make_workload, config).throughput())
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Prints one gnuplot-ready series header.
pub fn print_header(figure: &str, columns: &[&str]) {
    println!("# {figure}");
    print!("# {:>8}", columns[0]);
    for c in &columns[1..] {
        print!(" {c:>14}");
    }
    println!();
}

/// Prints one row of a throughput table.
pub fn print_row(x: usize, values: &[f64]) {
    print!("{x:>10}");
    for v in values {
        print!(" {v:>14.1}");
    }
    println!();
}

/// Reports a qualitative shape check without failing the run.
pub fn shape(description: &str, holds: bool) {
    println!(
        "shape: [{}] {description}",
        if holds { "ok" } else { "DIFFERS" }
    );
}

/// Geometric-mean helper for speedup summaries.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values.iter().map(|v| v.max(1e-9).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrink_workloads::rbtree::RbTreeWorkload;

    #[test]
    fn default_sweeps_match_paper_axes() {
        let opts = BenchOpts::default();
        assert_eq!(opts.paper_threads().len(), 11);
        assert_eq!(opts.paper_threads()[0], 1);
        assert_eq!(*opts.paper_threads().last().unwrap(), 24);
        let (under, over) = opts.stamp_threads();
        assert_eq!(under, vec![2, 4, 8]);
        assert_eq!(over, vec![16, 32, 64]);
    }

    #[test]
    fn quick_mode_shrinks_everything() {
        let opts = BenchOpts {
            quick: true,
            ..BenchOpts::default()
        };
        assert!(opts.paper_threads().len() <= 4);
    }

    #[test]
    fn explicit_threads_override_both_sweeps() {
        let opts = BenchOpts {
            threads: Some(vec![3, 5]),
            ..BenchOpts::default()
        };
        assert_eq!(opts.paper_threads(), vec![3, 5]);
        assert_eq!(opts.stamp_threads().0, vec![3, 5]);
    }

    #[test]
    fn geomean_of_constant_is_constant() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn measure_cell_produces_commits() {
        let opts = BenchOpts {
            seconds: 0.05,
            ..BenchOpts::default()
        };
        let outcome = measure_cell(
            BackendKind::Swiss,
            WaitPolicy::Preemptive,
            &SchedulerKind::Noop,
            |rt| Arc::new(RbTreeWorkload::new(rt, 128, 20)),
            &opts.run_config(2),
        );
        assert!(outcome.commits > 0);
    }
}
