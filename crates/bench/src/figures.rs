//! Shared drivers for the throughput figures.
//!
//! Figures 5, 8 and 9 are STMBench7 thread sweeps under different
//! backend/wait/scheduler matrices; Figures 7 and 11 are the same over the
//! red-black-tree microbenchmark; Figures 6 and 10 are STAMP speedup
//! panels. The drivers here take the variant matrix and print the series
//! plus the paper's qualitative shape checks.

use std::sync::Arc;

use shrink_core::SchedulerKind;
use shrink_stm::{BackendKind, TmRuntime, WaitPolicy};
use shrink_workloads::harness::TxWorkload;
use shrink_workloads::rbtree::RbTreeWorkload;
use shrink_workloads::stamp;
use shrink_workloads::stmbench7::{Sb7Config, Sb7Mix, Sb7Workload};

use crate::{geomean, measure_cell, print_header, print_row, shape, BenchOpts};

/// One scheduler variant in a figure.
pub struct Variant {
    /// Column label (e.g. "SwissTM", "Shrink-SwissTM").
    pub label: &'static str,
    /// The scheduler behind the column.
    pub kind: SchedulerKind,
}

/// Measured throughput series: `series[variant][thread_index]`.
pub type Series = Vec<Vec<f64>>;

/// Runs an STMBench7 thread sweep for every mix and variant; returns the
/// per-mix series for shape checking.
pub fn stmbench7_figure(
    figure: &str,
    backend: BackendKind,
    wait: WaitPolicy,
    variants: &[Variant],
    opts: &BenchOpts,
) -> Vec<(Sb7Mix, Series)> {
    let threads = opts.paper_threads();
    let mut all = Vec::new();
    for mix in Sb7Mix::all() {
        println!("== {figure}: STMBench7 {mix} ({backend}, {wait} waiting) ==");
        let mut columns = vec!["threads"];
        columns.extend(variants.iter().map(|v| v.label));
        print_header(figure, &columns);
        let mut series: Series = vec![Vec::new(); variants.len()];
        for &t in &threads {
            let mut row = Vec::new();
            for (vi, variant) in variants.iter().enumerate() {
                let outcome = measure_cell(
                    backend,
                    wait,
                    &variant.kind,
                    |rt| -> Arc<dyn TxWorkload> {
                        Arc::new(Sb7Workload::new(rt, Sb7Config::default(), mix))
                    },
                    &opts.run_config(t),
                );
                row.push(outcome.throughput());
                series[vi].push(outcome.throughput());
            }
            print_row(t, &row);
        }
        println!();
        all.push((mix, series));
    }
    all
}

/// Runs a red-black-tree thread sweep (key range 16384) for the given
/// update percentages and variants.
pub fn rbtree_figure(
    figure: &str,
    backend: BackendKind,
    wait: WaitPolicy,
    update_pcts: &[u32],
    variants: &[Variant],
    opts: &BenchOpts,
) -> Vec<(u32, Series)> {
    let threads = opts.paper_threads();
    let key_range = 16384;
    let mut all = Vec::new();
    for &pct in update_pcts {
        println!("== {figure}: red-black tree, {pct}% updates ({backend}, {wait} waiting) ==");
        let mut columns = vec!["threads"];
        columns.extend(variants.iter().map(|v| v.label));
        print_header(figure, &columns);
        let mut series: Series = vec![Vec::new(); variants.len()];
        for &t in &threads {
            let mut row = Vec::new();
            for (vi, variant) in variants.iter().enumerate() {
                let outcome = measure_cell(
                    backend,
                    wait,
                    &variant.kind,
                    |rt| -> Arc<dyn TxWorkload> {
                        Arc::new(RbTreeWorkload::new(rt, key_range, pct))
                    },
                    &opts.run_config(t),
                );
                row.push(outcome.throughput());
                series[vi].push(outcome.throughput());
            }
            print_row(t, &row);
        }
        println!();
        all.push((pct, series));
    }
    all
}

/// Runs the STAMP speedup panels: Shrink vs base on every configuration,
/// for the underloaded and overloaded thread sets. Returns
/// `(name, threads, speedup)` rows.
pub fn stamp_figure(
    figure: &str,
    backend: BackendKind,
    wait: WaitPolicy,
    opts: &BenchOpts,
) -> Vec<(&'static str, usize, f64)> {
    let (under, over) = opts.stamp_threads();
    let mut rows = Vec::new();
    for (panel, threads) in [("underloaded", &under), ("overloaded", &over)] {
        if threads.is_empty() {
            continue;
        }
        println!("== {figure}: STAMP speedup of Shrink over base, {panel} ({backend}) ==");
        let mut columns = vec!["config"];
        let thread_labels: Vec<String> = threads.iter().map(|t| format!("{t}t")).collect();
        columns.extend(thread_labels.iter().map(|s| s.as_str()));
        println!("# {}", columns.join(" "));
        for name in stamp::STAMP_NAMES {
            print!("{name:>14}");
            for &t in threads {
                let base = measure_cell(
                    backend,
                    wait,
                    &SchedulerKind::Noop,
                    |rt: &TmRuntime| stamp::build(name, rt),
                    &opts.run_config(t),
                );
                let shrink = measure_cell(
                    backend,
                    wait,
                    &SchedulerKind::shrink_default(),
                    |rt: &TmRuntime| stamp::build(name, rt),
                    &opts.run_config(t),
                );
                let speedup = if base.throughput() > 0.0 {
                    shrink.throughput() / base.throughput()
                } else {
                    1.0
                };
                print!(" {speedup:>9.3}");
                rows.push((name, t, speedup));
            }
            println!();
        }
        println!();
    }
    rows
}

/// Standard shape checks for a base-vs-Shrink throughput figure: Shrink
/// comparable when underloaded, ahead when heavily overloaded.
pub fn check_overload_shape(what: &str, threads: &[usize], base: &[f64], shrink: &[f64]) {
    if threads.len() < 2 {
        return;
    }
    let last = threads.len() - 1;
    shape(
        &format!("{what}: Shrink within 2x of base at {} threads", threads[0]),
        shrink[0] >= base[0] * 0.5,
    );
    shape(
        &format!(
            "{what}: Shrink >= 0.9x base at {} threads (overloaded)",
            threads[last]
        ),
        shrink[last] >= base[last] * 0.9,
    );
}

/// Summarizes a STAMP speedup table with its geometric means.
pub fn stamp_summary(rows: &[(&'static str, usize, f64)], overload_from: usize) {
    let under: Vec<f64> = rows
        .iter()
        .filter(|(_, t, _)| *t < overload_from)
        .map(|&(_, _, s)| s)
        .collect();
    let over: Vec<f64> = rows
        .iter()
        .filter(|(_, t, _)| *t >= overload_from)
        .map(|&(_, _, s)| s)
        .collect();
    if !under.is_empty() {
        println!("geomean speedup underloaded: {:.3}", geomean(&under));
    }
    if !over.is_empty() {
        println!("geomean speedup overloaded:  {:.3}", geomean(&over));
        shape(
            "Shrink helps more when overloaded than underloaded",
            under.is_empty() || geomean(&over) >= geomean(&under) * 0.95,
        );
    }
}
