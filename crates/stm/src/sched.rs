//! The transaction-scheduler integration surface.
//!
//! A *TM scheduler* in the paper's sense is "a software component
//! encapsulating a policy that decides when a particular transaction
//! executes". The runtime drives an implementation of [`TxScheduler`]
//! through six hooks that correspond one-to-one with the integration points
//! of the paper's Algorithm 1:
//!
//! * [`before_start`](TxScheduler::before_start) — "On transactional start";
//!   this is where a scheduler may block the thread (serialize it through a
//!   global lock) based on its prediction.
//! * [`on_read`](TxScheduler::on_read) — "On transactional read of addr";
//!   feeds the read-set predictor.
//! * [`on_write`](TxScheduler::on_write) — symmetric hook for writes.
//! * [`on_commit`](TxScheduler::on_commit) — success-rate bookkeeping and
//!   release of the serialization lock.
//! * [`on_abort`](TxScheduler::on_abort) — write-set prediction (the aborted
//!   write set becomes the prediction for the retry) and success-rate decay.
//! * [`on_thread_register`](TxScheduler::on_thread_register) — one-time
//!   per-thread setup.
//!
//! A seventh hook goes beyond the paper's listing:
//! [`on_retry_wait`](TxScheduler::on_retry_wait) fires *instead of*
//! `on_abort` when the attempt ended in [`Tx::retry`](crate::Tx::retry) — a
//! deliberate wait for the read set to change, which success-rate and
//! contention-intensity accounting must not book as a conflict
//! (DESIGN.md §9).
//!
//! Concrete schedulers (Shrink, ATS, Pool, Serializer) live in the
//! `shrink-core` crate; this crate ships only [`NoopScheduler`], the
//! "base TM" configuration.

use std::fmt;

use crate::config::TxnKind;
use crate::epoch::AttemptEpochs;
use crate::error::Abort;
use crate::thread::ThreadId;
use crate::varid::VarId;
use crate::visible::VisibleWrites;

/// Context handed to every scheduler hook.
///
/// Borrows the runtime's [`VisibleWrites`] oracle so schedulers can check
/// whether predicted addresses are currently being written — the core of
/// Shrink's conflict-prevention test — and the [`AttemptEpochs`] oracle so
/// schedule-after-conflict policies can *sleep* until an enemy's attempt
/// epoch advances instead of yield-polling it (DESIGN.md §8.5).
pub struct SchedCtx<'a> {
    /// The thread the hook fires for.
    pub thread: ThreadId,
    /// Who is currently writing what (the orec table).
    pub visible: &'a dyn VisibleWrites,
    /// Per-thread attempt epochs: read, and park until one advances.
    pub epochs: &'a dyn AttemptEpochs,
    /// What the transaction declared itself to be. Schedulers must skip
    /// conflict bookkeeping (success rates, contention intensity,
    /// serialization) for [`TxnKind::ReadOnly`]: a read-only transaction
    /// can neither cause nor lose a write conflict.
    pub kind: TxnKind,
}

impl fmt::Debug for SchedCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchedCtx")
            .field("thread", &self.thread)
            .finish()
    }
}

/// A pluggable transaction scheduling policy.
///
/// Hooks run on the transacting thread itself. `before_start` is allowed to
/// block (that is how serialization is implemented); the others should be
/// fast, as `on_read`/`on_write` sit on the transactional hot path.
///
/// # Contract
///
/// * Every attempt is bracketed: `before_start` is followed by exactly one
///   of `on_commit`, `on_abort` or `on_retry_wait` for the same thread —
///   or, when the attempt is abandoned without a normal completion (the
///   body panicked and is unwinding, or a non-retryable error such as a
///   foreign-`TVar` access cut the attempt short), by
///   [`on_reset`](TxScheduler::on_reset).
/// * `reads` and `writes` slices passed to the completion hooks list the
///   variables accessed by the finished attempt. `reads` may contain
///   duplicates (one entry per dynamic read); `writes` is duplicate-free.
/// * A scheduler that acquires a lock in `before_start` **must** release it
///   in all three completion hooks (`on_commit`, `on_abort`,
///   `on_retry_wait`).
/// * A *read-only* transaction
///   ([`TmRuntime::read_only`](crate::TmRuntime::read_only)) fires exactly
///   one `before_start`/`on_commit` pair with
///   [`SchedCtx::kind`] set to [`TxnKind::ReadOnly`] — internal snapshot
///   restarts are invisible — and never fires `on_read`, `on_write`,
///   `on_abort` or `on_retry_wait`. Schedulers must not serialize or book
///   conflicts for these.
pub trait TxScheduler: Send + Sync + fmt::Debug {
    /// Called once when a thread registers with the runtime.
    fn on_thread_register(&self, thread: ThreadId) {
        let _ = thread;
    }

    /// Called before every transaction attempt (first try and retries).
    /// May block to serialize the transaction.
    fn before_start(&self, ctx: &SchedCtx<'_>) {
        let _ = ctx;
    }

    /// Called on every transactional read of `var`.
    fn on_read(&self, ctx: &SchedCtx<'_>, var: VarId) {
        let _ = (ctx, var);
    }

    /// Called on every transactional write of `var`.
    fn on_write(&self, ctx: &SchedCtx<'_>, var: VarId) {
        let _ = (ctx, var);
    }

    /// Called after a successful commit with the attempt's access sets.
    fn on_commit(&self, ctx: &SchedCtx<'_>, reads: &[VarId], writes: &[VarId]) {
        let _ = (ctx, reads, writes);
    }

    /// Called after an aborted attempt with the abort cause and access sets.
    ///
    /// Never fired for [`AbortReason::Retry`](crate::AbortReason::Retry) —
    /// those attempts complete through
    /// [`on_retry_wait`](TxScheduler::on_retry_wait) instead.
    fn on_abort(&self, ctx: &SchedCtx<'_>, abort: &Abort, reads: &[VarId], writes: &[VarId]) {
        let _ = (ctx, abort, reads, writes);
    }

    /// Called when an attempt ended in [`Tx::retry`](crate::Tx::retry),
    /// *before* the runtime parks the thread on its read set's commit
    /// events. Fired instead of [`on_abort`](TxScheduler::on_abort): the
    /// transaction chose to wait, so policies reacting to conflicts
    /// (success-rate decay, contention intensity, schedule-after) must stay
    /// untouched. A scheduler holding a serialization lock from
    /// `before_start` must release it here, exactly as in the other two
    /// completion hooks.
    fn on_retry_wait(&self, ctx: &SchedCtx<'_>, reads: &[VarId], writes: &[VarId]) {
        let _ = (ctx, reads, writes);
    }

    /// Called when an attempt is abandoned without a normal completion hook:
    /// the body panicked (this runs during unwinding, from the runtime's
    /// attempt drop-guard), or a non-retryable error ended the retry loop
    /// mid-attempt. The implementation **must** release any serialization
    /// acquired in [`before_start`](TxScheduler::before_start) and clear
    /// per-thread attempt state (pending schedule-after targets, active
    /// predictions), leaving the scheduler ready for the thread's next
    /// `before_start` — this is what makes a panicking transaction body
    /// recoverable instead of fatal for the runtime. May be called when no
    /// serialization is held (it can fire after a completion hook already
    /// ran); implementations must tolerate that, e.g. by releasing
    /// conditionally. Must not panic.
    fn on_reset(&self, ctx: &SchedCtx<'_>) {
        let _ = ctx;
    }

    /// A short name for reports ("noop", "shrink", "ats", ...).
    fn name(&self) -> &str;
}

/// The do-nothing scheduler: the base TM without any scheduling policy.
///
/// # Examples
///
/// ```
/// use shrink_stm::{TmRuntime, sched::NoopScheduler};
///
/// let rt = TmRuntime::builder().scheduler(NoopScheduler).build();
/// assert_eq!(rt.scheduler_name(), "noop");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopScheduler;

impl TxScheduler for NoopScheduler {
    fn name(&self) -> &str {
        "noop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visible::StaticWrites;

    #[test]
    fn noop_scheduler_hooks_are_callable() {
        let s = NoopScheduler;
        let oracle = StaticWrites::new();
        let ctx = SchedCtx {
            thread: ThreadId::from_raw(1),
            visible: &oracle,
            epochs: &crate::epoch::NoEpochs,
            kind: TxnKind::ReadWrite,
        };
        s.on_thread_register(ctx.thread);
        s.before_start(&ctx);
        s.on_read(&ctx, VarId::from_u64(1));
        s.on_write(&ctx, VarId::from_u64(1));
        s.on_commit(&ctx, &[], &[]);
        s.on_abort(
            &ctx,
            &Abort::new(crate::AbortReason::ReadValidation),
            &[],
            &[],
        );
        s.on_retry_wait(&ctx, &[], &[]);
        s.on_reset(&ctx);
        assert_eq!(s.name(), "noop");
    }

    #[test]
    fn scheduler_trait_is_object_safe() {
        let s: Box<dyn TxScheduler> = Box::new(NoopScheduler);
        assert_eq!(s.name(), "noop");
    }
}
