//! Per-thread *attempt epochs*: the epoch-futex oracle schedulers wait on.
//!
//! Every registered thread carries an [`EventCount`](parking_lot::EventCount)
//! that the runtime advances (bump **and wake**) each time an attempt
//! finishes — after the `on_commit`/`on_abort` scheduler hooks have run, so
//! a woken waiter observes the enemy's bookkeeping fully settled. The
//! CAR-STM-style Serializer uses this to *sleep* until its enemy finishes
//! the conflicting transaction instead of burning a `yield_now` poll loop
//! (DESIGN.md §8.5), and the conflict paths in `txn.rs` stamp the enemy's
//! epoch into the [`Abort`](crate::Abort) at detection time so the victim
//! never serializes behind the wrong transaction.
//!
//! The oracle is a trait (like [`VisibleWrites`](crate::VisibleWrites)) so
//! schedulers can be unit-tested against a scripted [`EpochTable`] without
//! a runtime.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{EventCount, RwLock, WaitOutcome};

use crate::thread::ThreadId;

/// How an [`AttemptEpochs::wait_epoch_change`] call ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpochWaitOutcome {
    /// The thread's epoch moved past the observed value (it finished an
    /// attempt, or departed and was retired).
    Advanced,
    /// The deadline expired with the epoch unchanged — the enemy is idle or
    /// slow; the caller should stop waiting and run.
    TimedOut,
    /// The thread has no live epoch slot (never registered, or already
    /// departed). Waiting on it would stall against a counter that will
    /// never advance; callers must skip the wait.
    Absent,
}

/// Read-and-wait access to per-thread attempt epochs.
///
/// Implemented by the runtime's thread registry and by the scripted
/// [`EpochTable`] used in scheduler unit tests.
pub trait AttemptEpochs: Send + Sync {
    /// The current attempt epoch of `thread`, or `None` if the thread never
    /// registered or has departed (a departed thread's epoch will never
    /// advance again — waiting on it is the stale-enemy stall this
    /// interface exists to prevent).
    fn epoch_of(&self, thread: ThreadId) -> Option<u32>;

    /// Blocks (parked, never yield-polling) until `thread`'s epoch differs
    /// from `observed`, the thread departs, or `deadline` passes.
    ///
    /// Returns immediately when the epoch already moved or the slot is
    /// absent.
    fn wait_epoch_change(
        &self,
        thread: ThreadId,
        observed: u32,
        deadline: Instant,
    ) -> EpochWaitOutcome;

    /// Exact number of threads currently parked in
    /// [`wait_epoch_change`](Self::wait_epoch_change) on `thread`'s epoch.
    ///
    /// A deterministic handshake for tests ("wake the enemy only once the
    /// victim is provably parked"); not a scheduling signal.
    fn waiters_on(&self, thread: ThreadId) -> u32;
}

/// One thread's epoch state: the event count plus the departed flag.
///
/// Embedded both in the runtime's `ThreadCtx` and in the scripted
/// [`EpochTable`], so the live-filtering and wait protocol exist exactly
/// once and the test double cannot drift from the runtime it stands in
/// for.
#[derive(Debug, Default)]
pub(crate) struct EpochCell {
    event: EventCount,
    departed: AtomicBool,
}

impl EpochCell {
    /// The current epoch, regardless of liveness.
    pub(crate) fn version(&self) -> u32 {
        self.event.version()
    }

    /// The current epoch, or `None` once the owner departed.
    pub(crate) fn version_if_live(&self) -> Option<u32> {
        (!self.departed()).then(|| self.event.version())
    }

    /// True once the owning thread has exited.
    pub(crate) fn departed(&self) -> bool {
        self.departed.load(Ordering::SeqCst)
    }

    /// Advances the epoch, waking every waiter. Returns the new epoch.
    pub(crate) fn advance(&self) -> u32 {
        // Delay-only site: advance also runs from attempt-cleanup guards.
        let _ = crate::failpoint!(crate::faults::FaultSite::EventWake);
        self.event.advance().version
    }

    /// Marks the owner departed and wakes anything still waiting.
    pub(crate) fn retire(&self) {
        self.departed.store(true, Ordering::SeqCst);
        self.event.advance();
    }

    /// Parks until the epoch differs from `observed`, the owner departs,
    /// or `deadline` passes. Departed cells report [`Absent`] up front.
    ///
    /// [`Absent`]: EpochWaitOutcome::Absent
    pub(crate) fn wait_change(&self, observed: u32, deadline: Instant) -> EpochWaitOutcome {
        if self.departed() {
            return EpochWaitOutcome::Absent;
        }
        // Forced spurious wakeup: report the epoch advanced without
        // sleeping. Epoch waiters (the Serializer's schedule-after wait)
        // must tolerate waking before their enemy actually finished.
        if crate::failpoint!(crate::faults::FaultSite::EventPark) {
            return EpochWaitOutcome::Advanced;
        }
        match self.event.wait_while_eq(observed, Some(deadline)) {
            WaitOutcome::Advanced => EpochWaitOutcome::Advanced,
            WaitOutcome::TimedOut => EpochWaitOutcome::TimedOut,
        }
    }

    /// Exact number of threads parked on this epoch.
    pub(crate) fn waiters(&self) -> u32 {
        self.event.waiters()
    }
}

/// A scripted [`AttemptEpochs`] implementation for scheduler unit tests and
/// benchmarks: register threads with [`ensure`](Self::ensure), finish their
/// attempts with [`bump`](Self::bump), end their lives with
/// [`retire`](Self::retire).
///
/// # Examples
///
/// ```
/// use shrink_stm::{AttemptEpochs, EpochTable, ThreadId};
///
/// let table = EpochTable::new();
/// let enemy = ThreadId::from_u16(2);
/// table.ensure(enemy);
/// assert_eq!(table.epoch_of(enemy), Some(0));
/// table.bump(enemy);
/// assert_eq!(table.epoch_of(enemy), Some(1));
/// table.retire(enemy);
/// assert_eq!(table.epoch_of(enemy), None);
/// ```
#[derive(Default)]
pub struct EpochTable {
    slots: RwLock<Vec<Arc<EpochCell>>>,
}

impl EpochTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `thread` (idempotent), creating its epoch slot at 0.
    ///
    /// # Panics
    ///
    /// Panics on [`ThreadId::NONE`].
    pub fn ensure(&self, thread: ThreadId) {
        let index = thread.index();
        let mut slots = self.slots.write();
        while slots.len() <= index {
            slots.push(Arc::new(EpochCell::default()));
        }
    }

    fn slot(&self, thread: ThreadId) -> Option<Arc<EpochCell>> {
        if thread == ThreadId::NONE {
            return None;
        }
        self.slots.read().get(thread.index()).cloned()
    }

    /// Advances `thread`'s epoch (registering it if needed), waking its
    /// waiters. Returns the new epoch.
    pub fn bump(&self, thread: ThreadId) -> u32 {
        self.ensure(thread);
        self.slot(thread).expect("ensured above").advance()
    }

    /// Marks `thread` as departed and wakes anything waiting on its epoch.
    pub fn retire(&self, thread: ThreadId) {
        if let Some(slot) = self.slot(thread) {
            slot.retire();
        }
    }
}

impl fmt::Debug for EpochTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochTable")
            .field("len", &self.slots.read().len())
            .finish()
    }
}

impl AttemptEpochs for EpochTable {
    fn epoch_of(&self, thread: ThreadId) -> Option<u32> {
        self.slot(thread).and_then(|s| s.version_if_live())
    }

    fn wait_epoch_change(
        &self,
        thread: ThreadId,
        observed: u32,
        deadline: Instant,
    ) -> EpochWaitOutcome {
        self.slot(thread).map_or(EpochWaitOutcome::Absent, |s| {
            s.wait_change(observed, deadline)
        })
    }

    fn waiters_on(&self, thread: ThreadId) -> u32 {
        self.slot(thread).map_or(0, |s| s.waiters())
    }
}

/// An [`AttemptEpochs`] oracle with no threads: every lookup is absent,
/// every wait returns immediately. For scheduler tests that do not exercise
/// epoch waiting.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoEpochs;

impl AttemptEpochs for NoEpochs {
    fn epoch_of(&self, _thread: ThreadId) -> Option<u32> {
        None
    }

    fn wait_epoch_change(
        &self,
        _thread: ThreadId,
        _observed: u32,
        _deadline: Instant,
    ) -> EpochWaitOutcome {
        EpochWaitOutcome::Absent
    }

    fn waiters_on(&self, _thread: ThreadId) -> u32 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tid(raw: u16) -> ThreadId {
        ThreadId::from_u16(raw)
    }

    #[test]
    fn unknown_threads_are_absent() {
        let table = EpochTable::new();
        assert_eq!(table.epoch_of(tid(3)), None);
        assert_eq!(table.epoch_of(ThreadId::NONE), None);
        let outcome = table.wait_epoch_change(tid(3), 0, Instant::now() + Duration::from_secs(5));
        assert_eq!(outcome, EpochWaitOutcome::Absent, "must not stall");
    }

    #[test]
    fn bump_advances_and_satisfies_waits() {
        let table = EpochTable::new();
        let t = tid(1);
        assert_eq!(table.bump(t), 1);
        assert_eq!(table.epoch_of(t), Some(1));
        // Observed epoch already stale: no sleep.
        let outcome = table.wait_epoch_change(t, 0, Instant::now() + Duration::from_secs(5));
        assert_eq!(outcome, EpochWaitOutcome::Advanced);
    }

    #[test]
    fn wait_times_out_against_an_idle_thread() {
        let table = EpochTable::new();
        let t = tid(1);
        table.ensure(t);
        let deadline = Instant::now() + Duration::from_millis(20);
        let outcome = table.wait_epoch_change(t, 0, deadline);
        assert_eq!(outcome, EpochWaitOutcome::TimedOut);
        assert!(Instant::now() >= deadline);
    }

    #[test]
    fn retire_wakes_waiters_and_goes_absent() {
        let table = Arc::new(EpochTable::new());
        let t = tid(2);
        table.ensure(t);
        let waiter = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                table.wait_epoch_change(t, 0, Instant::now() + Duration::from_secs(30))
            })
        };
        while table.waiters_on(t) == 0 {
            std::thread::yield_now();
        }
        table.retire(t);
        // The retire's advance releases the waiter well before the deadline.
        assert_eq!(waiter.join().unwrap(), EpochWaitOutcome::Advanced);
        assert_eq!(table.epoch_of(t), None, "departed threads are absent");
        assert_eq!(
            table.wait_epoch_change(t, 1, Instant::now() + Duration::from_secs(5)),
            EpochWaitOutcome::Absent
        );
    }

    #[test]
    fn no_epochs_is_always_absent() {
        let oracle = NoEpochs;
        assert_eq!(oracle.epoch_of(tid(1)), None);
        assert_eq!(
            oracle.wait_epoch_change(tid(1), 0, Instant::now() + Duration::from_secs(5)),
            EpochWaitOutcome::Absent
        );
        assert_eq!(oracle.waiters_on(tid(1)), 0);
    }
}
