//! # shrink-stm — an STM substrate with visible writes and pluggable schedulers
//!
//! This crate is the transactional-memory substrate of the *Shrink*
//! reproduction ("Preventing versus Curing: Avoiding Conflicts in
//! Transactional Memories", PODC 2009). It provides:
//!
//! * a word-based software transactional memory built on ownership records
//!   with **visible writes** — any thread can ask which thread is currently
//!   writing an address, which is the facility prediction-based schedulers
//!   need;
//! * two conflict-handling backends modelled after the STMs the paper
//!   evaluates: [`BackendKind::Swiss`] (SwissTM-like lazy read/write conflict
//!   resolution with a two-phase contention manager) and
//!   [`BackendKind::Tiny`] (TinySTM-like encounter-time locking with bounded
//!   busy-waiting);
//! * both waiting policies the paper compares ([`WaitPolicy::Preemptive`]
//!   and [`WaitPolicy::Busy`]);
//! * the scheduler hook interface ([`sched::TxScheduler`]) through which the
//!   Shrink, ATS, Pool and Serializer policies of the companion
//!   `shrink-core` crate plug in;
//! * composable blocking ([`Tx::retry`] / [`Tx::or_else`] /
//!   [`atomically`]): transactions that wait for a predicate over `TVar`s
//!   park on per-stripe commit event counts instead of abort-spinning, and
//!   alternatives roll back only their own branch (DESIGN.md §9);
//! * lock-free read-only transactions
//!   ([`TmRuntime::read_only`](runtime::TmRuntime::read_only)): declared
//!   readers snapshot the clock once and validate per read with **zero orec
//!   writes, zero commit ticket, zero waitlist registration** — they never
//!   abort a writer and are invisible to the schedulers (DESIGN.md §10).
//!   Read-path code generic over [`TxRead`] runs on both paths;
//! * async transactions ([`atomically_async`] / [`future::TxFuture`]): the
//!   same synchronous bodies run as futures — a blocked [`Tx::retry`]
//!   suspends the task with a `Waker`-backed parker on the same per-stripe
//!   waitlists instead of parking a thread, so 100k+ blocked consumers fit
//!   on a handful of executor workers (DESIGN.md §12);
//! * cross-runtime blocking ([`retry_select`] and the [`registry`]
//!   module): every runtime is published in a process-global registry, and
//!   a select over arms bound to *different* runtimes parks one parker
//!   across all their waitlists — the deliberate-sharing counterpart of
//!   the accidental-sharing [`TmError::ForeignTVar`] refusal
//!   (DESIGN.md §13).
//!
//! ## Quick start
//!
//! ```
//! use shrink_stm::{TmRuntime, TVar};
//!
//! let rt = TmRuntime::new();
//! let x = TVar::new(1u64);
//! let y = TVar::new(2u64);
//!
//! let sum = rt.run(|tx| {
//!     let a = tx.read(&x)?;
//!     let b = tx.read(&y)?;
//!     tx.write(&y, a + b)?;
//!     Ok(a + b)
//! });
//! assert_eq!(sum, 3);
//! assert_eq!(y.snapshot(), 3);
//! ```
//!
//! ## Architecture
//!
//! ```text
//! TmRuntime ── GlobalClock          (TL2-style timestamps)
//!      │   ├── OrecTable            (striped versioned write locks, visible writes)
//!      │   ├── ThreadRegistry       (ThreadCtx: kill flags, counters)
//!      │   └── Arc<dyn TxScheduler> (policy hooks; NoopScheduler by default)
//!      ├── run(body) ──────────────► Tx (read/write/commit protocol)
//!      └── read_only(body) ────────► ReadTx (lock-free snapshot reads)
//! TVar<T> ── ValueCell<T>           (lock-free snapshots: inline seqlock
//!      │                             for small dropless types, epoch-
//!      └── reclaimed box otherwise; see DESIGN.md §7)
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backoff;
pub mod cell;
pub mod clock;
pub mod config;
pub mod epoch;
pub mod error;
pub mod faults;
pub mod future;
pub mod orec;
pub mod registry;
pub mod runtime;
pub mod sched;
pub mod stats;
pub mod tarray;
pub mod thread;
pub mod tvar;
pub mod txn;
pub mod varid;
pub mod visible;
pub mod waitlist;

pub use config::{BackendKind, CmPolicy, TmConfig, TxnKind, WaitPolicy};
pub use epoch::{AttemptEpochs, EpochTable, EpochWaitOutcome, NoEpochs};
pub use error::{Abort, AbortReason, TmError, TxResult};
pub use faults::{FaultKind, FaultSite};
pub use future::{atomically_async, TxFuture};
pub use registry::{
    lookup_runtime, retry_select, retry_select_deadline, select_stats, SelectArm, SelectStats,
};
pub use runtime::{atomically, quiesce, TmBuilder, TmRuntime};
pub use sched::{NoopScheduler, SchedCtx, TxScheduler};
pub use stats::{ThreadStats, TmStats};
pub use tarray::TArray;
pub use thread::ThreadId;
pub use tvar::{TVar, TxValue};
pub use txn::{ReadTx, Tx, TxRead};
pub use varid::VarId;
pub use visible::{StaticWrites, VisibleWrites};
pub use waitlist::RetryStats;
