//! Ownership records ("orecs") and the striped lock table.
//!
//! Every transactional variable maps (by hashing its [`VarId`]) to one slot
//! of a fixed-size table of ownership records, exactly like the per-stripe
//! lock tables of TinySTM and SwissTM. An orec packs into a single
//! `AtomicU64`:
//!
//! ```text
//!  63       62          61..47        46..0
//! [locked] [committing] [owner: 15b] [version: 47b]
//! ```
//!
//! * `locked` — a writer has acquired the stripe (eagerly, at first write).
//! * `committing` — the owner is installing values; readers must wait.
//! * `owner` — the [`ThreadId`] of the lock holder. This is what makes
//!   writes *visible*: any thread can ask "who is writing this address?",
//!   which is the facility the Shrink scheduler requires of its host TM.
//! * `version` — the commit timestamp of the last transaction that wrote the
//!   stripe. While locked, the field still holds the pre-lock version so
//!   aborting writers can release without disturbing readers.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::thread::ThreadId;
use crate::varid::VarId;
use crate::visible::VisibleWrites;

/// Number of bits available for commit timestamps.
pub const VERSION_BITS: u32 = 47;

const VERSION_MASK: u64 = (1 << VERSION_BITS) - 1;
const OWNER_SHIFT: u32 = VERSION_BITS;
const OWNER_FIELD_MASK: u64 = 0x7FFF;
const COMMITTING_BIT: u64 = 1 << 62;
const LOCKED_BIT: u64 = 1 << 63;

/// A decoded view of an orec word at one instant.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct OrecSnapshot {
    raw: u64,
}

impl OrecSnapshot {
    /// Reconstructs a snapshot from a raw word (test helper).
    pub fn from_raw(raw: u64) -> Self {
        OrecSnapshot { raw }
    }

    /// The raw packed word.
    pub fn raw(self) -> u64 {
        self.raw
    }

    /// True if a writer holds the stripe.
    pub fn locked(self) -> bool {
        self.raw & LOCKED_BIT != 0
    }

    /// True if the owner is currently installing values.
    pub fn committing(self) -> bool {
        self.raw & COMMITTING_BIT != 0
    }

    /// The thread holding the lock ([`ThreadId::NONE`] when unlocked).
    pub fn owner(self) -> ThreadId {
        ThreadId::from_raw(((self.raw >> OWNER_SHIFT) & OWNER_FIELD_MASK) as u16)
    }

    /// The version stamped by the last committed writer (pre-lock version
    /// while the stripe is locked).
    pub fn version(self) -> u64 {
        self.raw & VERSION_MASK
    }

    /// True if `me` holds the lock.
    pub fn locked_by(self, me: ThreadId) -> bool {
        self.locked() && self.owner() == me
    }

    /// True if some thread other than `me` holds the lock.
    pub fn locked_by_other(self, me: ThreadId) -> bool {
        self.locked() && self.owner() != me
    }
}

impl fmt::Debug for OrecSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrecSnapshot")
            .field("locked", &self.locked())
            .field("committing", &self.committing())
            .field("owner", &self.owner())
            .field("version", &self.version())
            .finish()
    }
}

/// One ownership record.
#[derive(Debug)]
pub struct Orec {
    word: AtomicU64,
}

impl Orec {
    fn new() -> Self {
        Orec {
            word: AtomicU64::new(0),
        }
    }

    /// Reads the current state.
    #[inline]
    pub fn snapshot(&self) -> OrecSnapshot {
        OrecSnapshot {
            raw: self.word.load(Ordering::Acquire),
        }
    }

    /// Attempts to acquire the write lock for `me`, expecting the orec to
    /// still be in the unlocked state `expected`. Returns `true` on success.
    ///
    /// The pre-lock version is preserved in the word so an aborting owner can
    /// release without changing what concurrent readers validate against.
    #[inline]
    pub fn try_lock(&self, expected: OrecSnapshot, me: ThreadId) -> bool {
        debug_assert!(!expected.locked());
        debug_assert!(me != ThreadId::NONE);
        let desired =
            LOCKED_BIT | ((me.as_u16() as u64) << OWNER_SHIFT) | (expected.raw & VERSION_MASK);
        self.word
            .compare_exchange(expected.raw, desired, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }

    /// Marks the stripe as being committed by its owner.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `me` owns the lock.
    #[inline]
    pub fn begin_commit(&self, me: ThreadId) {
        let cur = self.snapshot();
        debug_assert!(cur.locked_by(me), "begin_commit by non-owner");
        self.word.store(cur.raw | COMMITTING_BIT, Ordering::Release);
    }

    /// Releases the lock after an abort, restoring the pre-lock version.
    #[inline]
    pub fn unlock_abort(&self, me: ThreadId) {
        let cur = self.snapshot();
        debug_assert!(cur.locked_by(me), "unlock_abort by non-owner");
        self.word.store(cur.version(), Ordering::Release);
    }

    /// Releases the lock after a successful commit, stamping `new_version`.
    ///
    /// # Panics
    ///
    /// Debug-asserts ownership and that the version fits the field.
    #[inline]
    pub fn unlock_commit(&self, me: ThreadId, new_version: u64) {
        debug_assert!(self.snapshot().locked_by(me), "unlock_commit by non-owner");
        debug_assert!(new_version <= VERSION_MASK, "version overflow");
        self.word.store(new_version, Ordering::Release);
    }
}

/// The striped table of ownership records shared by all variables of a
/// runtime.
///
/// Distinct variables may hash to the same stripe; such aliasing can produce
/// false conflicts but never missed ones, the standard trade-off of
/// word-based STMs.
pub struct OrecTable {
    orecs: Box<[Orec]>,
    mask: u64,
    shift: u32,
}

impl OrecTable {
    /// Creates a table with `size` stripes (rounded up to a power of two,
    /// minimum 64).
    pub fn new(size: usize) -> Self {
        let size = size.next_power_of_two().max(64);
        let orecs: Vec<Orec> = (0..size).map(|_| Orec::new()).collect();
        OrecTable {
            orecs: orecs.into_boxed_slice(),
            mask: (size - 1) as u64,
            shift: 64 - size.trailing_zeros(),
        }
    }

    /// Number of stripes.
    pub fn len(&self) -> usize {
        self.orecs.len()
    }

    /// True if the table has no stripes (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.orecs.is_empty()
    }

    /// Maps a variable to its stripe index (Fibonacci hashing).
    #[inline]
    pub fn index_of(&self, var: VarId) -> usize {
        let h = var.as_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> self.shift) & self.mask) as usize
    }

    /// Returns the orec for a stripe index.
    #[inline]
    pub fn at(&self, index: usize) -> &Orec {
        &self.orecs[index]
    }

    /// Returns the orec guarding `var`.
    #[inline]
    pub fn for_var(&self, var: VarId) -> &Orec {
        self.at(self.index_of(var))
    }
}

impl fmt::Debug for OrecTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrecTable")
            .field("stripes", &self.len())
            .finish()
    }
}

impl VisibleWrites for OrecTable {
    fn is_written_by_other(&self, var: VarId, me: ThreadId) -> bool {
        self.for_var(var).snapshot().locked_by_other(me)
    }

    fn writer_of(&self, var: VarId) -> Option<ThreadId> {
        let snap = self.for_var(var).snapshot();
        if snap.locked() {
            Some(snap.owner())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u16) -> ThreadId {
        ThreadId::from_raw(id)
    }

    #[test]
    fn fresh_orec_is_unlocked_version_zero() {
        let o = Orec::new();
        let s = o.snapshot();
        assert!(!s.locked());
        assert!(!s.committing());
        assert_eq!(s.owner(), ThreadId::NONE);
        assert_eq!(s.version(), 0);
    }

    #[test]
    fn lock_preserves_version_and_records_owner() {
        let o = Orec::new();
        o.unlock_commit_unchecked(17);
        let before = o.snapshot();
        assert!(o.try_lock(before, t(5)));
        let s = o.snapshot();
        assert!(s.locked());
        assert_eq!(s.owner(), t(5));
        assert_eq!(s.version(), 17, "pre-lock version preserved");
        assert!(s.locked_by(t(5)));
        assert!(s.locked_by_other(t(6)));
        assert!(!s.locked_by_other(t(5)));
    }

    #[test]
    fn second_lock_attempt_fails() {
        let o = Orec::new();
        let s0 = o.snapshot();
        assert!(o.try_lock(s0, t(1)));
        assert!(!o.try_lock(s0, t(2)), "stale CAS must fail");
    }

    #[test]
    fn abort_restores_pre_lock_version() {
        let o = Orec::new();
        o.unlock_commit_unchecked(9);
        let s = o.snapshot();
        assert!(o.try_lock(s, t(3)));
        o.unlock_abort(t(3));
        let after = o.snapshot();
        assert!(!after.locked());
        assert_eq!(after.version(), 9);
    }

    #[test]
    fn commit_stamps_new_version_and_clears_flags() {
        let o = Orec::new();
        let s = o.snapshot();
        assert!(o.try_lock(s, t(3)));
        o.begin_commit(t(3));
        assert!(o.snapshot().committing());
        o.unlock_commit(t(3), 42);
        let after = o.snapshot();
        assert!(!after.locked());
        assert!(!after.committing());
        assert_eq!(after.version(), 42);
        assert_eq!(after.owner(), ThreadId::NONE);
    }

    #[test]
    fn max_owner_and_version_round_trip() {
        let o = Orec::new();
        o.unlock_commit_unchecked(VERSION_MASK - 1);
        let s = o.snapshot();
        assert!(o.try_lock(s, t(0x7FFF)));
        let locked = o.snapshot();
        assert_eq!(locked.owner(), t(0x7FFF));
        assert_eq!(locked.version(), VERSION_MASK - 1);
    }

    #[test]
    fn table_maps_vars_deterministically_within_bounds() {
        let table = OrecTable::new(1 << 10);
        assert_eq!(table.len(), 1 << 10);
        for i in 0..10_000u64 {
            let v = VarId::from_u64(i);
            let idx = table.index_of(v);
            assert!(idx < table.len());
            assert_eq!(idx, table.index_of(v), "stable mapping");
        }
    }

    #[test]
    fn table_size_rounds_up_to_power_of_two() {
        assert_eq!(OrecTable::new(100).len(), 128);
        assert_eq!(OrecTable::new(1).len(), 64);
    }

    #[test]
    fn visible_writes_reports_locked_stripes() {
        let table = OrecTable::new(64);
        let v = VarId::from_u64(7);
        assert!(!table.is_written_by_other(v, t(1)));
        assert_eq!(table.writer_of(v), None);
        let o = table.for_var(v);
        assert!(o.try_lock(o.snapshot(), t(2)));
        assert!(table.is_written_by_other(v, t(1)));
        assert!(
            !table.is_written_by_other(v, t(2)),
            "own locks are not conflicts"
        );
        assert_eq!(table.writer_of(v), Some(t(2)));
    }

    impl Orec {
        /// Test helper: stamp a version without holding the lock.
        fn unlock_commit_unchecked(&self, v: u64) {
            self.word.store(v, Ordering::Release);
        }
    }
}
