//! Per-stripe commit wait lists: the wake path behind [`Tx::retry`].
//!
//! A transaction that calls [`Tx::retry`](crate::Tx::retry) is saying "this
//! snapshot cannot proceed — run me again when it changes". The only events
//! that can change the snapshot are commits that write one of the stripes
//! the transaction read, so the runtime parks the thread here until exactly
//! such a commit happens (or a bounded deadline passes).
//!
//! # Protocol
//!
//! The orec table's stripes are hashed down onto a fixed set of *wait
//! buckets* (aliasing produces spurious wakeups, never missed ones — the
//! same trade-off as the orec striping itself). Each bucket holds an exact
//! waiter count plus a list of registered *parkers*, one
//! [`EventCount`](parking_lot::EventCount) per waiting thread:
//!
//! 1. The waiter samples its own parker version, registers the parker on
//!    every bucket its read set hashes to, and **then** validates the read
//!    snapshot against the live orec versions. A commit that raced ahead of
//!    the registration is caught by this validation; a commit that lands
//!    after it finds the parker registered and wakes it. A `SeqCst` fence on
//!    both sides closes the store-buffer window between "publish my
//!    registration" and "read your version stamp".
//! 2. If the snapshot is still current, the waiter parks on its own parker
//!    — a single futex word, regardless of how many stripes it watches —
//!    with a bounded deadline ([`TmConfig::retry_wait`]); on wake or expiry
//!    it deregisters from every bucket.
//! 3. The commit path calls [`notify_commit`](StripeWaitlist::notify_commit)
//!    with its written stripes *after* the new versions are installed. A
//!    bucket with zero waiters costs one atomic load; otherwise every
//!    registered parker is advanced (bump **and wake**).
//!
//! All waiting is futex/parker sleeping: the retry path contains no
//! `yield_now` poll loop at all, which is what the wait-op counters in
//! [`RetryStats`] let tests and `bench_retry` prove.
//!
//! # Pluggable parkers
//!
//! A registered waiter is a [`Parker`], of which there are two kinds
//! sharing one bucket list and one wake point:
//!
//! * [`Parker::Thread`] — an [`EventCount`](parking_lot::EventCount): the
//!   waiter is an OS thread that futex-sleeps in [`wait`] until the count
//!   advances. This is the classic [`Tx::retry`] path.
//! * [`Parker::Task`] — an [`AsyncParker`]: the waiter is a *future*
//!   ([`TxFuture`](crate::future::TxFuture)) that returned `Poll::Pending`
//!   instead of blocking a thread. The commit-side advance bumps an atomic
//!   wake epoch and fires the stored [`Waker`], handing the task back to
//!   its executor. Registration goes through [`register_async`] /
//!   [`deregister_async`] and follows the *same*
//!   register→`SeqCst`-fence→validate protocol as [`wait`], so the
//!   lost-wakeup argument above carries over unchanged — the only
//!   difference is what "wake" means.
//!
//! The commit path treats both kinds identically:
//! [`notify_commit`](StripeWaitlist::notify_commit) advances every parker
//! registered on a written bucket at the exact point it would have futex-
//! woken a thread, so sync and async waiters on the same bucket are woken
//! by the same commit.
//!
//! [`wait`]: StripeWaitlist::wait
//! [`register_async`]: StripeWaitlist::register_async
//! [`deregister_async`]: StripeWaitlist::deregister_async
//! [`Tx::retry`]: crate::Tx::retry
//! [`TmConfig::retry_wait`]: crate::config::TmConfig::retry_wait

use std::fmt;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::task::Waker;
use std::time::Instant;

use parking_lot::{EventCount, Mutex, WaitOutcome};

use crate::faults::FaultSite;
use crate::orec::OrecTable;

/// Most wait buckets a runtime allocates; stripes hash down onto these.
const MAX_BUCKETS: usize = 1024;

/// The `Waker`-backed parker of a suspended [`TxFuture`]: the async
/// counterpart of [`EventCount`], mirroring its protocol with a task waker
/// in place of a futex word.
///
/// * **Wake epoch** — an atomic counter bumped by every commit-side
///   [`advance`](AsyncParker::advance), standing in for the event count's
///   version word. The future samples it before registering and compares
///   at every poll: "epoch moved" means "a watched commit happened while I
///   was suspended".
/// * **Waker slot** — the suspended task's [`Waker`], (re)stored on every
///   poll per the `Future` contract and *taken* by the advance that wakes
///   it.
///
/// # Lost-wakeup ordering
///
/// The poll side **stores the waker, then reads the epoch**; the advance
/// side **bumps the epoch, then takes the waker** (both slot accesses under
/// the same mutex). The mutex totally orders the two critical sections:
/// if the poll's store comes first, the advance finds the fresh waker and
/// wakes the task; if the advance's take comes first, the poll's epoch
/// read is ordered after the bump and observes it, so the future
/// re-attempts instead of suspending. Either way a commit that races a
/// poll is never lost — the same crossing argument the event count's futex
/// compare makes in hardware.
///
/// [`TxFuture`]: crate::future::TxFuture
#[derive(Debug, Default)]
pub(crate) struct AsyncParker {
    /// Wake epoch (see above). 32 wrapping bits; a suspended future
    /// compares for equality, so wrapping is harmless short of exactly
    /// 2³² advances between two polls.
    epoch: AtomicU32,
    /// The suspended task's waker. `None` while no poll has stored one or
    /// after an advance consumed it.
    waker: Mutex<Option<Waker>>,
}

impl AsyncParker {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// The current wake epoch. `SeqCst` for the same reason as
    /// [`EventCount::version`]: the sample must be ordered against the
    /// committer's bump in the single total order both sides observe.
    pub(crate) fn epoch(&self) -> u32 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Stores the suspended task's waker. Called on *every* poll — the
    /// `Future` contract lets the executor swap wakers between polls, and
    /// only the latest one is guaranteed to reach the current task.
    ///
    /// Callers must read [`epoch`](Self::epoch) *after* this returns (see
    /// the type-level ordering note).
    pub(crate) fn set_waker(&self, waker: &Waker) {
        let mut slot = self.waker.lock();
        match slot.as_ref() {
            Some(old) if old.will_wake(waker) => {}
            _ => *slot = Some(waker.clone()),
        }
    }

    /// Drops the stored waker without waking, leaving the epoch untouched.
    /// Used by deregistration paths so a cancelled future does not keep its
    /// executor task alive through the parker.
    pub(crate) fn clear_waker(&self) {
        *self.waker.lock() = None;
    }

    /// Bumps the wake epoch and fires the stored waker, if any. Returns
    /// `true` when a waker was actually delivered — the commit-side
    /// analogue of [`EventCount::advance`] reporting `woken > 0`.
    pub(crate) fn advance(&self) -> bool {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        let woken = self.waker.lock().take();
        match woken {
            Some(waker) => {
                waker.wake();
                true
            }
            None => false,
        }
    }
}

/// One registered waiter: an OS thread futex-parked on an event count, or
/// a suspended future reachable through its stored waker. Both kinds share
/// the bucket lists and are advanced by the same
/// [`notify_commit`](StripeWaitlist::notify_commit) pass.
pub(crate) enum Parker {
    /// A thread blocked in [`StripeWaitlist::wait`].
    Thread(Arc<EventCount>),
    /// A future suspended through [`StripeWaitlist::register_async`].
    Task(Arc<AsyncParker>),
}

impl Parker {
    fn is_thread(&self, parker: &Arc<EventCount>) -> bool {
        matches!(self, Parker::Thread(p) if Arc::ptr_eq(p, parker))
    }

    fn is_task(&self, parker: &Arc<AsyncParker>) -> bool {
        matches!(self, Parker::Task(p) if Arc::ptr_eq(p, parker))
    }
}

/// How an async registration attempt ended.
#[derive(Debug)]
pub(crate) enum AsyncRegisterOutcome {
    /// Validation caught a change after registering; the registration was
    /// rolled back and the future should re-attempt immediately.
    Changed,
    /// The parker is registered on the returned buckets; the future should
    /// return `Poll::Pending` and later pass the same buckets to
    /// [`StripeWaitlist::deregister_async`].
    Registered {
        /// The deduplicated bucket indices holding the registration.
        buckets: Vec<usize>,
    },
}

/// How one bounded retry-wait round ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RetryWaitOutcome {
    /// The read snapshot was already stale when (re)checked — no sleep, the
    /// transaction should re-run immediately.
    Changed,
    /// A committer writing a watched stripe woke the parker.
    Woken,
    /// The deadline expired with the snapshot unchanged.
    TimedOut,
}

/// Wait-op counters of the [`Tx::retry`](crate::Tx::retry) wake path,
/// aggregated per runtime and exposed through
/// [`TmRuntime::retry_stats`](crate::TmRuntime::retry_stats).
///
/// The waiter side proves *how* blocked transactions waited (`parked_waits`
/// never comes with a yield-poll counterpart because the path has none);
/// the committer side (`wakes_issued` / `wasted_wakes`) is the
/// wasted-wakeup ledger `bench_retry` reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Wait rounds that actually parked on the futex.
    pub parked_waits: u64,
    /// Parked rounds ended by a committer's wake.
    pub woken: u64,
    /// Parked rounds that expired with the snapshot unchanged.
    pub timed_out: u64,
    /// Rounds where validation caught a change before any sleep.
    pub changed_before_park: u64,
    /// Commit-side wake rounds that found at least one registered parker.
    pub wakes_issued: u64,
    /// Threads actually released by commit-side wakes.
    pub threads_woken: u64,
    /// Wake syscalls (or waker deliveries) that released nobody (the
    /// parker's owner had already left — deadline expiry or a wake from
    /// another bucket in the same instant — or, for a task, another stripe
    /// of the same commit already consumed the waker).
    pub wasted_wakes: u64,
    /// Futures suspended with a registered [`AsyncParker`] (the async
    /// counterpart of `parked_waits`; a suspension parks a *task*, never a
    /// thread).
    pub async_parks: u64,
    /// Suspended futures whose next poll found the wake epoch advanced —
    /// the async counterpart of `woken`.
    pub async_woken: u64,
    /// Commit-side advances that delivered a stored waker to a suspended
    /// task — the task counterpart of `threads_woken`.
    pub tasks_woken: u64,
}

struct Bucket {
    /// Exact number of parkers currently registered (fast no-waiter skip on
    /// the commit path).
    waiters: AtomicU32,
    list: Mutex<Vec<Parker>>,
}

/// The runtime-wide table of commit wait buckets (see the module docs).
pub(crate) struct StripeWaitlist {
    buckets: Box<[Bucket]>,
    mask: usize,
    parked_waits: AtomicU64,
    woken: AtomicU64,
    timed_out: AtomicU64,
    changed_before_park: AtomicU64,
    wakes_issued: AtomicU64,
    threads_woken: AtomicU64,
    wasted_wakes: AtomicU64,
    async_parks: AtomicU64,
    async_woken: AtomicU64,
    tasks_woken: AtomicU64,
}

impl StripeWaitlist {
    /// Creates a waitlist covering `stripes` orec stripes (a power of two).
    pub(crate) fn new(stripes: usize) -> Self {
        let n = stripes.clamp(1, MAX_BUCKETS);
        debug_assert!(n.is_power_of_two());
        let buckets: Vec<Bucket> = (0..n)
            .map(|_| Bucket {
                waiters: AtomicU32::new(0),
                list: Mutex::new(Vec::new()),
            })
            .collect();
        StripeWaitlist {
            buckets: buckets.into_boxed_slice(),
            mask: n - 1,
            parked_waits: AtomicU64::new(0),
            woken: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            changed_before_park: AtomicU64::new(0),
            wakes_issued: AtomicU64::new(0),
            threads_woken: AtomicU64::new(0),
            wasted_wakes: AtomicU64::new(0),
            async_parks: AtomicU64::new(0),
            async_woken: AtomicU64::new(0),
            tasks_woken: AtomicU64::new(0),
        }
    }

    /// True if some watched stripe moved past its observed version (or is
    /// mid-install): the retrying transaction's snapshot is stale and it
    /// should re-run rather than sleep. Crate-visible because the
    /// cross-runtime select registry revalidates with the same predicate.
    pub(crate) fn changed(orecs: &OrecTable, plan: &[(usize, u64)]) -> bool {
        plan.iter().any(|&(idx, version)| {
            let snap = orecs.at(idx).snapshot();
            snap.version() != version || snap.committing()
        })
    }

    /// One bounded retry-wait round for a thread whose read set validated to
    /// `plan` (deduplicated `(stripe, observed version)` pairs). `parker` is
    /// the thread's own event count; the same one must be passed on every
    /// round (registration lists hold clones of it).
    pub(crate) fn wait(
        &self,
        orecs: &OrecTable,
        plan: &[(usize, u64)],
        parker: &Arc<EventCount>,
        deadline: Instant,
    ) -> RetryWaitOutcome {
        // Probed before any bucket is touched, so an injected panic here
        // cannot leak a registration.
        let _ = crate::failpoint!(FaultSite::WaitRegister);
        let observed = parker.version();
        let buckets = self.register_thread(plan, parker);
        // Pairs with the fence in `notify_commit`: a committer either sees
        // the registration above, or this validation sees its version
        // stamps. Without it both sides could read stale state and the wake
        // would be lost for a full deadline round.
        fence(Ordering::SeqCst);
        // Registered-but-not-deregistered window: only delays and forced
        // spurious wakeups may be injected between here and the deregister
        // loop (a panic would leak the registration). `WaitValidate` makes
        // the validation claim a change, `EventPark` skips the park as if
        // notified — both exercise the callers' revalidate-and-re-run loop.
        let outcome = if crate::failpoint!(FaultSite::WaitValidate) || Self::changed(orecs, plan) {
            self.changed_before_park.fetch_add(1, Ordering::Relaxed);
            RetryWaitOutcome::Changed
        } else if crate::failpoint!(FaultSite::EventPark) {
            self.woken.fetch_add(1, Ordering::Relaxed);
            RetryWaitOutcome::Woken
        } else {
            self.parked_waits.fetch_add(1, Ordering::Relaxed);
            match parker.wait_while_eq(observed, Some(deadline)) {
                WaitOutcome::Advanced => {
                    self.woken.fetch_add(1, Ordering::Relaxed);
                    RetryWaitOutcome::Woken
                }
                WaitOutcome::TimedOut => {
                    self.timed_out.fetch_add(1, Ordering::Relaxed);
                    RetryWaitOutcome::TimedOut
                }
            }
        };
        self.deregister_thread(&buckets, parker);
        outcome
    }

    /// Registers a thread parker on the buckets of `plan` without
    /// validating or parking — the building block [`wait`](Self::wait) and
    /// the cross-runtime select registry share. Returns the deduplicated
    /// bucket indices holding the registration; the caller owns the rest of
    /// the lost-wakeup protocol (`SeqCst` fence, validate via
    /// [`changed`](Self::changed), park, then
    /// [`deregister_thread`](Self::deregister_thread) with the same
    /// buckets).
    pub(crate) fn register_thread(
        &self,
        plan: &[(usize, u64)],
        parker: &Arc<EventCount>,
    ) -> Vec<usize> {
        let buckets = self.bucket_set(plan);
        for &b in &buckets {
            let bucket = &self.buckets[b];
            bucket.waiters.fetch_add(1, Ordering::SeqCst);
            bucket.list.lock().push(Parker::Thread(Arc::clone(parker)));
        }
        buckets
    }

    /// Removes a thread parker from `buckets` (as returned by
    /// [`register_thread`](Self::register_thread)). Removal is by pointer
    /// identity, so deregistering after a concurrent commit already woke
    /// the parker is harmless.
    pub(crate) fn deregister_thread(&self, buckets: &[usize], parker: &Arc<EventCount>) {
        for &b in buckets {
            let bucket = &self.buckets[b];
            {
                let mut list = bucket.list.lock();
                if let Some(pos) = list.iter().position(|p| p.is_thread(parker)) {
                    list.swap_remove(pos);
                }
            }
            bucket.waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// The deduplicated wait-bucket indices of a retry plan.
    fn bucket_set(&self, plan: &[(usize, u64)]) -> Vec<usize> {
        let mut buckets: Vec<usize> = plan.iter().map(|&(s, _)| s & self.mask).collect();
        buckets.sort_unstable();
        buckets.dedup();
        buckets
    }

    /// Registers a suspended future's parker on the buckets of `plan` —
    /// the async counterpart of the register-and-validate half of
    /// [`wait`](Self::wait), with identical protocol and failpoints: probe,
    /// register on the deduped buckets, `SeqCst` fence, validate. The
    /// caller must have stored the task's waker in `parker` **before**
    /// calling (see [`AsyncParker`]'s ordering note); on
    /// [`AsyncRegisterOutcome::Registered`] it returns `Poll::Pending` and
    /// is responsible for eventually calling
    /// [`deregister_async`](Self::deregister_async) with the returned
    /// buckets — on wake *and* on cancellation (drop).
    pub(crate) fn register_async(
        &self,
        orecs: &OrecTable,
        plan: &[(usize, u64)],
        parker: &Arc<AsyncParker>,
    ) -> AsyncRegisterOutcome {
        // Same probe discipline as `wait`: before any bucket is touched, so
        // an injected panic cannot leak a registration.
        let _ = crate::failpoint!(FaultSite::WaitRegister);
        let buckets = self.bucket_set(plan);
        for &b in &buckets {
            let bucket = &self.buckets[b];
            bucket.waiters.fetch_add(1, Ordering::SeqCst);
            bucket.list.lock().push(Parker::Task(Arc::clone(parker)));
        }
        // Pairs with the fence in `notify_commit`, exactly as in `wait`: a
        // committer either sees the registration above (and advances the
        // parker, firing the stored waker), or this validation sees its
        // version stamps.
        fence(Ordering::SeqCst);
        if crate::failpoint!(FaultSite::WaitValidate) || Self::changed(orecs, plan) {
            self.deregister_async(&buckets, parker);
            self.changed_before_park.fetch_add(1, Ordering::Relaxed);
            return AsyncRegisterOutcome::Changed;
        }
        self.async_parks.fetch_add(1, Ordering::Relaxed);
        AsyncRegisterOutcome::Registered { buckets }
    }

    /// Removes a future's parker from `buckets` (as returned by
    /// [`register_async`](Self::register_async)) and drops any stored
    /// waker. Idempotent per registration: positions are found by pointer
    /// identity, so deregistering after a concurrent commit already woke
    /// the task is harmless.
    pub(crate) fn deregister_async(&self, buckets: &[usize], parker: &Arc<AsyncParker>) {
        for &b in buckets {
            let bucket = &self.buckets[b];
            {
                let mut list = bucket.list.lock();
                if let Some(pos) = list.iter().position(|p| p.is_task(parker)) {
                    list.swap_remove(pos);
                }
            }
            bucket.waiters.fetch_sub(1, Ordering::SeqCst);
        }
        // A waker left behind would keep the executor task alive (and a
        // late advance would spuriously wake it); cancellation must sever
        // that edge.
        parker.clear_waker();
    }

    /// Books one suspended-future wake observation (the poll after a
    /// commit-side advance) — the async counterpart of the `woken` bump in
    /// [`wait`](Self::wait).
    pub(crate) fn note_async_woken(&self) {
        self.async_woken.fetch_add(1, Ordering::Relaxed);
    }

    /// Exact number of parker registrations currently held across all
    /// buckets (a waiter watching `k` buckets counts `k` times). Zero when
    /// nobody — thread or task — is registered; what the cancellation
    /// tests assert returns to zero after a suspended future is dropped.
    pub(crate) fn registered(&self) -> u64 {
        self.buckets
            .iter()
            .map(|b| u64::from(b.waiters.load(Ordering::SeqCst)))
            .sum()
    }

    /// Wakes every parker registered on the buckets of `stripes`. Called by
    /// the commit path *after* the new orec versions are installed, so a
    /// woken (or racing) waiter always observes the stripe moved.
    ///
    /// Costs one atomic load per distinct bucket when nobody is waiting.
    pub(crate) fn notify_commit(&self, stripes: &[usize]) {
        if stripes.is_empty() {
            return;
        }
        // A panic injected here unwinds out of a commit whose values are
        // already durable: waiters miss this wake but revalidate on their
        // bounded deadline, so the system degrades to a delayed wakeup
        // rather than a lost one.
        let _ = crate::failpoint!(FaultSite::WaitWake);
        // Pairs with the fence in `wait` (see there).
        fence(Ordering::SeqCst);
        for (i, &stripe) in stripes.iter().enumerate() {
            let b = stripe & self.mask;
            // Dedup without allocating: written-stripe sets are small.
            if stripes[..i].iter().any(|&prev| prev & self.mask == b) {
                continue;
            }
            let bucket = &self.buckets[b];
            if bucket.waiters.load(Ordering::SeqCst) == 0 {
                continue;
            }
            // Snapshot the parker list and wake *outside* the bucket lock:
            // a woken waiter's first action is to re-take this lock to
            // deregister, so advancing under it would convoy every waiter
            // behind the committer's wake syscalls. Waking a parker whose
            // owner already left is harmless — the owner resamples its
            // version before the next registration, so a stale bump can at
            // worst cost one spurious (counted) wake.
            let parkers: Vec<Parker> = {
                let list = bucket.list.lock();
                if list.is_empty() {
                    continue;
                }
                list.iter()
                    .map(|p| match p {
                        Parker::Thread(ec) => Parker::Thread(Arc::clone(ec)),
                        Parker::Task(ap) => Parker::Task(Arc::clone(ap)),
                    })
                    .collect()
            };
            self.wakes_issued.fetch_add(1, Ordering::Relaxed);
            let mut released = 0u64;
            let mut tasks = 0u64;
            let mut wasted = 0u64;
            for parker in &parkers {
                match parker {
                    Parker::Thread(ec) => {
                        let adv = ec.advance();
                        released += adv.woken as u64;
                        if adv.wake_issued && adv.woken == 0 {
                            wasted += 1;
                        }
                    }
                    Parker::Task(ap) => {
                        // Bump-and-wake at the same point as the futex
                        // advance: the stored waker hands the suspended
                        // task back to its executor. No waker means the
                        // future is mid-poll (it will read the bumped
                        // epoch) or another stripe of this commit already
                        // delivered it — counted wasted, same as a futex
                        // wake that released nobody.
                        if ap.advance() {
                            tasks += 1;
                        } else {
                            wasted += 1;
                        }
                    }
                }
            }
            self.threads_woken.fetch_add(released, Ordering::Relaxed);
            self.tasks_woken.fetch_add(tasks, Ordering::Relaxed);
            self.wasted_wakes.fetch_add(wasted, Ordering::Relaxed);
        }
    }

    /// Snapshot of the wait-op counters.
    pub(crate) fn stats(&self) -> RetryStats {
        RetryStats {
            parked_waits: self.parked_waits.load(Ordering::Relaxed),
            woken: self.woken.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            changed_before_park: self.changed_before_park.load(Ordering::Relaxed),
            wakes_issued: self.wakes_issued.load(Ordering::Relaxed),
            threads_woken: self.threads_woken.load(Ordering::Relaxed),
            wasted_wakes: self.wasted_wakes.load(Ordering::Relaxed),
            async_parks: self.async_parks.load(Ordering::Relaxed),
            async_woken: self.async_woken.load(Ordering::Relaxed),
            tasks_woken: self.tasks_woken.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for StripeWaitlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StripeWaitlist")
            .field("buckets", &self.buckets.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread::ThreadId;
    use std::time::Duration;

    fn table_with_version(stripe: usize, version: u64) -> OrecTable {
        let orecs = OrecTable::new(64);
        if version > 0 {
            let o = orecs.at(stripe);
            assert!(o.try_lock(o.snapshot(), ThreadId::from_u16(1)));
            o.unlock_commit(ThreadId::from_u16(1), version);
        }
        orecs
    }

    #[test]
    fn stale_plan_is_caught_before_parking() {
        let wl = StripeWaitlist::new(64);
        let orecs = table_with_version(3, 7);
        let parker = Arc::new(EventCount::new());
        // Observed version 6, stripe already at 7: no sleep.
        let outcome = wl.wait(
            &orecs,
            &[(3, 6)],
            &parker,
            Instant::now() + Duration::from_secs(30),
        );
        assert_eq!(outcome, RetryWaitOutcome::Changed);
        assert_eq!(wl.stats().changed_before_park, 1);
        assert_eq!(wl.stats().parked_waits, 0);
    }

    #[test]
    fn unchanged_plan_times_out_at_the_deadline() {
        let wl = StripeWaitlist::new(64);
        let orecs = table_with_version(3, 7);
        let parker = Arc::new(EventCount::new());
        let deadline = Instant::now() + Duration::from_millis(20);
        let outcome = wl.wait(&orecs, &[(3, 7)], &parker, deadline);
        assert_eq!(outcome, RetryWaitOutcome::TimedOut);
        assert!(Instant::now() >= deadline, "must not report expiry early");
        let stats = wl.stats();
        assert_eq!(stats.parked_waits, 1);
        assert_eq!(stats.timed_out, 1);
    }

    #[test]
    fn commit_to_a_watched_stripe_wakes_the_parker() {
        let wl = Arc::new(StripeWaitlist::new(64));
        let orecs = Arc::new(table_with_version(3, 7));
        let parker = Arc::new(EventCount::new());
        let waiter = {
            let wl = Arc::clone(&wl);
            let orecs = Arc::clone(&orecs);
            let parker = Arc::clone(&parker);
            std::thread::spawn(move || {
                wl.wait(
                    &orecs,
                    &[(3, 7)],
                    &parker,
                    Instant::now() + Duration::from_secs(30),
                )
            })
        };
        // Deterministic handshake: the parker's own waiter count proves it
        // is inside the futex path before the "commit" fires.
        while parker.waiters() == 0 {
            std::thread::yield_now();
        }
        // Install the new version, then notify — commit order.
        let o = orecs.at(3);
        assert!(o.try_lock(o.snapshot(), ThreadId::from_u16(2)));
        o.unlock_commit(ThreadId::from_u16(2), 8);
        wl.notify_commit(&[3]);
        assert_eq!(waiter.join().unwrap(), RetryWaitOutcome::Woken);
        let stats = wl.stats();
        assert_eq!(stats.woken, 1);
        assert_eq!(stats.wakes_issued, 1);
        assert_eq!(stats.threads_woken, 1);
    }

    #[test]
    fn commit_to_an_unwatched_bucket_is_a_single_load() {
        let wl = StripeWaitlist::new(64);
        // No waiters anywhere: notify must do nothing (and count nothing).
        wl.notify_commit(&[0, 1, 2, 3]);
        assert_eq!(wl.stats().wakes_issued, 0);
    }

    #[test]
    fn empty_plan_waits_out_the_deadline() {
        // A retry with an empty read set can never be woken; the bounded
        // deadline is what keeps it from blocking forever.
        let wl = StripeWaitlist::new(64);
        let orecs = OrecTable::new(64);
        let parker = Arc::new(EventCount::new());
        let deadline = Instant::now() + Duration::from_millis(10);
        let outcome = wl.wait(&orecs, &[], &parker, deadline);
        assert_eq!(outcome, RetryWaitOutcome::TimedOut);
    }

    #[test]
    fn deregistration_leaves_no_residue() {
        let wl = StripeWaitlist::new(64);
        let orecs = OrecTable::new(64);
        let parker = Arc::new(EventCount::new());
        let _ = wl.wait(
            &orecs,
            &[(1, 0), (2, 0)],
            &parker,
            Instant::now() + Duration::from_millis(5),
        );
        for bucket in wl.buckets.iter() {
            assert_eq!(bucket.waiters.load(Ordering::SeqCst), 0);
            assert!(bucket.list.lock().is_empty());
        }
        // A later commit wakes nobody and wastes nothing.
        wl.notify_commit(&[1, 2]);
        assert_eq!(wl.stats().wakes_issued, 0);
        assert_eq!(wl.stats().wasted_wakes, 0);
    }
}
